//! The positional query-term model: what a [`crate::SearchRequest`]
//! searches *for*.
//!
//! A request carries a sequence of [`QueryTerm`]s — the generalization
//! of the bag-of-words keyword list. Each term occupies one scoring
//! slot: it produces one tf column, one idf component, and one entry in
//! every hit's tf vector, exactly as a plain keyword does. The four
//! shapes:
//!
//! * [`QueryTerm::Word`] — the classic single keyword; `tf` is the
//!   aggregate occurrence count in the element's subtree.
//! * [`QueryTerm::Prefix`] — matches every indexed keyword starting
//!   with the prefix (expanded per segment against the sorted term
//!   dictionary); `tf` is the sum over the expansion.
//! * [`QueryTerm::Phrase`] — consecutive occurrence of the words in
//!   order within one element's own token stream; `tf` is the number of
//!   phrase starts in the subtree. Occurrences never span elements.
//! * [`QueryTerm::Near`] — every word within a `window` of an
//!   occurrence of the first word (in the same element's token
//!   stream); `tf` is the number of qualifying anchors.
//!
//! Phrase and proximity terms need per-occurrence positions
//! ([`vxv_index::PositionsList`], stored by v5 bundles); searching them
//! against an index without positions fails typed
//! ([`crate::EngineError::PositionsUnavailable`]) instead of returning
//! a silently-wrong bag-of-words answer.
//!
//! The textual syntax (one token per term, parsed by
//! [`QueryTerm::parse`]) is what the wire protocol and CLI speak:
//!
//! | token | term |
//! |---|---|
//! | `xml` | `Word("xml")` |
//! | `auto*` | `Prefix("auto")` |
//! | `xml search` (one quoted token) | `Phrase(["xml", "search"])` |
//! | `~3:xml,search` | `Near { window: 3, words: [...] }` |
//! | any of the above + `^2.5` | the term with boost 2.5 |

use std::fmt;

/// One scoring slot of a search request. See the [module docs](self)
/// for the semantics of each shape.
///
/// ```
/// use vxv_core::QueryTerm;
/// assert_eq!(QueryTerm::parse("xml").unwrap(), (QueryTerm::Word("xml".into()), None));
/// assert_eq!(QueryTerm::parse("auto*").unwrap(), (QueryTerm::Prefix("auto".into()), None));
/// assert_eq!(
///     QueryTerm::parse("xml search^2").unwrap(),
///     (QueryTerm::Phrase(vec!["xml".into(), "search".into()]), Some(2.0)),
/// );
/// assert_eq!(
///     QueryTerm::parse("~3:xml,search").unwrap(),
///     (QueryTerm::Near { window: 3, words: vec!["xml".into(), "search".into()] }, None),
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum QueryTerm {
    /// A single keyword (bag-of-words semantics, the legacy shape).
    Word(String),
    /// Every indexed keyword starting with the prefix (the `*` is not
    /// stored).
    Prefix(String),
    /// The words occurring consecutively, in order, in one element's
    /// token stream.
    Phrase(Vec<String>),
    /// Every word within `window` token positions of an occurrence of
    /// `words[0]`, in one element's token stream.
    Near {
        /// Maximum ordinal distance from the anchor (the first word).
        window: u32,
        /// The words; the first is the anchor.
        words: Vec<String>,
    },
}

/// A query token [`QueryTerm::parse`] rejected, with the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermParseError(pub String);

impl fmt::Display for TermParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid query term: {}", self.0)
    }
}

impl std::error::Error for TermParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TermParseError> {
    Err(TermParseError(msg.into()))
}

impl QueryTerm {
    /// Parse one query token into a term and its optional boost:
    /// a trailing `^F` is the boost, a leading `~N:` makes a proximity
    /// term, a trailing `*` a prefix term, and interior whitespace a
    /// phrase (a one-word phrase collapses to [`QueryTerm::Word`]).
    /// Words are taken verbatim — normalization to token form happens
    /// when the request is resolved against an index.
    pub fn parse(token: &str) -> Result<(QueryTerm, Option<f64>), TermParseError> {
        let (body, boost) = match token.rsplit_once('^') {
            Some((body, suffix)) => {
                let Ok(b) = suffix.parse::<f64>() else {
                    return err(format!("boost '{suffix}' is not a number"));
                };
                if !b.is_finite() || b <= 0.0 {
                    return err(format!("boost {b} must be finite and positive"));
                }
                (body, Some(b))
            }
            None => (token, None),
        };
        let body = body.trim();
        // Tolerate a literally-quoted phrase token (`"virtual views"`)
        // surviving into the body — e.g. `vxv search -k '"a b"'`, where
        // the shell keeps the inner quotes. One balanced pair only;
        // lone or interior quotes stay part of the words.
        let body = match body.strip_prefix('"').and_then(|b| b.strip_suffix('"')) {
            Some(inner) => inner.trim(),
            None => body,
        };
        if body.is_empty() {
            return err("empty term");
        }
        let term = if let Some(rest) = body.strip_prefix('~') {
            let Some((n, words)) = rest.split_once(':') else {
                return err(format!("proximity term '~{rest}' needs the ~N:w1,w2 form"));
            };
            let Ok(window) = n.parse::<u32>() else {
                return err(format!("proximity window '{n}' is not an unsigned integer"));
            };
            let words: Vec<String> =
                words.split(',').map(str::trim).filter(|w| !w.is_empty()).map(Into::into).collect();
            if words.len() < 2 {
                return err("proximity term needs at least two comma-separated words");
            }
            QueryTerm::Near { window, words }
        } else if let Some(stem) = body.strip_suffix('*') {
            if stem.is_empty() || stem.contains('*') || stem.contains(char::is_whitespace) {
                return err(format!("prefix term '{body}' must be one word with one trailing *"));
            }
            QueryTerm::Prefix(stem.to_string())
        } else if body.contains('*') {
            return err(format!("'*' is only valid at the end of a prefix term, got '{body}'"));
        } else {
            let words: Vec<String> = body.split_whitespace().map(Into::into).collect();
            match <[String; 1]>::try_from(words) {
                Ok([word]) => QueryTerm::Word(word),
                Err(words) => QueryTerm::Phrase(words),
            }
        };
        Ok((term, boost))
    }

    /// The words this term touches in the inverted index, in term order.
    pub fn words(&self) -> &[String] {
        match self {
            QueryTerm::Word(w) | QueryTerm::Prefix(w) => std::slice::from_ref(w),
            QueryTerm::Phrase(words) | QueryTerm::Near { words, .. } => words,
        }
    }

    /// Whether answering this term requires per-occurrence positions.
    pub fn is_positional(&self) -> bool {
        matches!(self, QueryTerm::Phrase(_) | QueryTerm::Near { .. })
    }
}

impl fmt::Display for QueryTerm {
    /// The parseable token form: `Display` then [`QueryTerm::parse`]
    /// round-trips every valid term.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTerm::Word(w) => write!(f, "{w}"),
            QueryTerm::Prefix(p) => write!(f, "{p}*"),
            QueryTerm::Phrase(words) => write!(f, "{}", words.join(" ")),
            QueryTerm::Near { window, words } => write!(f, "~{window}:{}", words.join(",")),
        }
    }
}

/// A request's terms normalized to token form and validated — built
/// once per search in [`crate::PreparedView`]'s ranking pipeline, then
/// shared by the PDT annotation loop, the score-bounded estimator, and
/// the plan report.
pub(crate) struct ResolvedTerms {
    terms: Vec<QueryTerm>,
}

impl ResolvedTerms {
    /// Normalize and validate `request`'s terms. Word terms may
    /// normalize to the empty string (they match nothing, like the
    /// legacy keyword path); phrase / proximity / prefix terms with an
    /// empty word are rejected typed, as are non-positive boosts. A
    /// request whose every term is an empty word — including a request
    /// with no terms at all — is [`crate::EngineError::EmptyQuery`].
    pub(crate) fn resolve(
        request: &crate::request::SearchRequest,
    ) -> Result<ResolvedTerms, crate::engine::EngineError> {
        use crate::engine::EngineError;
        use vxv_index::tokenize::normalize_keyword;
        let invalid = |msg: String| EngineError::InvalidTerm(msg);
        let mut terms = Vec::with_capacity(request.terms().len());
        for term in request.terms() {
            let norm = |w: &String| normalize_keyword(w);
            terms.push(match term {
                QueryTerm::Word(w) => QueryTerm::Word(norm(w)),
                QueryTerm::Prefix(p) => {
                    let p = norm(p);
                    if p.trim().is_empty() {
                        return Err(invalid("prefix term with empty stem".into()));
                    }
                    QueryTerm::Prefix(p)
                }
                QueryTerm::Phrase(words) => {
                    let words: Vec<String> = words.iter().map(norm).collect();
                    if words.is_empty() || words.iter().any(|w| w.trim().is_empty()) {
                        return Err(invalid("phrase term with an empty word".into()));
                    }
                    QueryTerm::Phrase(words)
                }
                QueryTerm::Near { window, words } => {
                    let words: Vec<String> = words.iter().map(norm).collect();
                    if words.len() < 2 || words.iter().any(|w| w.trim().is_empty()) {
                        return Err(invalid(
                            "proximity term needs two or more non-empty words".into(),
                        ));
                    }
                    QueryTerm::Near { window: *window, words }
                }
            });
        }
        for b in request.boosts() {
            if !b.is_finite() || *b <= 0.0 {
                return Err(invalid(format!("boost {b} must be finite and positive")));
            }
        }
        let all_empty = terms.iter().all(|t| match t {
            QueryTerm::Word(w) => w.trim().is_empty(),
            _ => false,
        });
        if all_empty {
            return Err(EngineError::EmptyQuery);
        }
        Ok(ResolvedTerms { terms })
    }

    /// Wrap already-normalized bag-of-words keywords (the public
    /// [`crate::generate::generate_pdt`] surface, which predates terms).
    pub(crate) fn from_keywords(keywords: &[String]) -> ResolvedTerms {
        ResolvedTerms { terms: keywords.iter().map(|k| QueryTerm::Word(k.clone())).collect() }
    }

    /// Number of scoring slots (one per term).
    pub(crate) fn len(&self) -> usize {
        self.terms.len()
    }

    /// The normalized terms, slot order.
    pub(crate) fn terms(&self) -> &[QueryTerm] {
        &self.terms
    }

    /// Whether any term needs per-occurrence positions.
    pub(crate) fn has_positional(&self) -> bool {
        self.terms.iter().any(QueryTerm::is_positional)
    }

    /// Whether any term could match in `inverted` — pure dictionary
    /// probes, no counters; the prepared view's fan-out uses this to
    /// keep posting-free plans off the worker pool.
    pub(crate) fn might_match(&self, inverted: &vxv_index::InvertedIndex) -> bool {
        self.terms.iter().any(|t| match t {
            QueryTerm::Word(w) => inverted.has_keyword(w),
            QueryTerm::Prefix(p) => inverted.has_prefix(p),
            QueryTerm::Phrase(words) | QueryTerm::Near { words, .. } => {
                words.iter().all(|w| inverted.has_keyword(w))
            }
        })
    }

    /// Exact subtree tf of slot `k` under `root` — the term-aware
    /// generalization of [`vxv_index::InvertedIndex::subtree_tf`],
    /// used by the exact (`prune(false)`) annotation path.
    pub(crate) fn subtree_tf_in(
        &self,
        inverted: &vxv_index::InvertedIndex,
        k: usize,
        root: &vxv_xml::DeweyId,
    ) -> u32 {
        match &self.terms[k] {
            QueryTerm::Word(w) => inverted.subtree_tf(w, root),
            QueryTerm::Prefix(p) => {
                inverted.prefix_matches(p).iter().map(|w| inverted.subtree_tf(w, root)).sum()
            }
            QueryTerm::Phrase(words) => inverted.positional_subtree_tf(words, None, root),
            QueryTerm::Near { window, words } => {
                inverted.positional_subtree_tf(words, Some(*window), root)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_every_shape() {
        assert_eq!(QueryTerm::parse("xml").unwrap(), (QueryTerm::Word("xml".into()), None));
        assert_eq!(QueryTerm::parse("auto*").unwrap(), (QueryTerm::Prefix("auto".into()), None));
        assert_eq!(
            QueryTerm::parse("xml search").unwrap(),
            (QueryTerm::Phrase(vec!["xml".into(), "search".into()]), None)
        );
        assert_eq!(
            QueryTerm::parse("~2:fast,search").unwrap(),
            (QueryTerm::Near { window: 2, words: vec!["fast".into(), "search".into()] }, None)
        );
        assert_eq!(QueryTerm::parse("xml^2.5").unwrap().1, Some(2.5));
        assert_eq!(QueryTerm::parse("auto*^3").unwrap().0, QueryTerm::Prefix("auto".into()));
    }

    #[test]
    fn parse_strips_one_balanced_pair_of_quotes() {
        // A shell-quoted phrase token whose quotes survive into the arg.
        assert_eq!(
            QueryTerm::parse("\"xml search\"").unwrap(),
            (QueryTerm::Phrase(vec!["xml".into(), "search".into()]), None)
        );
        assert_eq!(QueryTerm::parse("\"xml\"").unwrap().0, QueryTerm::Word("xml".into()));
        assert_eq!(
            QueryTerm::parse("\"xml search\"^2").unwrap(),
            (QueryTerm::Phrase(vec!["xml".into(), "search".into()]), Some(2.0))
        );
        // Lone or interior quotes are NOT stripped — they stay in the word.
        assert_eq!(QueryTerm::parse("\"xml").unwrap().0, QueryTerm::Word("\"xml".into()));
        assert!(QueryTerm::parse("\"\"").is_err());
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "", "  ", "^2", "xml^zero", "xml^-1", "xml^inf", "*", "a*b", "au*to*", "~x:a,b",
            "~2:a", "~2a,b",
        ] {
            assert!(QueryTerm::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        let terms = vec![
            QueryTerm::Word("xml".into()),
            QueryTerm::Prefix("auto".into()),
            QueryTerm::Phrase(vec!["fast".into(), "xml".into(), "search".into()]),
            QueryTerm::Near { window: 4, words: vec!["fast".into(), "search".into()] },
        ];
        for term in terms {
            let (parsed, boost) = QueryTerm::parse(&term.to_string()).unwrap();
            assert_eq!(parsed, term);
            assert_eq!(boost, None);
        }
    }
}
