//! Query Pattern Trees (paper §3.3).
//!
//! A QPT is a generalized tree pattern over one base document: a twig of
//! tag tests connected by `/` or `//` edges that are either *mandatory*
//! (`m` — the parent is irrelevant to the view unless such a child exists)
//! or *optional* (`o`), with leaf value predicates and two node
//! annotations:
//!
//! * `v` — the node's *value* is required during view evaluation (join
//!   keys, comparison operands, condition inputs);
//! * `c` — the node's *content* is propagated to the view output, so the
//!   PDT must carry its tf values and byte length for scoring.

use std::fmt;
use vxv_index::{Axis, PathPattern, ValuePredicate};

/// Index of a node within its QPT's arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct QptNodeId(pub u32);

/// An edge to a child pattern node.
#[derive(Clone, Debug, PartialEq)]
pub struct QptEdge {
    /// `/` (child) or `//` (descendant).
    pub axis: Axis,
    /// `true` = mandatory (`m`), `false` = optional (`o`).
    pub mandatory: bool,
    /// The child pattern node.
    pub child: QptNodeId,
}

/// One pattern node.
#[derive(Clone, Debug, PartialEq)]
pub struct QptNode {
    /// The tag-name test.
    pub tag: String,
    /// Leaf value predicates, pushed into index probes.
    pub preds: Vec<ValuePredicate>,
    /// `v` — the node's value is needed during view evaluation.
    pub v_ann: bool,
    /// `c` — the node's content reaches the view output.
    pub c_ann: bool,
    /// Outgoing edges to child pattern nodes.
    pub children: Vec<QptEdge>,
    /// Back-reference to the parent (`None` for top-level nodes hanging off
    /// the virtual document root).
    pub parent: Option<QptNodeId>,
    /// Axis of the incoming edge (top-level nodes: axis from the document
    /// root; `/books` means "the root element is named books").
    pub incoming_axis: Axis,
    /// Whether the incoming edge is mandatory.
    pub incoming_mandatory: bool,
}

/// A query pattern tree for one base document.
#[derive(Clone, Debug, PartialEq)]
pub struct Qpt {
    /// The `fn:doc(...)` name this QPT projects.
    pub doc_name: String,
    nodes: Vec<QptNode>,
    /// Top-level nodes (children of the virtual document root).
    roots: Vec<QptNodeId>,
}

impl Qpt {
    /// An empty QPT for a document.
    pub fn new(doc_name: impl Into<String>) -> Self {
        Qpt { doc_name: doc_name.into(), nodes: Vec::new(), roots: Vec::new() }
    }

    /// Add a node under `parent` (`None` = under the virtual root).
    pub fn add_node(
        &mut self,
        parent: Option<QptNodeId>,
        axis: Axis,
        mandatory: bool,
        tag: &str,
    ) -> QptNodeId {
        let id = QptNodeId(self.nodes.len() as u32);
        self.nodes.push(QptNode {
            tag: tag.to_string(),
            preds: Vec::new(),
            v_ann: false,
            c_ann: false,
            children: Vec::new(),
            parent,
            incoming_axis: axis,
            incoming_mandatory: mandatory,
        });
        match parent {
            Some(p) => {
                self.nodes[p.0 as usize].children.push(QptEdge { axis, mandatory, child: id })
            }
            None => self.roots.push(id),
        }
        id
    }

    /// Borrow a node.
    pub fn node(&self, id: QptNodeId) -> &QptNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: QptNodeId) -> &mut QptNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Top-level pattern nodes.
    pub fn roots(&self) -> &[QptNodeId] {
        &self.roots
    }

    /// All node ids, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = QptNodeId> {
        (0..self.nodes.len() as u32).map(QptNodeId)
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the QPT has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mandatory child edges of a node, in order. The position within this
    /// list is the node's DescendantMap bit for that edge.
    pub fn mandatory_children(&self, id: QptNodeId) -> impl Iterator<Item = &QptEdge> {
        self.node(id).children.iter().filter(|e| e.mandatory)
    }

    /// The DescendantMap bit index of the edge leading into `child` from
    /// its parent, if that edge is mandatory.
    pub fn dm_bit(&self, child: QptNodeId) -> Option<u32> {
        let node = self.node(child);
        if !node.incoming_mandatory {
            return None;
        }
        let parent = node.parent?;
        self.mandatory_children(parent).position(|e| e.child == child).map(|i| i as u32)
    }

    /// Number of mandatory child edges of a node.
    pub fn mandatory_child_count(&self, id: QptNodeId) -> u32 {
        self.mandatory_children(id).count() as u32
    }

    /// The root-to-node chain of QPT node ids (outermost first).
    pub fn chain(&self, id: QptNodeId) -> Vec<QptNodeId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            out.push(p);
            cur = p;
        }
        out.reverse();
        out
    }

    /// The root-to-node [`PathPattern`] for an index probe.
    pub fn pattern(&self, id: QptNodeId) -> PathPattern {
        let mut p = PathPattern::new();
        for n in self.chain(id) {
            let node = self.node(n);
            p = p.step(node.incoming_axis, &node.tag);
        }
        p
    }

    /// Whether PDT generation must probe the path index for this node.
    ///
    /// Per Fig. 7 we probe nodes without mandatory child edges (their
    /// elements can enter the PDT with no further descendant evidence) and
    /// `v`-annotated nodes (values needed). We additionally probe nodes
    /// with predicates (so the index applies them) and `c`-annotated nodes
    /// (their byte lengths and presence feed scoring) — both arise for
    /// interior nodes only through grafted twigs.
    pub fn probed(&self, id: QptNodeId) -> bool {
        let n = self.node(id);
        self.mandatory_child_count(id) == 0 || n.v_ann || n.c_ann || !n.preds.is_empty()
    }

    /// The probe set, in creation order.
    pub fn probed_nodes(&self) -> Vec<QptNodeId> {
        self.node_ids().filter(|id| self.probed(*id)).collect()
    }

    /// Depth (number of QPT nodes from a root), used by complexity stats.
    pub fn depth(&self) -> usize {
        self.node_ids().map(|id| self.chain(id).len()).max().unwrap_or(0)
    }
}

impl fmt::Display for Qpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QPT for fn:doc({})", self.doc_name)?;
        fn rec(q: &Qpt, id: QptNodeId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let n = q.node(id);
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            let axis = match n.incoming_axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            write!(f, "{}{}", axis, n.tag)?;
            if !n.incoming_mandatory {
                write!(f, " (o)")?;
            }
            if n.v_ann {
                write!(f, " [v]")?;
            }
            if n.c_ann {
                write!(f, " [c]")?;
            }
            for p in &n.preds {
                match p {
                    ValuePredicate::Eq(v) => write!(f, " [. = {v}]")?,
                    ValuePredicate::Lt(v) => write!(f, " [. < {v}]")?,
                    ValuePredicate::Gt(v) => write!(f, " [. > {v}]")?,
                }
            }
            writeln!(f)?;
            for e in &n.children {
                rec(q, e.child, depth + 1, f)?;
            }
            Ok(())
        }
        for r in &self.roots {
            rec(self, *r, 1, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The book QPT of Fig. 6(a).
    pub(crate) fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    #[test]
    fn probe_set_matches_fig7() {
        let q = book_qpt();
        // isbn, title, year have no mandatory children -> probed.
        // books and book have mandatory children and no v/c/preds -> not.
        let probed: Vec<String> =
            q.probed_nodes().iter().map(|id| q.node(*id).tag.clone()).collect();
        assert_eq!(probed, vec!["isbn", "title", "year"]);
    }

    #[test]
    fn patterns_follow_root_to_node_chains() {
        let q = book_qpt();
        let year = q.node_ids().find(|id| q.node(*id).tag == "year").unwrap();
        assert_eq!(q.pattern(year).to_string(), "/books//book/year");
    }

    #[test]
    fn dm_bits_enumerate_mandatory_edges() {
        let q = book_qpt();
        let book = q.node_ids().find(|id| q.node(*id).tag == "book").unwrap();
        let year = q.node_ids().find(|id| q.node(*id).tag == "year").unwrap();
        let isbn = q.node_ids().find(|id| q.node(*id).tag == "isbn").unwrap();
        assert_eq!(q.mandatory_child_count(book), 1);
        assert_eq!(q.dm_bit(year), Some(0));
        assert_eq!(q.dm_bit(isbn), None); // optional edge
    }

    #[test]
    fn chains_and_depth() {
        let q = book_qpt();
        let year = q.node_ids().find(|id| q.node(*id).tag == "year").unwrap();
        let tags: Vec<&str> = q.chain(year).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(tags, vec!["books", "book", "year"]);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn display_renders_annotations() {
        let s = book_qpt().to_string();
        assert!(s.contains("//book"), "{s}");
        assert!(s.contains("[v]"), "{s}");
        assert!(s.contains("[c]"), "{s}");
        assert!(s.contains("[. > 1995]"), "{s}");
    }
}
