//! The searchable in-memory front end of the real-time write path.
//!
//! A [`MemTable`] is the *mutable* accumulation buffer behind
//! [`crate::ViewSearchEngine`]'s `append`: freshly written documents
//! are parsed once, indexed incrementally into a live
//! [`vxv_index::PathIndex`] + [`vxv_index::InvertedIndex`] pair, and
//! published to searches through [`MemTable::snapshot`] — an immutable
//! [`vxv_index::IndexSegment`] built from `clone_shared` copies of both
//! indices. Because every compressed list is refcounted, a snapshot
//! copies only the index *directories*; posting bytes are shared with
//! the live builder, which never mutates encoded lists in place (it
//! re-encodes into fresh lists), so published snapshots are torn-free
//! by construction.
//!
//! The snapshot slots into the engine's atomically swappable segment
//! set like any other segment — searches, pruning, scoring and
//! materialization cannot tell a memtable snapshot from a flushed
//! segment, which is exactly why pruned == exact byte-identity holds
//! with a memtable in the set. Sealing a memtable is therefore trivial:
//! the engine *keeps* the last published snapshot as an ordinary
//! segment and resets the builder; no data is rewritten at flush time
//! (the background compactor folds sealed memtables into bigger
//! segments later).

use std::sync::Arc;
use std::time::Instant;
use vxv_index::segment::corpus_doc_infos;
use vxv_index::{IndexSegment, InvertedIndex, PathIndex};
use vxv_xml::{Corpus, Document};

/// The mutable in-memory segment builder. One lives inside the engine's
/// write state while writes are enabled; it is **not** itself
/// searchable — [`MemTable::snapshot`] publishes an immutable segment
/// after every append.
pub(crate) struct MemTable {
    corpus: Corpus,
    path: PathIndex,
    inverted: InvertedIndex,
    /// Documents indexed since the last seal.
    entries: usize,
    /// Raw XML bytes indexed since the last seal (the seal threshold's
    /// size input).
    bytes: u64,
    /// When this builder started accumulating (the seal threshold's
    /// age input).
    created: Instant,
}

impl MemTable {
    pub(crate) fn new() -> MemTable {
        MemTable {
            corpus: Corpus::new(),
            path: PathIndex::default(),
            inverted: InvertedIndex::default(),
            entries: 0,
            bytes: 0,
            created: Instant::now(),
        }
    }

    /// Index one parsed document. The caller has already allocated its
    /// Dewey root ordinal and checked name uniqueness.
    pub(crate) fn add(&mut self, doc: Document, raw_bytes: u64) {
        self.path.add_document(&doc);
        self.inverted.add_document(&doc);
        self.corpus.add(doc);
        self.entries += 1;
        self.bytes += raw_bytes;
    }

    /// Whether a document by this name is buffered here.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.corpus.doc(name).is_some()
    }

    /// Documents indexed since the last seal.
    pub(crate) fn entries(&self) -> usize {
        self.entries
    }

    /// Raw XML bytes indexed since the last seal.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Age of the current accumulation.
    pub(crate) fn age(&self) -> std::time::Duration {
        self.created.elapsed()
    }

    /// Publish the current contents as an immutable segment: a
    /// generation-0 [`IndexSegment`] over `clone_shared` copies of both
    /// indices, plus a corpus clone for hit materialization. O(index
    /// directories + buffered documents), never O(posting bytes).
    pub(crate) fn snapshot(&self) -> (Arc<IndexSegment>, Arc<Corpus>) {
        let index = IndexSegment::from_parts(
            self.path.clone_shared(),
            self.inverted.clone_shared(),
            corpus_doc_infos(&self.corpus),
            0,
        );
        (Arc::new(index), Arc::new(self.corpus.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vxv_index::cursor::collect_postings;
    use vxv_xml::parse_document;

    #[test]
    fn snapshot_equals_a_bulk_build_over_the_same_documents() {
        let mut mt = MemTable::new();
        let mut reference = Corpus::new();
        for (i, (name, xml)) in [
            ("a.xml", "<r><e>xml search</e></r>"),
            ("b.xml", "<r><e>xml views</e><e>virtual</e></r>"),
        ]
        .iter()
        .enumerate()
        {
            let doc = parse_document(name, xml, i as u32 + 1).unwrap();
            reference.add(doc.clone());
            mt.add(doc, xml.len() as u64);
        }
        let (snap, corpus) = mt.snapshot();
        let bulk = IndexSegment::build(&reference);
        assert_eq!(snap.docs(), bulk.docs());
        for kw in ["xml", "search", "views", "virtual"] {
            assert_eq!(
                collect_postings(snap.inverted().postings(kw)),
                collect_postings(bulk.inverted().postings(kw)),
                "keyword {kw}"
            );
        }
        assert!(corpus.doc("a.xml").is_some());
        assert_eq!(mt.entries(), 2);
    }

    #[test]
    fn snapshots_are_isolated_from_later_appends() {
        let mut mt = MemTable::new();
        mt.add(parse_document("a.xml", "<r><e>first</e></r>", 1).unwrap(), 10);
        let (snap1, _) = mt.snapshot();
        mt.add(parse_document("b.xml", "<r><e>second</e></r>", 2).unwrap(), 10);
        // The earlier snapshot still covers exactly one document.
        assert_eq!(snap1.doc_count(), 1);
        assert_eq!(collect_postings(snap1.inverted().postings("second")).len(), 0);
        let (snap2, _) = mt.snapshot();
        assert_eq!(snap2.doc_count(), 2);
        assert_eq!(collect_postings(snap2.inverted().postings("second")).len(), 1);
    }
}
