#![warn(missing_docs)]
//! # vxv-core — Efficient Keyword Search over Virtual XML Views
//!
//! A faithful reimplementation of Shao, Guo, Botev, Bhaskar, Chettiar,
//! Yang & Shanmugasundaram, *Efficient Keyword Search over Virtual XML
//! Views*, VLDB 2007: ranked keyword search over **unmaterialized** XQuery
//! views, answered from indices alone — grown into an owned,
//! service-grade API.
//!
//! ## The service API: catalog → prepared view → hit stream
//!
//! Everything is owned and `Send + Sync + 'static`: an engine is an
//! `Arc` handle over shared indices and a shared [`DocumentSource`], a
//! [`PreparedView`] owns its engine handle, and a [`ViewCatalog`] owns
//! both — so a long-lived server holds the whole stack without a single
//! borrow. Work is split by what it is proportional to:
//!
//! 1. **Register** (view-proportional, paid once) —
//!    [`ViewCatalog::register`] / [`ViewSearchEngine::prepare`]: parse,
//!    *Query Pattern Tree* generation ([`qpt_gen::generate_qpts`]), and
//!    the `PrepareLists` probe phase (one path-index probe per QPT node).
//!    A probe *selects index rows* into a cursor plan
//!    ([`prepare::PreparedLists`]) — entries stay block-compressed inside
//!    the index, nothing is copied. The catalog shares each prepared
//!    view via `Arc` across any number of threads, and absorbs ad-hoc
//!    view texts through a capacity-bounded LRU.
//! 2. **Search** (query-proportional, paid per request) —
//!    [`PreparedView::search`]: the single-pass index-only *Pruned
//!    Document Tree* heap merge ([`generate::generate_pdt_from_lists`])
//!    streaming the plan's cursors, the regular XQuery evaluator over the
//!    PDTs, TF-IDF scoring *identical* to the materialized view's
//!    (Theorem 4.1), and top-k materialization — the only step that
//!    touches base documents. [`PreparedView::hits`] returns the same
//!    ranking as a pull-based [`HitStream`] that materializes each hit
//!    on demand instead.
//!
//! Requests are service-grade: a [`SearchRequest`] carries keywords, `k`,
//! conjunctive/disjunctive [`KeywordMode`], output switches, a
//! [`SearchRequest::deadline`] and a [`CancelToken`]. Deadlines and
//! cancellation are checked at phase boundaries *and inside the PDT merge
//! loop*; a tripped control aborts with
//! [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`]
//! carrying the partial [`PhaseTimings`] — never a silently truncated
//! result. Batches fan out over [`ViewCatalog::search_batch`]'s worker
//! pool.
//!
//! ## Score-bounded top-k pruning
//!
//! Scoring is **score-bounded by default** ([`SearchRequest::prune`],
//! on unless disabled): exact per-element tf probes are deferred out of
//! PDT generation, the inverted index's block-max metadata
//! ([`vxv_index::InvertedIndex::subtree_tf_estimate`]) bounds every
//! candidate's score, and [`score_and_rank_bounded`] stops resolving
//! candidates as soon as the best remaining bound falls strictly below
//! the current k-th best exact score. Because idf, the matching count
//! and every returned score stay exact, pruned responses are
//! **byte-identical** to the exact reference path (`prune(false)`) —
//! same hits, same score bits, same order — while the work avoided is
//! reported per search in [`SearchResponse::pruning`] and accumulated
//! into [`EngineStats::pruning`] ([`PruneStats`]: blocks never decoded,
//! candidates never resolved, scoring passes cut short).
//!
//! ## Segments: corpus → segments → snapshot → parallel merge
//!
//! The index is partitioned by document into immutable
//! [`vxv_index::IndexSegment`]s behind an atomically swappable segment
//! set. [`ViewSearchEngine::ingest`] makes new documents searchable by
//! building **one new segment** (under fresh Dewey root ordinals) and
//! swapping the set — never rewriting old segments;
//! [`ViewSearchEngine::compact`] merges size-tiered segment groups into
//! bigger ones whose indices are byte-identical to a single build over
//! the union. A [`PreparedView`] freezes the snapshot it was prepared
//! against (searches are never torn by concurrent ingests — re-prepare
//! to see new documents), plans each QPT against the segment owning its
//! projected document, fans per-segment PDT generation across a scoped
//! worker pool, and merges scores across segments byte-identically to
//! the single-segment pipeline. [`ViewSearchEngine::stats`] /
//! [`ViewSearchEngine::segments`] aggregate per-segment work counters
//! and footprints into one [`EngineStats`] report.
//!
//! Indices persist: [`vxv_index::IndexBundle`] serializes every segment
//! next to a [`vxv_xml::DiskStore`] (versioned `indices.vxi`, v1 files
//! still load), and [`ViewSearchEngine::open`] cold-starts an engine
//! from disk without re-tokenizing or re-walking base documents.
//!
//! ## The real-time write path: WAL → memtable → flush → compact
//!
//! [`ViewSearchEngine::enable_writes`] turns the bulk-load engine into
//! a live one. Every [`ViewSearchEngine::append`] batch is logged to a
//! checksummed write-ahead log ([`vxv_index::wal`], fsync schedule per
//! [`WriteConfig`]) **before** it is indexed into an in-memory
//! memtable, whose snapshot is published into the segment set as an
//! ordinary immutable segment — so a freshly appended document is
//! searchable before any flush, and pruned == exact byte-identity
//! holds with a memtable in the set. On a size/age threshold (or
//! [`ViewSearchEngine::flush_memtable`]) the memtable seals: its last
//! snapshot simply stays behind as a normal segment, and a background
//! compaction thread folds sealed segments into bigger ones with the
//! usual size-tiered [`ViewSearchEngine::compact`] (clean shutdown:
//! joined when the last engine handle drops). `enable_writes` replays
//! the WAL on startup — truncating a torn tail record typed, never
//! panicking — so a crash at any write boundary recovers to exactly
//! the acknowledged state. [`EngineStats::writes`] reports the
//! counters ([`WriteStats`]).
//!
//! ```
//! use vxv_core::{SearchRequest, ViewCatalog, ViewSearchEngine};
//! use vxv_xml::Corpus;
//!
//! let mut corpus = Corpus::new();
//! corpus.add_parsed("books.xml",
//!     "<books><book><title>XML search in practice</title><year>2004</year></book>\
//!      <book><title>Cooking</title><year>2001</year></book></books>").unwrap();
//!
//! // A long-lived service owns the whole stack — no borrows anywhere.
//! let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
//!
//! // Pay the view analysis once, under a name...
//! catalog.register("recent",
//!     "for $b in fn:doc(books.xml)/books/book where $b/year > 2000 \
//!      return <hit> { $b/title } </hit>").unwrap();
//!
//! // ...then answer any number of keyword searches against it.
//! let out = catalog.search("recent",
//!     &SearchRequest::new(["xml", "search"]).top_k(10)).unwrap();
//! assert_eq!(out.view_size, 2);
//! assert_eq!(out.hits.len(), 1);
//! assert!(out.hits[0].xml.contains("XML search in practice"));
//!
//! // Or stream the hits, materializing one at a time.
//! let stream = catalog.get("recent").unwrap()
//!     .hits(&SearchRequest::new(["xml"])).unwrap();
//! for hit in stream {
//!     let hit = hit.unwrap();
//!     assert!(hit.rank >= 1);
//! }
//! ```
//!
//! The deprecated PR-1 one-shot surface (`ViewSearchEngine::search`,
//! `explain`, `SearchOutcome`, …) is gated behind the default-on
//! `legacy-api` cargo feature for one release; disable default features
//! to build against the owned API only.

pub mod cache;
pub mod catalog;
pub mod control;
pub mod engine;
mod fanout;
pub mod generate;
mod memtable;
pub mod oracle;
pub mod pdt;
pub mod prepare;
pub mod prepared;
pub mod qpt;
pub mod qpt_gen;
pub mod request;
pub mod router;
pub mod scoring;
pub mod stream;
pub mod tenant;
pub mod term;

pub use cache::{request_fingerprint, CacheKey, CacheStats, ResultCache};
pub use catalog::{
    CatalogStats, NamedRequest, ViewCatalog, DEFAULT_ADHOC_CAPACITY, QUOTA_RETRY_AFTER,
};
pub use control::CancelToken;
pub use engine::{
    CheckpointReport, CompactReport, EngineError, EngineStats, IngestReport, ReplayReport,
    SegmentInfo, ViewSearchEngine, WriteConfig, WriteStats,
};
pub use generate::{generate_pdt, DocMeta, GenerateStats};
pub use pdt::{Pdt, PdtElem, PdtNodeInfo};
pub use prepare::{prepare_lists, MaterializedLists, NodePlan, PreparedLists};
pub use prepared::{PreparedView, ProbeReport, QptReport, QueryPlan};
pub use qpt::{Qpt, QptEdge, QptNode, QptNodeId};
pub use qpt_gen::{generate_qpts, QptGenError};
pub use request::{PhaseTimings, SearchHit, SearchRequest, SearchResponse};
pub use router::{shard_of, ScatterHit, ScatterResponse, ShardReport, ShardedCatalog};
pub use scoring::{
    score_and_rank, score_and_rank_boosted, score_and_rank_bounded, score_and_rank_bounded_boosted,
    BoundedCandidate, ElementStats, KeywordMode, PruneStats, ScoredElement, ScoringOutcome,
};
pub use stream::HitStream;
pub use tenant::{
    SearchPermit, TenantId, TenantQuotas, TenantRegistry, TenantState, TenantStats, PUBLIC_TENANT,
};
pub use term::{QueryTerm, TermParseError};

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use engine::SearchOutcome;

/// What [`ViewSearchEngine::explain`] used to return.
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.1.0", note = "renamed to `QueryPlan`")]
pub type ExplainOutput = QueryPlan;

pub use vxv_index::{Footprint, FsyncPolicy, IndexBundle, IndexFootprint};
pub use vxv_xml::DocumentSource;

/// The query-language reference — `docs/QUERY.md` rendered as rustdoc,
/// so its examples compile and run as doctests (`cargo test --doc`).
#[doc = include_str!("../../../docs/QUERY.md")]
pub mod query_reference {}
