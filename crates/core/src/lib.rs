#![warn(missing_docs)]
//! # vxv-core — Efficient Keyword Search over Virtual XML Views
//!
//! A faithful reimplementation of Shao, Guo, Botev, Bhaskar, Chettiar,
//! Yang & Shanmugasundaram, *Efficient Keyword Search over Virtual XML
//! Views*, VLDB 2007: ranked keyword search over **unmaterialized** XQuery
//! views, answered from indices alone.
//!
//! ## The prepared-view API
//!
//! Work is split by what it is proportional to:
//!
//! 1. [`ViewSearchEngine::prepare`] — everything proportional to the
//!    *view definition*, paid once: parse, *Query Pattern Tree*
//!    generation ([`qpt_gen::generate_qpts`]), and the `PrepareLists`
//!    probe phase (one path-index probe per QPT node, with pattern
//!    expansion against the path dictionary). A probe *selects index
//!    rows* into a cursor plan ([`prepare::PreparedLists`]) — entries
//!    stay block-compressed inside the index, nothing is copied;
//! 2. [`PreparedView::search`] — everything proportional to the *query*,
//!    paid per request: the single-pass index-only *Pruned Document Tree*
//!    heap merge ([`generate::generate_pdt_from_lists`]) streaming the
//!    plan's cursors, the regular XQuery evaluator over the PDTs, TF-IDF
//!    scoring *identical* to the materialized view's (Theorem 4.1), and
//!    top-k materialization — the only step that touches base documents.
//!
//! Indices persist: [`vxv_index::IndexBundle`] serializes them next to a
//! [`vxv_xml::DiskStore`], and [`ViewSearchEngine::open`] cold-starts an
//! engine from disk without re-tokenizing or re-walking base documents.
//!
//! A [`SearchRequest`] carries keywords, `k`, conjunctive/disjunctive
//! [`KeywordMode`], and switches for materialization, timing collection,
//! and plan reporting; a [`SearchResponse`] carries the ranked hits plus
//! everything the experiments report. The engine is generic over a
//! [`DocumentSource`] — [`vxv_xml::Corpus`] in memory or
//! [`vxv_xml::DiskStore`] on disk — and both engine and prepared view are
//! `Send + Sync`, so one prepared view serves concurrent searches.
//!
//! ```
//! use vxv_core::{SearchRequest, ViewSearchEngine};
//! use vxv_xml::Corpus;
//!
//! let mut corpus = Corpus::new();
//! corpus.add_parsed("books.xml",
//!     "<books><book><title>XML search in practice</title><year>2004</year></book>\
//!      <book><title>Cooking</title><year>2001</year></book></books>").unwrap();
//!
//! let engine = ViewSearchEngine::new(&corpus);
//! // Pay the view analysis once...
//! let view = engine.prepare(
//!     "for $b in fn:doc(books.xml)/books/book where $b/year > 2000 \
//!      return <hit> { $b/title } </hit>").unwrap();
//! // ...then answer any number of keyword searches against it.
//! let out = view.search(&SearchRequest::new(["xml", "search"]).top_k(10)).unwrap();
//! assert_eq!(out.view_size, 2);
//! assert_eq!(out.hits.len(), 1);
//! assert!(out.hits[0].xml.contains("XML search in practice"));
//! ```

pub mod engine;
pub mod generate;
pub mod oracle;
pub mod pdt;
pub mod prepare;
pub mod prepared;
pub mod qpt;
pub mod qpt_gen;
pub mod request;
pub mod scoring;

pub use engine::{EngineError, SearchOutcome, ViewSearchEngine};
pub use generate::{generate_pdt, DocMeta, GenerateStats};
pub use pdt::{Pdt, PdtElem, PdtNodeInfo};
pub use prepare::{prepare_lists, MaterializedLists, NodePlan, PreparedLists};
pub use prepared::{PreparedView, ProbeReport, QptReport, QueryPlan};
pub use qpt::{Qpt, QptEdge, QptNode, QptNodeId};
pub use qpt_gen::{generate_qpts, QptGenError};
pub use request::{PhaseTimings, SearchHit, SearchRequest, SearchResponse};
pub use scoring::{score_and_rank, ElementStats, KeywordMode, ScoredElement, ScoringOutcome};

/// What [`ViewSearchEngine::explain`] used to return.
#[deprecated(since = "0.1.0", note = "renamed to `QueryPlan`")]
pub type ExplainOutput = QueryPlan;

pub use vxv_index::{Footprint, IndexBundle, IndexFootprint};
pub use vxv_xml::DocumentSource;
