#![warn(missing_docs)]
//! # vxv-core — Efficient Keyword Search over Virtual XML Views
//!
//! A faithful reimplementation of Shao, Guo, Botev, Bhaskar, Chettiar,
//! Yang & Shanmugasundaram, *Efficient Keyword Search over Virtual XML
//! Views*, VLDB 2007: ranked keyword search over **unmaterialized** XQuery
//! views, answered from indices alone.
//!
//! The pipeline (Fig. 3 of the paper):
//!
//! 1. [`qpt_gen::generate_qpts`] — analyze the view definition into one
//!    *Query Pattern Tree* per base document (mandatory/optional edges,
//!    leaf predicates, `v`/`c` annotations);
//! 2. [`generate::generate_pdt`] — build each *Pruned Document Tree* in a
//!    single merge pass over path-index and inverted-index probe lists,
//!    never touching base documents;
//! 3. the regular XQuery evaluator runs over the PDTs, and
//!    [`scoring::score_and_rank`] computes TF-IDF scores *identical* to
//!    the materialized view's (Theorem 4.1) before the top-k hits — and
//!    only those — are expanded from document storage.
//!
//! [`engine::ViewSearchEngine`] wires the phases together:
//!
//! ```
//! use vxv_core::{KeywordMode, ViewSearchEngine};
//! use vxv_xml::Corpus;
//!
//! let mut corpus = Corpus::new();
//! corpus.add_parsed("books.xml",
//!     "<books><book><title>XML search in practice</title><year>2004</year></book>\
//!      <book><title>Cooking</title><year>2001</year></book></books>").unwrap();
//!
//! let engine = ViewSearchEngine::new(&corpus);
//! let out = engine.search(
//!     "for $b in fn:doc(books.xml)/books/book where $b/year > 2000 \
//!      return <hit> { $b/title } </hit>",
//!     &["xml", "search"], 10, KeywordMode::Conjunctive).unwrap();
//! assert_eq!(out.view_size, 2);
//! assert_eq!(out.hits.len(), 1);
//! assert!(out.hits[0].xml.contains("XML search in practice"));
//! ```

pub mod engine;
pub mod generate;
pub mod oracle;
pub mod pdt;
pub mod prepare;
pub mod qpt;
pub mod qpt_gen;
pub mod scoring;

pub use engine::{EngineError, ExplainOutput, PhaseTimings, ProbeReport, QptReport, SearchHit, SearchOutcome, ViewSearchEngine};
pub use generate::{generate_pdt, DocMeta, GenerateStats};
pub use pdt::{Pdt, PdtElem, PdtNodeInfo};
pub use qpt::{Qpt, QptEdge, QptNode, QptNodeId};
pub use qpt_gen::{generate_qpts, QptGenError};
pub use scoring::{score_and_rank, ElementStats, KeywordMode, ScoredElement, ScoringOutcome};
