//! [`ShardedCatalog`] — the N-shard scatter-gather router.
//!
//! One machine, N independent engines: the corpus is **partitioned by
//! document** across shards with a deterministic hash
//! ([`shard_of`]), each shard is an ordinary
//! [`ViewSearchEngine`] + [`ViewCatalog`] pair, and this router is the
//! single facade in front of them. The payoff under write traffic is
//! *blast-radius isolation*: an append lands on exactly one shard, so
//! it bumps **one** shard's segment-set epoch — the other shards' result
//! caches, probe pins, and prepared views stay hot. With one engine,
//! every append invalidates everything.
//!
//! ## Why routed searches are byte-identical to a union build
//!
//! A view's QPTs each project one base document, and idf is computed
//! over the **view sequence** — never over unrelated corpus documents
//! (see [`crate::prepared`]). So a view whose referenced documents all
//! live on shard *i* answers searches on shard *i* byte-identically
//! (hits, score bits, order, `matching`, `idf`) to the same view over a
//! single engine holding *every* shard's documents: the extra documents
//! a union engine holds can influence nothing the view touches. The
//! router therefore routes `register`/`search` to the one shard the
//! view's documents hash to, and rejects views whose documents hash to
//! *different* shards with the typed [`EngineError::CrossShard`] —
//! never a silently re-scored merge.
//!
//! Cross-shard requests exist too, as their own explicitly-shaped API:
//! [`ShardedCatalog::search_scatter`] fans one request over several
//! named views (wherever they live) through the process-wide worker
//! pool and gathers a global top-k with a bounded min-heap and a
//! deterministic tie-break. Its hits keep their per-view scores — idf
//! is per view by definition, the gather does not pretend otherwise.
//!
//! Tenancy stays global: every shard's catalog shares **one**
//! [`TenantRegistry`] (see [`ViewCatalog::with_registry`]), so quotas
//! and per-tenant counters mean the same thing they mean with one
//! engine.

use crate::cache::CacheStats;
use crate::catalog::{CatalogStats, NamedRequest, ViewCatalog, DEFAULT_ADHOC_CAPACITY};
use crate::engine::{
    CheckpointReport, EngineError, EngineStats, IngestReport, ReplayReport, ViewSearchEngine,
    WriteConfig,
};
use crate::prepared::PreparedView;
use crate::qpt_gen::generate_qpts;
use crate::request::{SearchRequest, SearchResponse};
use crate::tenant::{TenantId, TenantRegistry};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use vxv_xml::{Corpus, DocumentSource};
use vxv_xquery::parse_query;

/// The deterministic doc→shard map: FNV-1a over the document name,
/// modulo the shard count. Stable across runs and processes — routing
/// is a pure function of the name, never of arrival order.
pub fn shard_of(doc_name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "a sharded catalog has at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in doc_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One hit of a cross-shard gather: a [`crate::SearchHit`] plus where
/// it came from. Scores are the per-view TF-IDF scores — idf is scoped
/// to each view's sequence, so scores are comparable the way any two
/// views' scores are, and the gather's ordering is deterministic
/// regardless.
#[derive(Clone, Debug)]
pub struct ScatterHit {
    /// Global rank after the gather (1-based).
    pub rank: usize,
    /// The view this hit came from.
    pub view: String,
    /// The shard that view lives on.
    pub shard: usize,
    /// The hit's score within its view.
    pub score: f64,
    /// Per-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length of the view element.
    pub byte_len: u64,
    /// Materialized XML (empty if the request disabled it).
    pub xml: String,
}

/// What a [`ShardedCatalog::search_scatter`] gather returns.
#[derive(Clone, Debug)]
pub struct ScatterResponse {
    /// Global top-k across every fanned view, deterministically ordered
    /// (score desc by total order, then view name, then per-view rank).
    pub hits: Vec<ScatterHit>,
    /// Sum of the fanned views' `matching` counts.
    pub matching: usize,
    /// Sum of the fanned views' `view_size`s.
    pub view_size: usize,
    /// How many named views the request fanned over.
    pub fanned: usize,
}

/// Min-heap key for the bounded top-k gather: orders by score
/// ascending (so the heap root is the weakest survivor), with the
/// deterministic tie-break inverted to match.
struct GatherKey {
    score: f64,
    view: String,
    rank: usize,
}

impl GatherKey {
    /// Total order: score (total_cmp), then view name, then rank —
    /// never ambiguous, even for NaN or negative-zero scores.
    fn cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.view.cmp(&self.view))
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

impl PartialEq for GatherKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for GatherKey {}
impl PartialOrd for GatherKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GatherKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_key(other)
    }
}

/// A per-shard report wrapper: which shard produced it.
#[derive(Clone, Debug)]
pub struct ShardReport<T> {
    /// The shard index.
    pub shard: usize,
    /// The shard's own report.
    pub report: T,
}

/// N independent [`ViewCatalog`]s behind one facade, routed by the
/// deterministic doc→shard map; see the module docs.
pub struct ShardedCatalog<S: DocumentSource = Corpus> {
    shards: Vec<Arc<ViewCatalog<S>>>,
    tenants: Arc<TenantRegistry>,
    /// Which shard owns each registered `(tenant, view)` — recorded at
    /// registration, consulted on every named search.
    routes: RwLock<HashMap<(TenantId, String), usize>>,
}

impl<S: DocumentSource> std::fmt::Debug for ShardedCatalog<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("shards", &self.shards.len())
            .field("routes", &self.routes.read().unwrap().len())
            .finish_non_exhaustive()
    }
}

impl<S: DocumentSource> ShardedCatalog<S> {
    /// Wrap `engines` — one per shard, in shard order — sharing a
    /// single tenant registry across every shard's catalog.
    pub fn from_engines(engines: Vec<ViewSearchEngine<S>>) -> Self {
        assert!(!engines.is_empty(), "a sharded catalog needs at least one shard");
        let tenants = Arc::new(TenantRegistry::new());
        let shards = engines
            .into_iter()
            .map(|engine| {
                Arc::new(ViewCatalog::with_registry(
                    engine,
                    Arc::clone(&tenants),
                    DEFAULT_ADHOC_CAPACITY,
                ))
            })
            .collect();
        ShardedCatalog { shards, tenants, routes: RwLock::new(HashMap::new()) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the doc→shard map assigns `doc_name` to.
    pub fn shard_of_doc(&self, doc_name: &str) -> usize {
        shard_of(doc_name, self.shards.len())
    }

    /// Shard `i`'s catalog (panics if out of range).
    pub fn shard(&self, i: usize) -> &Arc<ViewCatalog<S>> {
        &self.shards[i]
    }

    /// The shared tenant table (one registry across all shards).
    pub fn tenants(&self) -> &TenantRegistry {
        &self.tenants
    }

    /// Where `(tenant, view)` is registered, if anywhere.
    pub fn route_of(&self, tenant: &TenantId, view: &str) -> Option<usize> {
        self.routes.read().unwrap().get(&(tenant.clone(), view.to_string())).copied()
    }

    /// Resolve the single shard `view_text`'s referenced documents hash
    /// to, or [`EngineError::CrossShard`] when they disagree.
    fn owning_shard(&self, name: &str, view_text: &str) -> Result<usize, EngineError> {
        let query = parse_query(view_text)?;
        let qpts = generate_qpts(&query)?;
        let docs: Vec<(String, usize)> =
            qpts.iter().map(|q| (q.doc_name.clone(), self.shard_of_doc(&q.doc_name))).collect();
        let Some(&(_, first)) = docs.first() else {
            // A view referencing no documents can live anywhere;
            // pick shard 0 deterministically.
            return Ok(0);
        };
        if docs.iter().any(|&(_, s)| s != first) {
            return Err(EngineError::CrossShard { view: name.to_string(), docs });
        }
        Ok(first)
    }

    /// Register `view_text` under the public tenant's `name` on the
    /// shard owning its documents. See [`Self::register_for`].
    pub fn register(
        &self,
        name: impl Into<String>,
        view_text: &str,
    ) -> Result<Arc<PreparedView<S>>, EngineError> {
        self.register_for(&TenantId::public(), name, view_text)
    }

    /// Route `view_text` to the one shard its referenced documents hash
    /// to, register it there under `(tenant, name)`, and record the
    /// route. Documents hashing to different shards are a typed
    /// [`EngineError::CrossShard`] — the router never silently splits a
    /// view.
    pub fn register_for(
        &self,
        tenant: &TenantId,
        name: impl Into<String>,
        view_text: &str,
    ) -> Result<Arc<PreparedView<S>>, EngineError> {
        let name = name.into();
        let shard = self.owning_shard(&name, view_text)?;
        let view = self.shards[shard].register_for(tenant, &name, view_text)?;
        let prev = self.routes.write().unwrap().insert((tenant.clone(), name.clone()), shard);
        // Re-registration may move a view between shards (its text
        // changed): drop the stale twin so exactly one shard serves it.
        if let Some(old) = prev {
            if old != shard {
                self.shards[old].evict_for(tenant, &name);
            }
        }
        Ok(view)
    }

    /// The prepared view under the public tenant's `name`. See
    /// [`Self::get_for`].
    pub fn get(&self, name: &str) -> Option<Arc<PreparedView<S>>> {
        self.get_for(&TenantId::public(), name)
    }

    /// The prepared view under `(tenant, name)`, routed to its owning
    /// shard (with that catalog's epoch refresh behavior).
    pub fn get_for(&self, tenant: &TenantId, name: &str) -> Option<Arc<PreparedView<S>>> {
        let shard = self.route_of(tenant, name)?;
        self.shards[shard].get_for(tenant, name)
    }

    /// Drop `(tenant, name)` from its owning shard. Returns whether it
    /// existed.
    pub fn evict_for(&self, tenant: &TenantId, name: &str) -> bool {
        let Some(shard) = self.routes.write().unwrap().remove(&(tenant.clone(), name.to_string()))
        else {
            return false;
        };
        self.shards[shard].evict_for(tenant, name)
    }

    /// Search the public tenant's `name`. See [`Self::search_for`].
    pub fn search(
        &self,
        name: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        self.search_for(&TenantId::public(), name, request)
    }

    /// Route a named search to the shard owning the view and run it
    /// there — admission quota, epoch refresh, result cache and all.
    /// Byte-identical to the same search against a single engine
    /// holding every shard's documents (see the module docs).
    pub fn search_for(
        &self,
        tenant: &TenantId,
        name: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        let Some(shard) = self.route_of(tenant, name) else {
            return Err(EngineError::ViewNotFound(name.to_string()));
        };
        self.shards[shard].search_for(tenant, name, request)
    }

    /// Fan a batch of named requests across the worker pool, each
    /// routed to its view's owning shard; results come back in request
    /// order with per-request errors, exactly like
    /// [`ViewCatalog::search_batch`].
    pub fn search_batch(
        &self,
        requests: &[NamedRequest],
    ) -> Vec<Result<SearchResponse, EngineError>> {
        crate::fanout::fan_out(requests, |r| self.search_for(&r.tenant, &r.view, &r.request))
    }

    /// **Scatter-gather**: run `request` against every named view in
    /// `views` (each routed to its shard, fanned across the worker
    /// pool), then gather a single global top-`k` with a bounded
    /// min-heap. Hit ordering is deterministic: score descending by
    /// total order, ties broken by view name, then per-view rank. Any
    /// per-view failure fails the scatter (use [`Self::search_batch`]
    /// for per-request error isolation).
    pub fn search_scatter(
        &self,
        tenant: &TenantId,
        views: &[String],
        request: &SearchRequest,
    ) -> Result<ScatterResponse, EngineError> {
        let fanned = crate::fanout::fan_out(views, |name| {
            self.search_for(tenant, name, request).map(|resp| (name.clone(), resp))
        });
        let mut responses = Vec::with_capacity(fanned.len());
        for result in fanned {
            responses.push(result?);
        }

        let k = request.k();
        let mut matching = 0usize;
        let mut view_size = 0usize;
        // Bounded min-heap: the root is the weakest of the current
        // top-k, so each new hit either replaces it or is dropped in
        // O(log k) — gather cost is items × log k, independent of how
        // many hits the fanned views returned in total.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(GatherKey, usize, usize)>> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (vi, (name, resp)) in responses.iter().enumerate() {
            matching += resp.matching;
            view_size += resp.view_size;
            for (hi, hit) in resp.hits.iter().enumerate() {
                let key = GatherKey { score: hit.score, view: name.clone(), rank: hit.rank };
                heap.push(std::cmp::Reverse((key, vi, hi)));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let mut picked: Vec<(GatherKey, usize, usize)> =
            heap.into_iter().map(|std::cmp::Reverse(t)| t).collect();
        picked.sort_by(|a, b| b.0.cmp_key(&a.0));
        let hits = picked
            .into_iter()
            .enumerate()
            .map(|(rank, (key, vi, hi))| {
                let (name, resp) = &responses[vi];
                let hit = &resp.hits[hi];
                ScatterHit {
                    rank: rank + 1,
                    view: name.clone(),
                    shard: self.route_of(tenant, name).unwrap_or(0),
                    score: key.score,
                    tf: hit.tf.clone(),
                    byte_len: hit.byte_len,
                    xml: hit.xml.clone(),
                }
            })
            .collect();
        Ok(ScatterResponse { hits, matching, view_size, fanned: responses.len() })
    }

    /// Route an append batch: each document goes to the shard its name
    /// hashes to, per-shard sub-batches run **in parallel** (shards
    /// have independent WALs and mutate locks — this is the second
    /// sharding win under write traffic). Returns one report per shard
    /// that received documents, in shard order. All-or-nothing holds
    /// *per shard*, not across shards: a failing sub-batch reports its
    /// error in its slot without undoing sibling shards.
    pub fn append<N, X>(
        &self,
        docs: impl IntoIterator<Item = (N, X)>,
    ) -> Vec<ShardReport<Result<IngestReport, EngineError>>>
    where
        N: Into<String>,
        X: AsRef<str>,
    {
        let mut buckets: Vec<Vec<(String, String)>> = vec![Vec::new(); self.shards.len()];
        for (name, xml) in docs {
            let name = name.into();
            let shard = self.shard_of_doc(&name);
            buckets[shard].push((name, xml.as_ref().to_string()));
        }
        let work: Vec<(usize, Vec<(String, String)>)> =
            buckets.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect();
        let reports = crate::fanout::fan_out(&work, |(shard, batch)| {
            (*shard, self.shards[*shard].engine().append(batch.clone()))
        });
        reports.into_iter().map(|(shard, report)| ShardReport { shard, report }).collect()
    }

    /// Enable the real-time write path on every shard: shard `i` logs
    /// to `<base_dir>/shard-<i>/wal.vxl`. Returns per-shard replay
    /// reports.
    pub fn enable_writes(
        &self,
        base_dir: impl AsRef<Path>,
        config: WriteConfig,
    ) -> Result<Vec<ShardReport<ReplayReport>>, EngineError> {
        let base = base_dir.as_ref();
        let mut reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let dir = self.shard_dir(base, i);
            std::fs::create_dir_all(&dir)
                .map_err(|e| EngineError::Ingest(format!("shard {i} dir: {e}")))?;
            let report = shard.engine().enable_writes(dir.join(vxv_index::WAL_FILE), config)?;
            reports.push(ShardReport { shard: i, report });
        }
        Ok(reports)
    }

    /// Checkpoint every shard into `<base_dir>/shard-<i>/` (flush +
    /// persist + WAL truncation; see
    /// [`ViewSearchEngine::checkpoint`]).
    pub fn checkpoint(
        &self,
        base_dir: impl AsRef<Path>,
    ) -> Result<Vec<ShardReport<CheckpointReport>>, EngineError> {
        let base = base_dir.as_ref();
        let mut reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let dir = self.shard_dir(base, i);
            std::fs::create_dir_all(&dir)
                .map_err(|e| EngineError::Ingest(format!("shard {i} dir: {e}")))?;
            reports.push(ShardReport { shard: i, report: shard.engine().checkpoint(&dir)? });
        }
        Ok(reports)
    }

    /// The directory shard `i`'s durable state lives under.
    pub fn shard_dir(&self, base: &Path, i: usize) -> PathBuf {
        base.join(format!("shard-{i}"))
    }

    /// How many registered `(tenant, view)` routes each shard owns, in
    /// shard order.
    pub fn routes_per_shard(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards.len()];
        for &shard in self.routes.read().unwrap().values() {
            counts[shard] += 1;
        }
        counts
    }

    /// Per-shard engine stats, in shard order.
    pub fn shard_stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(|s| s.engine().stats()).collect()
    }

    /// Result/probe cache counters summed across shards (gauges sum
    /// too: total resident entries/bytes and total capacity).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.engine().result_cache().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
            total.stale += s.stale;
            total.entries += s.entries;
            total.bytes += s.bytes;
            total.capacity += s.capacity;
            total.probe_hits += s.probe_hits;
            total.probe_misses += s.probe_misses;
        }
        total
    }

    /// Catalog counters summed across shards.
    pub fn catalog_stats(&self) -> CatalogStats {
        let mut total = CatalogStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.prepares += s.prepares;
            total.evictions += s.evictions;
            total.refreshes += s.refreshes;
            total.named += s.named;
            total.adhoc += s.adhoc;
        }
        total
    }
}

impl ShardedCatalog<Corpus> {
    /// Partition `corpus` into `shards` sub-corpora by the doc→shard
    /// map and build one engine per shard. Root ordinals are preserved
    /// (they are globally unique already), so per-document index
    /// content is byte-identical to what a union build produces for
    /// that document.
    pub fn partition(corpus: &Corpus, shards: usize) -> Self {
        assert!(shards > 0, "a sharded catalog needs at least one shard");
        let mut parts: Vec<Corpus> = (0..shards).map(|_| Corpus::new()).collect();
        for doc in corpus.docs() {
            parts[shard_of(doc.name(), shards)].add(doc.clone());
        }
        Self::from_engines(parts.into_iter().map(ViewSearchEngine::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        for i in 0..8 {
            c.add_parsed(
                &format!("doc{i}.xml"),
                &format!(
                    "<lib><item><name>entry {i} xml search</name><year>200{i}</year></item></lib>"
                ),
            )
            .unwrap();
        }
        c
    }

    fn view_for(doc: usize) -> String {
        format!(
            "for $i in fn:doc(doc{doc}.xml)/lib/item where $i/year > 1999 \
             return <v> {{ $i/name }} </v>"
        )
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for n in 1..6 {
            for doc in ["a.xml", "b.xml", "some/longer/name.xml"] {
                let s = shard_of(doc, n);
                assert!(s < n);
                assert_eq!(s, shard_of(doc, n), "stable");
            }
        }
    }

    #[test]
    fn routed_search_matches_union_engine() {
        let union = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let sharded = ShardedCatalog::partition(&corpus(), 3);
        for doc in 0..8 {
            let name = format!("v{doc}");
            union.register(&name, &view_for(doc)).unwrap();
            sharded.register(&name, &view_for(doc)).unwrap();
        }
        let request = SearchRequest::new(["xml", "search"]).top_k(5);
        for doc in 0..8 {
            let name = format!("v{doc}");
            let a = union.search(&name, &request).unwrap();
            let b = sharded.search(&name, &request).unwrap();
            assert_eq!(a.matching, b.matching);
            assert_eq!(a.view_size, b.view_size);
            assert_eq!(a.idf, b.idf);
            assert_eq!(a.hits.len(), b.hits.len());
            for (x, y) in a.hits.iter().zip(&b.hits) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits");
                assert_eq!(x.xml, y.xml);
                assert_eq!(x.tf, y.tf);
            }
        }
    }

    #[test]
    fn unknown_view_is_not_found_and_routes_are_recorded() {
        let sharded = ShardedCatalog::partition(&corpus(), 4);
        sharded.register("v0", &view_for(0)).unwrap();
        let expected = sharded.shard_of_doc("doc0.xml");
        assert_eq!(sharded.route_of(&TenantId::public(), "v0"), Some(expected));
        let err = sharded.search("nope", &SearchRequest::new(["xml"])).unwrap_err();
        assert!(matches!(err, EngineError::ViewNotFound(_)), "{err}");
        assert!(sharded.evict_for(&TenantId::public(), "v0"));
        assert!(!sharded.evict_for(&TenantId::public(), "v0"));
    }

    #[test]
    fn cross_shard_views_are_rejected_typed() {
        let sharded = ShardedCatalog::partition(&corpus(), 8);
        // Find two documents on different shards (with 8 docs over 8
        // shards there is always a pair).
        let mut split = None;
        'outer: for a in 0..8 {
            for b in 0..8 {
                if sharded.shard_of_doc(&format!("doc{a}.xml"))
                    != sharded.shard_of_doc(&format!("doc{b}.xml"))
                {
                    split = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = split.expect("two docs on different shards");
        let text = format!(
            "for $x in fn:doc(doc{a}.xml)/lib/item, $y in fn:doc(doc{b}.xml)/lib/item \
             return <p> {{ $x/name }} {{ $y/name }} </p>"
        );
        let err = sharded.register("both", &text).unwrap_err();
        assert!(matches!(err, EngineError::CrossShard { .. }), "{err}");
        assert_eq!(sharded.route_of(&TenantId::public(), "both"), None);
    }

    #[test]
    fn scatter_gathers_global_topk_deterministically() {
        let sharded = ShardedCatalog::partition(&corpus(), 3);
        let names: Vec<String> = (0..8)
            .map(|doc| {
                let name = format!("v{doc}");
                sharded.register(&name, &view_for(doc)).unwrap();
                name
            })
            .collect();
        let request = SearchRequest::new(["xml"]).top_k(3);
        let out = sharded.search_scatter(&TenantId::public(), &names, &request).unwrap();
        assert_eq!(out.fanned, 8);
        assert_eq!(out.hits.len(), 3, "bounded to k");
        assert_eq!(out.matching, 8, "every view matched once");
        // Deterministic: a second scatter returns the identical order.
        let again = sharded.search_scatter(&TenantId::public(), &names, &request).unwrap();
        for (x, y) in out.hits.iter().zip(&again.hits) {
            assert_eq!((x.rank, &x.view, x.shard), (y.rank, &y.view, y.shard));
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // Ranks are 1-based and contiguous.
        assert_eq!(out.hits.iter().map(|h| h.rank).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_tenant_registry_spans_shards() {
        let sharded = ShardedCatalog::partition(&corpus(), 2);
        let acme = TenantId::new("acme");
        sharded.register_for(&acme, "v0", &view_for(0)).unwrap();
        sharded.register_for(&acme, "v1", &view_for(1)).unwrap();
        sharded.search_for(&acme, "v0", &SearchRequest::new(["xml"])).unwrap();
        sharded.search_for(&acme, "v1", &SearchRequest::new(["xml"])).unwrap();
        // Both searches landed in ONE tenant state, wherever the views
        // live.
        let stats = sharded.tenants().tenant(&acme).stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn append_routes_by_hash_and_isolates_other_shards_epochs() {
        let sharded = ShardedCatalog::partition(&corpus(), 4);
        let dir = std::env::temp_dir().join(format!("vxv-router-append-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        sharded.enable_writes(&dir, WriteConfig::default()).unwrap();
        let before: Vec<u64> = (0..4).map(|i| sharded.shard(i).engine().epoch()).collect();
        let new_doc = "fresh.xml";
        let target = sharded.shard_of_doc(new_doc);
        let reports = sharded.append([(new_doc, "<lib><item><name>fresh xml</name></item></lib>")]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].shard, target);
        reports[0].report.as_ref().unwrap();
        for (i, &was) in before.iter().enumerate() {
            let now = sharded.shard(i).engine().epoch();
            if i == target {
                assert!(now > was, "target shard epoch bumps");
            } else {
                assert_eq!(now, was, "other shards' epochs (and caches) untouched");
            }
        }
        drop(sharded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
