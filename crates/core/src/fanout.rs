//! The crate's one worker pool: fan independent items across a few
//! threads, collect results **in item order**.
//!
//! Shared by [`crate::catalog::ViewCatalog::search_batch`] (one search
//! per worker) and [`crate::prepared::PreparedView`]'s per-segment PDT
//! generation and scoring phases, so pool policy (worker sizing, slot
//! discipline) evolves in exactly one place. Single-item inputs and
//! single-core hosts run inline without spawning.
//!
//! The pool is **persistent**: worker threads are spawned lazily, up to
//! [`MAX_WORKERS`], on the first fan-out and then reused by every later
//! one — a search that fans out per segment in three phases pays the
//! thread-spawn cost zero times, not three times per query. Each
//! `fan_out` call runs a *batch*: the caller claims items alongside the
//! pool (by index, so uneven item costs balance), then blocks until its
//! helpers drain. While blocked it **helps execute queued work** from
//! other batches, which is what makes nested fan-outs (a batch worker's
//! search fanning its own PDT generation) deadlock-free even when every
//! pool thread is busy.
//!
//! [`fan_out_init`] additionally gives every participating worker its
//! own lazily-created state (e.g. a reusable
//! [`vxv_index::DecodeScratch`]), so per-item probe loops allocate
//! nothing.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Upper bound on pool threads, and on workers per fan-out. The pool is
/// shared process-wide, so nested fan-outs multiply queued tasks, never
/// threads.
const MAX_WORKERS: usize = 8;

/// A queued unit of pool work (a batch helper with its lifetime erased;
/// see the safety argument in [`fan_out_init`]).
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Task>>,
    /// Signals workers that the queue is non-empty.
    ready: Condvar,
    /// Threads spawned so far (monotonic, capped at [`MAX_WORKERS`]).
    threads: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        threads: AtomicUsize::new(0),
    })
}

impl Pool {
    /// Queue `tasks` and make sure enough threads exist to run them.
    fn submit(&'static self, tasks: Vec<Task>) {
        let backlog = {
            let mut q = self.queue.lock().unwrap();
            q.extend(tasks);
            q.len()
        };
        // Lazily grow toward MAX_WORKERS. A failed spawn is tolerable:
        // waiting callers execute queued tasks themselves.
        while self.threads.load(Ordering::Relaxed) < backlog.min(MAX_WORKERS) {
            let n = self.threads.fetch_add(1, Ordering::Relaxed);
            if n >= MAX_WORKERS {
                self.threads.store(MAX_WORKERS, Ordering::Relaxed);
                break;
            }
            let _ = std::thread::Builder::new()
                .name(format!("vxv-fanout-{n}"))
                .spawn(move || self.worker_loop());
        }
        self.ready.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.ready.wait(q).unwrap();
                }
            };
            task();
        }
    }

    /// Steal one queued task, if any (used by callers waiting on their
    /// batch so nested fan-outs always make progress).
    fn try_steal(&self) -> Option<Task> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// Completion state of one fan-out call, shared between the caller and
/// its queued helpers.
struct Batch {
    /// Helpers that have not yet finished.
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Batch {
    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        self.done.notify_all();
    }

    /// Block until every helper finished, executing queued pool work
    /// while waiting. Called from a drop guard so the caller's frame
    /// (which helpers borrow) outlives them even during unwinding.
    fn wait(&self) {
        loop {
            {
                let pending = self.pending.lock().unwrap();
                if *pending == 0 {
                    return;
                }
            }
            // Help first: if every pool thread is parked inside another
            // batch's wait (nested fan-out), someone must run the queue.
            if let Some(task) = pool().try_steal() {
                task();
                continue;
            }
            let pending = self.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            let _ = self.done.wait_timeout(pending, Duration::from_millis(1)).unwrap();
        }
    }
}

/// Waits for the batch on drop — the linchpin of the lifetime-erasure
/// safety argument below.
struct BatchGuard<'a>(&'a Batch);

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Apply `f` to every item on the shared worker pool and return the
/// results in item order. Work is claimed by index, so uneven item
/// costs balance across workers.
pub(crate) fn fan_out<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    fan_out_init(items, || (), move |(), t| f(t))
}

/// As [`fan_out`], with one lazily-initialized mutable state per
/// participating worker, threaded through every call that worker makes.
/// The scorer's estimate pass uses this to give each worker a reusable
/// [`vxv_index::DecodeScratch`] so thousands of probes share a handful
/// of allocations.
pub(crate) fn fan_out_init<T: Sync, R: Send, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len())
        .min(MAX_WORKERS);
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|t| f(&mut state, t)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let batch = Batch {
        pending: Mutex::new(workers - 1),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    };

    // One claim loop shared by the caller and every helper.
    let run_claims = |state: &mut S| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        let result = f(state, item);
        *slots[i].lock().unwrap() = Some(result);
    };

    {
        // SAFETY (lifetime erasure): the helpers below borrow `items`,
        // `f`, `init`, `slots`, `next` and `batch` from this frame, yet
        // are queued as 'static tasks. `guard` — created *before* the
        // tasks are submitted and dropped at the end of this block, on
        // return or unwind alike — blocks until `batch.pending` reaches
        // zero, and every task decrements it exactly once (after its
        // last touch of any borrow, panic or not). So no task can
        // outlive the frame it borrows from.
        let guard = BatchGuard(&batch);
        let mut tasks: Vec<Task> = Vec::with_capacity(workers - 1);
        for _ in 0..workers - 1 {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                if catch_unwind(AssertUnwindSafe(|| {
                    let mut state = init();
                    run_claims(&mut state);
                }))
                .is_err()
                {
                    batch.panicked.store(true, Ordering::Relaxed);
                }
                batch.finish_one();
            });
            tasks.push(unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) });
        }
        pool().submit(tasks);
        let mut state = init();
        run_claims(&mut state);
        drop(guard);
    }
    if batch.panicked.load(Ordering::Relaxed) {
        panic!("fan_out worker panicked");
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker pool fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = fan_out(&items, |i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: [u32; 0] = [];
        assert!(fan_out(&empty, |x| *x).is_empty());
        assert_eq!(fan_out(&[7u32], |x| *x + 1), vec![8]);
    }

    #[test]
    fn nested_fan_outs_do_not_deadlock() {
        // Outer workers fan out again while every pool thread may be
        // busy: waiting callers must help drain the queue.
        let outer: Vec<u64> = (0..8).collect();
        let out = fan_out(&outer, |o| {
            let inner: Vec<u64> = (0..16).map(|i| o * 100 + i).collect();
            fan_out(&inner, |i| i + 1).into_iter().sum::<u64>()
        });
        let want: Vec<u64> =
            outer.iter().map(|o| (0..16).map(|i| o * 100 + i + 1).sum::<u64>()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_participant() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..200).collect();
        let out = fan_out_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, i| {
                scratch.push(*i); // reused buffer, grows per worker
                *i * 3
            },
        );
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=MAX_WORKERS).contains(&n), "one state per participant, got {n}");
    }

    #[test]
    fn worker_panics_propagate_and_do_not_poison_the_pool() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            fan_out(&items, |i| {
                if *i == 13 {
                    panic!("boom");
                }
                *i
            })
        });
        assert!(result.is_err(), "a worker panic must surface to the caller");
        // The pool keeps serving later batches.
        assert_eq!(fan_out(&items, |i| i + 1)[0], 1);
    }
}
