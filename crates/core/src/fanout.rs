//! The crate's one scoped worker pool: fan independent items across a
//! few threads, collect results **in item order**.
//!
//! Shared by [`crate::catalog::ViewCatalog::search_batch`] (one search
//! per worker) and [`crate::prepared::PreparedView`]'s per-segment PDT
//! generation, so pool policy (worker sizing, slot discipline) evolves
//! in exactly one place. Single-item inputs and single-core hosts run
//! inline without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on workers per fan-out. Note fan-outs can nest — a batch
/// worker's search fans its own PDT generation — so this also bounds the
/// multiplication factor.
const MAX_WORKERS: usize = 8;

/// Apply `f` to every item on a scoped worker pool and return the
/// results in item order. Work is claimed by index, so uneven item costs
/// balance across workers.
pub(crate) fn fan_out<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len())
        .min(MAX_WORKERS);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker pool fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = fan_out(&items, |i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: [u32; 0] = [];
        assert!(fan_out(&empty, |x| *x).is_empty());
        assert_eq!(fan_out(&[7u32], |x| *x + 1), vec![8]);
    }
}
