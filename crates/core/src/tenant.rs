//! Multi-tenant state: identities, quotas, and per-tenant work counters.
//!
//! The serving tier shares one [`crate::catalog::ViewCatalog`] (and the
//! indices behind it) across many tenants, so tenancy is woven through
//! the core rather than bolted onto the network edge: the **tenant id
//! leads every catalog lookup key** (the OceanBase system-table idiom),
//! quotas are enforced where the resource is consumed, and every
//! admission decision lands in an atomic counter a `stats` call can
//! read without locks.
//!
//! Three quota knobs per tenant ([`TenantQuotas`]):
//!
//! * `max_views` — registered views ([`crate::ViewCatalog::register_for`]
//!   rejects past it with [`crate::EngineError::QuotaExceeded`]);
//! * `max_concurrent` — searches executing at once (a
//!   [`SearchPermit`] is acquired per search; exhaustion sheds with
//!   [`crate::EngineError::Overloaded`]);
//! * `max_queue` — admission-queue slots a tenant may occupy (consulted
//!   by the serving tier's bounded queue, so one tenant's backlog can
//!   never fill the shared queue).
//!
//! Counters ([`TenantStats`]) follow the same discipline as
//! [`crate::EngineStats`]: plain atomics bumped on the request path,
//! snapshotted on demand — admitted, shed, completed and
//! deadline-exceeded per tenant.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A tenant identity — the leading component of every tenant-scoped
/// lookup key. Cheap to clone (shared string) and totally ordered so
/// tenant-prefixed key ranges stay contiguous in sorted maps.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

/// The tenant unscoped callers act as (single-tenant deployments never
/// see another).
pub const PUBLIC_TENANT: &str = "public";

impl TenantId {
    /// A tenant id from any string-ish value.
    pub fn new(id: impl AsRef<str>) -> Self {
        TenantId(Arc::from(id.as_ref()))
    }

    /// The default tenant unscoped API calls are attributed to.
    pub fn public() -> Self {
        TenantId::new(PUBLIC_TENANT)
    }

    /// The identity as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::public()
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        TenantId::new(s)
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        TenantId::new(s)
    }
}

/// Per-tenant resource ceilings. The default is unlimited on every axis,
/// so single-tenant use never trips a quota it didn't ask for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Registered views the tenant may hold at once.
    pub max_views: usize,
    /// Searches the tenant may have executing at once.
    pub max_concurrent: usize,
    /// Admission-queue slots the tenant may occupy at once (serving
    /// tier; unused by direct library calls, which never queue).
    pub max_queue: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas { max_views: usize::MAX, max_concurrent: usize::MAX, max_queue: usize::MAX }
    }
}

/// Counter snapshot for one tenant; see [`TenantState`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Searches that passed admission (quota permit acquired).
    pub admitted: u64,
    /// Searches shed by quota or queue pressure (never executed).
    pub shed: u64,
    /// Searches that ran to completion.
    pub completed: u64,
    /// Searches that aborted on their deadline.
    pub deadline_exceeded: u64,
    /// Searches executing right now.
    pub in_flight: usize,
    /// Admission-queue slots occupied right now.
    pub queued: usize,
}

/// One tenant's live state: quotas (settable at runtime) plus the
/// `EngineStats`-style atomics every admission decision lands in.
/// Shared via `Arc` between the catalog and the serving tier so both
/// enforce the same numbers.
#[derive(Debug, Default)]
pub struct TenantState {
    max_views: AtomicUsize,
    max_concurrent: AtomicUsize,
    max_queue: AtomicUsize,
    in_flight: AtomicUsize,
    queued: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
}

impl TenantState {
    fn new(quotas: TenantQuotas) -> Self {
        let state = TenantState::default();
        state.set_quotas(quotas);
        state
    }

    /// Replace the tenant's quotas (effective for the next admission;
    /// in-flight work is never revoked).
    pub fn set_quotas(&self, quotas: TenantQuotas) {
        self.max_views.store(quotas.max_views, Ordering::Relaxed);
        self.max_concurrent.store(quotas.max_concurrent, Ordering::Relaxed);
        self.max_queue.store(quotas.max_queue, Ordering::Relaxed);
    }

    /// The current quotas.
    pub fn quotas(&self) -> TenantQuotas {
        TenantQuotas {
            max_views: self.max_views.load(Ordering::Relaxed),
            max_concurrent: self.max_concurrent.load(Ordering::Relaxed),
            max_queue: self.max_queue.load(Ordering::Relaxed),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
        }
    }

    /// Try to take one concurrent-search slot. `None` when the tenant is
    /// at `max_concurrent` — the caller decides whether to queue or shed
    /// (and records the outcome; this method only moves `in_flight`).
    pub fn try_begin_search(self: &Arc<Self>) -> Option<SearchPermit> {
        let limit = self.max_concurrent.load(Ordering::Relaxed);
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= limit {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(SearchPermit { tenant: Arc::clone(self) }),
                Err(observed) => current = observed,
            }
        }
    }

    /// Try to take one admission-queue slot (serving tier). `false` when
    /// the tenant is at `max_queue`.
    pub fn try_enqueue(&self) -> bool {
        let limit = self.max_queue.load(Ordering::Relaxed);
        let mut current = self.queued.load(Ordering::Relaxed);
        loop {
            if current >= limit {
                return false;
            }
            match self.queued.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Release one admission-queue slot taken by [`Self::try_enqueue`].
    pub fn dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::AcqRel);
    }

    /// Record a search admitted past the quota gate.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a search shed (by quota or queue pressure).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a search that ran to completion.
    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a search that aborted on its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII concurrent-search slot: dropping it releases the tenant's
/// `in_flight` count.
#[derive(Debug)]
pub struct SearchPermit {
    tenant: Arc<TenantState>,
}

impl SearchPermit {
    /// The tenant the permit was drawn from.
    pub fn tenant(&self) -> &Arc<TenantState> {
        &self.tenant
    }
}

impl Drop for SearchPermit {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The tenant table: id → live state, created on first touch. Owned by
/// the catalog; the serving tier shares the `Arc<TenantState>` handles.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: RwLock<HashMap<TenantId, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TenantRegistry::default()
    }

    /// The tenant's state, created with unlimited quotas on first touch.
    pub fn tenant(&self, id: &TenantId) -> Arc<TenantState> {
        if let Some(state) = self.tenants.read().unwrap().get(id) {
            return Arc::clone(state);
        }
        let mut tenants = self.tenants.write().unwrap();
        Arc::clone(
            tenants
                .entry(id.clone())
                .or_insert_with(|| Arc::new(TenantState::new(TenantQuotas::default()))),
        )
    }

    /// Set (or replace) a tenant's quotas, creating it if needed.
    pub fn set_quotas(&self, id: &TenantId, quotas: TenantQuotas) -> Arc<TenantState> {
        let state = self.tenant(id);
        state.set_quotas(quotas);
        state
    }

    /// Every known tenant id, sorted.
    pub fn ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.read().unwrap().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Counter snapshots for every known tenant, sorted by id.
    pub fn stats(&self) -> Vec<(TenantId, TenantStats)> {
        let mut out: Vec<(TenantId, TenantStats)> = self
            .tenants
            .read()
            .unwrap()
            .iter()
            .map(|(id, state)| (id.clone(), state.stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_respect_max_concurrent_and_release_on_drop() {
        let registry = TenantRegistry::new();
        let id = TenantId::new("acme");
        let state =
            registry.set_quotas(&id, TenantQuotas { max_concurrent: 2, ..Default::default() });
        let a = state.try_begin_search().expect("slot 1");
        let _b = state.try_begin_search().expect("slot 2");
        assert!(state.try_begin_search().is_none(), "third concurrent search is refused");
        assert_eq!(state.stats().in_flight, 2);
        drop(a);
        assert!(state.try_begin_search().is_some(), "released slot is reusable");
    }

    #[test]
    fn zero_concurrency_quota_refuses_everything() {
        let registry = TenantRegistry::new();
        let id = TenantId::new("starved");
        let state =
            registry.set_quotas(&id, TenantQuotas { max_concurrent: 0, ..Default::default() });
        assert!(state.try_begin_search().is_none());
    }

    #[test]
    fn queue_slots_are_bounded_per_tenant() {
        let registry = TenantRegistry::new();
        let id = TenantId::new("queued");
        let state = registry.set_quotas(&id, TenantQuotas { max_queue: 1, ..Default::default() });
        assert!(state.try_enqueue());
        assert!(!state.try_enqueue(), "second queue slot exceeds max_queue");
        state.dequeue();
        assert!(state.try_enqueue());
    }

    #[test]
    fn registry_creates_on_first_touch_and_snapshots_sorted() {
        let registry = TenantRegistry::new();
        registry.tenant(&TenantId::new("b"));
        registry.tenant(&TenantId::new("a"));
        registry.tenant(&TenantId::new("a"));
        assert_eq!(registry.ids(), vec![TenantId::new("a"), TenantId::new("b")]);
        let stats = registry.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1, TenantStats::default());
    }

    #[test]
    fn counters_accumulate() {
        let registry = TenantRegistry::new();
        let state = registry.tenant(&TenantId::public());
        state.record_admitted();
        state.record_admitted();
        state.record_shed();
        state.record_completed();
        state.record_deadline_exceeded();
        let s = state.stats();
        assert_eq!((s.admitted, s.shed, s.completed, s.deadline_exceeded), (2, 1, 1, 1));
    }

    #[test]
    fn tenant_ids_order_and_display() {
        assert!(TenantId::new("a") < TenantId::new("b"));
        assert_eq!(TenantId::public().to_string(), PUBLIC_TENANT);
        assert_eq!(TenantId::from("x").as_str(), "x");
    }
}
