//! `PrepareLists` (paper Fig. 7): the index-probe phase of PDT generation.
//!
//! For each QPT node in the probe set (nodes without mandatory child edges,
//! plus `v`-, predicate- and `c`-annotated nodes) we issue **one** probe of
//! the path index — a number of probes proportional to the query, never to
//! the data. Each probe returns a Dewey-ordered entry list that already
//! carries atomic values (free, because the index keys on (Path, Value))
//! and byte lengths.
//!
//! Every entry also records *which full data path* produced it. Matching
//! that concrete path against the QPT's root-to-node pattern yields the
//! **alignment map**: for each Dewey depth, the set of QPT nodes the
//! prefix at that depth corresponds to. The single-pass merge uses these
//! maps to type every ID prefix (the pseudo-code's `QNodes(curId)`),
//! including the `//a//a` repeated-tag case where one prefix maps to
//! several QPT nodes.

use crate::qpt::{Qpt, QptNodeId};
use std::collections::HashMap;
use vxv_index::{Axis, PathIndex, PathPattern};
use vxv_xml::DeweyId;

/// One probed element occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct PreparedEntry {
    /// The element's Dewey identifier.
    pub dewey: DeweyId,
    /// Its atomic value, when the index row carries one.
    pub value: Option<String>,
    /// Byte length of its serialized subtree.
    pub byte_len: u32,
    /// Dictionary id of the full data path that produced the entry.
    pub path_id: u32,
}

/// Per-depth QPT-node sets for one (probed node, full data path) pair.
/// `alignment[d - 1]` lists the QPT nodes a prefix of length `d` maps to.
pub type Alignment = Vec<Vec<QptNodeId>>;

/// Output of the probe phase.
#[derive(Debug, Default)]
pub struct PreparedLists {
    /// One Dewey-ordered entry list per probed QPT node.
    pub lists: Vec<(QptNodeId, Vec<PreparedEntry>)>,
    /// Alignment maps keyed by (probed node, path id).
    pub alignments: HashMap<(QptNodeId, u32), Alignment>,
    /// Number of path-index probes issued (|probe set|, by construction).
    pub probes: usize,
    /// Per probed node (parallel to `lists`): how many full data paths
    /// its pattern expanded to in the dictionary. Cached here so plan
    /// reporting never re-expands patterns.
    pub expanded_paths: Vec<usize>,
}

/// Run the probe phase for `qpt` against documents whose Dewey root
/// ordinal is `root_ordinal` (the path index is corpus-wide; a QPT
/// projects one document).
pub fn prepare_lists(qpt: &Qpt, index: &PathIndex, root_ordinal: u32) -> PreparedLists {
    let mut out = PreparedLists::default();
    for q in qpt.probed_nodes() {
        let pattern = qpt.pattern(q);
        let chain = qpt.chain(q);
        let preds = &qpt.node(q).preds;
        let mut entries: Vec<PreparedEntry> = Vec::new();
        let pids = index.expand_pattern(&pattern);
        out.expanded_paths.push(pids.len());
        for pid in pids {
            let segments: Vec<&str> =
                index.path_string(pid).split('/').filter(|s| !s.is_empty()).collect();
            let alignment = align(qpt, &chain, &pattern, &segments);
            debug_assert!(
                alignment.iter().any(|s| !s.is_empty()),
                "matched path must have a non-trivial alignment"
            );
            out.alignments.insert((q, pid), alignment);
            for (e, value) in index.scan_path(pid, preds) {
                if e.id.components().first() != Some(&root_ordinal) {
                    continue; // entry belongs to a different document
                }
                entries.push(PreparedEntry {
                    dewey: e.id,
                    value,
                    byte_len: e.byte_len,
                    path_id: pid,
                });
            }
        }
        // Per-path lists are Dewey-ordered; merge across paths.
        entries.sort_by(|a, b| a.dewey.cmp(&b.dewey));
        out.probes += 1;
        out.lists.push((q, entries));
    }
    out
}

/// Compute the alignment map of a QPT chain (root-to-node pattern) against
/// a concrete full data path. For each segment depth, the set of chain
/// nodes that some *valid complete assignment* places at that depth.
fn align(qpt: &Qpt, chain: &[QptNodeId], pattern: &PathPattern, segments: &[&str]) -> Alignment {
    let k = chain.len();
    let m = segments.len();
    debug_assert_eq!(pattern.steps.len(), k);

    // forward[j][d] = steps 0..=j can match with step j placed at depth d
    // (1-based depths).
    let mut forward = vec![vec![false; m + 1]; k];
    for (j, step) in pattern.steps.iter().enumerate() {
        for d in 1..=m {
            if segments[d - 1] != step.tag {
                continue;
            }
            let ok = if j == 0 {
                match step.axis {
                    Axis::Child => d == 1,
                    Axis::Descendant => true,
                }
            } else {
                match step.axis {
                    Axis::Child => d >= 2 && forward[j - 1][d - 1],
                    Axis::Descendant => (1..d).any(|p| forward[j - 1][p]),
                }
            };
            forward[j][d] = ok;
        }
    }

    // backward[j][d] = from step j at depth d, the remaining steps can be
    // placed so that the final step lands exactly at depth m.
    let mut backward = vec![vec![false; m + 1]; k];
    #[allow(clippy::needless_range_loop)] // 1-based depth indexing
    for d in 1..=m {
        backward[k - 1][d] = d == m;
    }
    for j in (0..k - 1).rev() {
        let next = &pattern.steps[j + 1];
        for d in 1..=m {
            let ok = match next.axis {
                Axis::Child => d < m && segments[d] == next.tag && backward[j + 1][d + 1],
                Axis::Descendant => {
                    (d + 1..=m).any(|nd| segments[nd - 1] == next.tag && backward[j + 1][nd])
                }
            };
            backward[j][d] = ok;
        }
    }

    let mut alignment: Alignment = vec![Vec::new(); m];
    for j in 0..k {
        for d in 1..=m {
            if forward[j][d] && backward[j][d] {
                alignment[d - 1].push(chain[j]);
            }
        }
    }
    // Keep each depth's node list deduplicated and stable.
    for nodes in &mut alignment {
        nodes.sort();
        nodes.dedup();
    }
    let _ = qpt;
    alignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qpt::Qpt;
    use vxv_index::ValuePredicate;
    use vxv_xml::Corpus;

    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML</title><year>1996</year></book>\
               <shelf><book><isbn>333</isbn><year>1990</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c.add_parsed("other.xml", "<books><book><isbn>999</isbn><year>2009</year></book></books>")
            .unwrap();
        c
    }

    #[test]
    fn probe_count_is_query_proportional() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1);
        assert_eq!(lists.probes, 3); // isbn, title, year — as in the paper
        assert_eq!(lists.lists.len(), 3);
    }

    #[test]
    fn entries_are_filtered_to_the_target_document() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1);
        for (_, entries) in &lists.lists {
            for e in entries {
                assert_eq!(e.dewey.components()[0], 1, "leaked {:?}", e.dewey);
            }
        }
    }

    #[test]
    fn predicates_filter_at_the_index() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let year = q.node_ids().find(|id| q.node(*id).tag == "year").unwrap();
        let (_, entries) = lists.lists.iter().find(|(n, _)| *n == year).unwrap();
        // Only the 1996 year passes > 1995; the 1990 one is pruned.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].dewey.to_string(), "1.1.3");
        assert_eq!(entries[0].value.as_deref(), Some("1996"));
    }

    #[test]
    fn values_ride_along_with_ids() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let isbn = q.node_ids().find(|id| q.node(*id).tag == "isbn").unwrap();
        let (_, entries) = lists.lists.iter().find(|(n, _)| *n == isbn).unwrap();
        let vals: Vec<Option<&str>> = entries.iter().map(|e| e.value.as_deref()).collect();
        assert_eq!(vals, vec![Some("111"), Some("333")]);
    }

    #[test]
    fn alignment_maps_prefixes_to_qpt_nodes() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let isbn = q.node_ids().find(|id| q.node(*id).tag == "isbn").unwrap();
        let book = q.node_ids().find(|id| q.node(*id).tag == "book").unwrap();
        let books = q.node_ids().find(|id| q.node(*id).tag == "books").unwrap();
        // /books/book/isbn: depths 1,2,3 -> books, book, isbn.
        let direct_pid = idx.expand_pattern(&PathPattern::parse("/books/book/isbn").unwrap());
        let a = &lists.alignments[&(isbn, direct_pid[0])];
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], vec![books]);
        assert_eq!(a[1], vec![book]);
        assert_eq!(a[2], vec![isbn]);
        // /books/shelf/book/isbn: depth 2 (shelf) maps to nothing.
        let shelf_pid = idx.expand_pattern(&PathPattern::parse("/books/shelf/book/isbn").unwrap());
        let a = &lists.alignments[&(isbn, shelf_pid[0])];
        assert_eq!(a.len(), 4);
        assert!(a[1].is_empty());
        assert_eq!(a[2], vec![book]);
    }

    #[test]
    fn repeated_tag_alignment_maps_one_depth_to_many_nodes() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<a><a><a><b>x</b></a></a></a>").unwrap();
        let idx = PathIndex::build(&c);
        // //a//a/b
        let mut q = Qpt::new("d.xml");
        let a1 = q.add_node(None, Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        let b = q.add_node(Some(a2), Axis::Child, true, "b");
        let lists = prepare_lists(&q, &idx, 1);
        let pid = idx.expand_pattern(&PathPattern::parse("/a/a/a/b").unwrap())[0];
        let a = &lists.alignments[&(b, pid)];
        // depth1: a1 only (a2 needs an a above and a b-parent below).
        assert_eq!(a[0], vec![a1]);
        // depth2: a1 (with depth3 as a2) — can it also be a2? a2 must be
        // b's parent at depth 3, so depth2 is a1 only... no: a2 at depth 2
        // would need b at depth 3 as its child, but b is at depth 4.
        assert_eq!(a[1], vec![a1]);
        // depth3: a2 (b's parent), and NOT a1 (a2 must sit strictly below).
        assert_eq!(a[2], vec![a2]);
        assert_eq!(a[3], vec![b]);
    }

    #[test]
    fn merged_lists_are_dewey_ordered() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1);
        for (_, entries) in &lists.lists {
            for w in entries.windows(2) {
                assert!(w[0].dewey < w[1].dewey);
            }
        }
    }
}
