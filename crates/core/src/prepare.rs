//! `PrepareLists` (paper Fig. 7): the index-probe phase of PDT generation.
//!
//! For each QPT node in the probe set (nodes without mandatory child edges,
//! plus `v`-, predicate- and `c`-annotated nodes) we issue **one** probe of
//! the path index — a number of probes proportional to the query, never to
//! the data. A probe no longer materializes entries: it *selects rows* of
//! the (Path, Value) table (predicates are evaluated once per row key,
//! where the value lives) and keeps [`PlannedRow`] handles into the
//! index's block-compressed storage. The resulting [`PreparedLists`] is a
//! **cursor plan**: entries stay compressed in the index until the PDT
//! merge ([`crate::generate`]) streams them, so per-search memory and
//! copy cost scale with what the merge consumes, not with list length.
//!
//! Every row also records *which full data path* produced it. Matching
//! that concrete path against the QPT's root-to-node pattern yields the
//! **alignment map**: for each Dewey depth, the set of QPT nodes the
//! prefix at that depth corresponds to. The single-pass merge uses these
//! maps to type every ID prefix (the pseudo-code's `QNodes(curId)`),
//! including the `//a//a` repeated-tag case where one prefix maps to
//! several QPT nodes.
//!
//! The seed's fully materialized probe output survives as
//! [`MaterializedLists`] — the reference implementation the cursor path
//! is property-tested against (byte-identical PDTs) and the benchmark
//! baseline for allocation comparisons.

use crate::qpt::{Qpt, QptNodeId};
use std::collections::HashMap;
use vxv_index::{Axis, EntryCursor, PathIndex, PathPattern, PlannedRow};
use vxv_xml::DeweyId;

/// One probed element occurrence, fully decoded (the materialized
/// reference representation; the engine itself streams [`PlannedRow`]s).
#[derive(Clone, Debug, PartialEq)]
pub struct PreparedEntry {
    /// The element's Dewey identifier.
    pub dewey: DeweyId,
    /// Its atomic value, when the index row carries one.
    pub value: Option<String>,
    /// Byte length of its serialized subtree.
    pub byte_len: u32,
    /// Dictionary id of the full data path that produced the entry.
    pub path_id: u32,
}

/// Per-depth QPT-node sets for one (probed node, full data path) pair.
/// `alignment[d - 1]` lists the QPT nodes a prefix of length `d` maps to.
pub type Alignment = Vec<Vec<QptNodeId>>;

/// The cursor plan for one probed QPT node: the index rows its pattern
/// selected, across every expanded data path.
#[derive(Debug, Default)]
pub struct NodePlan {
    /// Selected rows, ordered by (path id, row key).
    pub rows: Vec<PlannedRow>,
}

impl NodePlan {
    /// Entries this plan holds for the document rooted at
    /// `root_ordinal`, counted from block metadata (boundary blocks
    /// decoded, interior blocks counted from the directory).
    pub fn entry_count(&self, root_ordinal: u32) -> u64 {
        let lo = DeweyId::root(root_ordinal);
        let hi = lo.subtree_upper_bound();
        self.rows.iter().map(|r| r.count_range(&lo, &hi)).sum()
    }

    /// Decode and merge the plan into Dewey-ordered [`PreparedEntry`]s
    /// for one document — the materialized reference form.
    pub fn materialize(&self, root_ordinal: u32) -> Vec<PreparedEntry> {
        let mut entries: Vec<PreparedEntry> = Vec::new();
        for row in &self.rows {
            let mut cur = row.cursor_for_doc(root_ordinal);
            while let Some(e) = cur.next() {
                entries.push(PreparedEntry {
                    dewey: e.id,
                    value: row.value.clone(),
                    byte_len: e.byte_len,
                    path_id: row.path_id,
                });
            }
        }
        entries.sort_by(|a, b| a.dewey.cmp(&b.dewey));
        entries
    }

    /// Approximate resident bytes of the plan itself (row handles and
    /// value keys — the compressed entry data is shared with the index,
    /// not copied).
    pub fn approx_plan_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| {
                std::mem::size_of::<PlannedRow>() as u64
                    + r.value.as_ref().map(|v| v.len() as u64).unwrap_or(0)
            })
            .sum()
    }
}

/// Output of the probe phase: cursor plans plus alignment maps.
#[derive(Debug, Default)]
pub struct PreparedLists {
    /// One cursor plan per probed QPT node.
    pub lists: Vec<(QptNodeId, NodePlan)>,
    /// Alignment maps keyed by (probed node, path id).
    pub alignments: HashMap<(QptNodeId, u32), Alignment>,
    /// Number of path-index probes issued (|probe set|, by construction).
    pub probes: usize,
    /// Per probed node (parallel to `lists`): how many full data paths
    /// its pattern expanded to in the dictionary. Cached here so plan
    /// reporting never re-expands patterns.
    pub expanded_paths: Vec<usize>,
    /// Dewey root ordinal of the document this plan projects.
    pub root_ordinal: u32,
}

impl PreparedLists {
    /// Decode the whole plan into the seed's materialized representation.
    pub fn materialize(&self) -> MaterializedLists {
        MaterializedLists {
            lists: self
                .lists
                .iter()
                .map(|(q, plan)| (*q, plan.materialize(self.root_ordinal)))
                .collect(),
            alignments: self.alignments.clone(),
            probes: self.probes,
        }
    }

    /// Approximate resident bytes of the plan (handles only; entry data
    /// is shared with the index).
    pub fn approx_plan_bytes(&self) -> u64 {
        self.lists.iter().map(|(_, p)| p.approx_plan_bytes()).sum()
    }
}

/// The seed's probe output: per-node entry vectors, fully decoded and
/// copied. Kept as the reference path for equivalence tests and the
/// allocation-comparison benchmark; the engine no longer builds this.
#[derive(Debug, Default)]
pub struct MaterializedLists {
    /// One Dewey-ordered entry list per probed QPT node.
    pub lists: Vec<(QptNodeId, Vec<PreparedEntry>)>,
    /// Alignment maps keyed by (probed node, path id).
    pub alignments: HashMap<(QptNodeId, u32), Alignment>,
    /// Number of path-index probes issued.
    pub probes: usize,
}

impl MaterializedLists {
    /// Bytes copied out of the index to build this representation.
    pub fn bytes_copied(&self) -> u64 {
        self.lists
            .iter()
            .flat_map(|(_, entries)| entries.iter())
            .map(|e| {
                std::mem::size_of::<PreparedEntry>() as u64
                    + 4 * e.dewey.len() as u64
                    + e.value.as_ref().map(|v| v.len() as u64).unwrap_or(0)
            })
            .sum()
    }
}

/// Run the probe phase for `qpt` against documents whose Dewey root
/// ordinal is `root_ordinal` (the path index is corpus-wide; a QPT
/// projects one document).
pub fn prepare_lists(qpt: &Qpt, index: &PathIndex, root_ordinal: u32) -> PreparedLists {
    let mut out = PreparedLists { root_ordinal, ..PreparedLists::default() };
    for q in qpt.probed_nodes() {
        let pattern = qpt.pattern(q);
        let chain = qpt.chain(q);
        let preds = &qpt.node(q).preds;
        let mut plan = NodePlan::default();
        let pids = index.expand_pattern(&pattern);
        out.expanded_paths.push(pids.len());
        for pid in pids {
            let segments: Vec<&str> =
                index.path_string(pid).split('/').filter(|s| !s.is_empty()).collect();
            let alignment = align(qpt, &chain, &pattern, &segments);
            debug_assert!(
                alignment.iter().any(|s| !s.is_empty()),
                "matched path must have a non-trivial alignment"
            );
            out.alignments.insert((q, pid), alignment);
            plan.rows.extend(index.select_rows(pid, preds));
        }
        out.probes += 1;
        out.lists.push((q, plan));
    }
    out
}

/// Compute the alignment map of a QPT chain (root-to-node pattern) against
/// a concrete full data path. For each segment depth, the set of chain
/// nodes that some *valid complete assignment* places at that depth.
fn align(qpt: &Qpt, chain: &[QptNodeId], pattern: &PathPattern, segments: &[&str]) -> Alignment {
    let k = chain.len();
    let m = segments.len();
    debug_assert_eq!(pattern.steps.len(), k);

    // forward[j][d] = steps 0..=j can match with step j placed at depth d
    // (1-based depths).
    let mut forward = vec![vec![false; m + 1]; k];
    for (j, step) in pattern.steps.iter().enumerate() {
        for d in 1..=m {
            if segments[d - 1] != step.tag {
                continue;
            }
            let ok = if j == 0 {
                match step.axis {
                    Axis::Child => d == 1,
                    Axis::Descendant => true,
                }
            } else {
                match step.axis {
                    Axis::Child => d >= 2 && forward[j - 1][d - 1],
                    Axis::Descendant => (1..d).any(|p| forward[j - 1][p]),
                }
            };
            forward[j][d] = ok;
        }
    }

    // backward[j][d] = from step j at depth d, the remaining steps can be
    // placed so that the final step lands exactly at depth m.
    let mut backward = vec![vec![false; m + 1]; k];
    #[allow(clippy::needless_range_loop)] // 1-based depth indexing
    for d in 1..=m {
        backward[k - 1][d] = d == m;
    }
    for j in (0..k - 1).rev() {
        let next = &pattern.steps[j + 1];
        for d in 1..=m {
            let ok = match next.axis {
                Axis::Child => d < m && segments[d] == next.tag && backward[j + 1][d + 1],
                Axis::Descendant => {
                    (d + 1..=m).any(|nd| segments[nd - 1] == next.tag && backward[j + 1][nd])
                }
            };
            backward[j][d] = ok;
        }
    }

    let mut alignment: Alignment = vec![Vec::new(); m];
    for j in 0..k {
        for d in 1..=m {
            if forward[j][d] && backward[j][d] {
                alignment[d - 1].push(chain[j]);
            }
        }
    }
    // Keep each depth's node list deduplicated and stable.
    for nodes in &mut alignment {
        nodes.sort();
        nodes.dedup();
    }
    let _ = qpt;
    alignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qpt::Qpt;
    use vxv_index::ValuePredicate;
    use vxv_xml::Corpus;

    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML</title><year>1996</year></book>\
               <shelf><book><isbn>333</isbn><year>1990</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c.add_parsed("other.xml", "<books><book><isbn>999</isbn><year>2009</year></book></books>")
            .unwrap();
        c
    }

    #[test]
    fn probe_count_is_query_proportional() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1);
        assert_eq!(lists.probes, 3); // isbn, title, year — as in the paper
        assert_eq!(lists.lists.len(), 3);
    }

    #[test]
    fn materialized_entries_are_filtered_to_the_target_document() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1).materialize();
        for (_, entries) in &lists.lists {
            for e in entries {
                assert_eq!(e.dewey.components()[0], 1, "leaked {:?}", e.dewey);
            }
        }
    }

    #[test]
    fn predicates_select_rows_at_the_index() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let year = q.node_ids().find(|id| q.node(*id).tag == "year").unwrap();
        let (_, plan) = lists.lists.iter().find(|(n, _)| *n == year).unwrap();
        // Only the 1996 year passes > 1995; the 1990 one is pruned at row
        // selection, before any entry is decoded.
        assert_eq!(plan.entry_count(1), 1);
        let entries = plan.materialize(1);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].dewey.to_string(), "1.1.3");
        assert_eq!(entries[0].value.as_deref(), Some("1996"));
    }

    #[test]
    fn values_ride_along_with_ids() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let isbn = q.node_ids().find(|id| q.node(*id).tag == "isbn").unwrap();
        let (_, plan) = lists.lists.iter().find(|(n, _)| *n == isbn).unwrap();
        let vals: Vec<Option<String>> =
            plan.materialize(1).iter().map(|e| e.value.clone()).collect();
        assert_eq!(vals, vec![Some("111".to_string()), Some("333".to_string())]);
    }

    #[test]
    fn alignment_maps_prefixes_to_qpt_nodes() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let q = book_qpt();
        let lists = prepare_lists(&q, &idx, 1);
        let isbn = q.node_ids().find(|id| q.node(*id).tag == "isbn").unwrap();
        let book = q.node_ids().find(|id| q.node(*id).tag == "book").unwrap();
        let books = q.node_ids().find(|id| q.node(*id).tag == "books").unwrap();
        // /books/book/isbn: depths 1,2,3 -> books, book, isbn.
        let direct_pid = idx.expand_pattern(&PathPattern::parse("/books/book/isbn").unwrap());
        let a = &lists.alignments[&(isbn, direct_pid[0])];
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], vec![books]);
        assert_eq!(a[1], vec![book]);
        assert_eq!(a[2], vec![isbn]);
        // /books/shelf/book/isbn: depth 2 (shelf) maps to nothing.
        let shelf_pid = idx.expand_pattern(&PathPattern::parse("/books/shelf/book/isbn").unwrap());
        let a = &lists.alignments[&(isbn, shelf_pid[0])];
        assert_eq!(a.len(), 4);
        assert!(a[1].is_empty());
        assert_eq!(a[2], vec![book]);
    }

    #[test]
    fn repeated_tag_alignment_maps_one_depth_to_many_nodes() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<a><a><a><b>x</b></a></a></a>").unwrap();
        let idx = PathIndex::build(&c);
        // //a//a/b
        let mut q = Qpt::new("d.xml");
        let a1 = q.add_node(None, Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        let b = q.add_node(Some(a2), Axis::Child, true, "b");
        let lists = prepare_lists(&q, &idx, 1);
        let pid = idx.expand_pattern(&PathPattern::parse("/a/a/a/b").unwrap())[0];
        let a = &lists.alignments[&(b, pid)];
        // depth1: a1 only (a2 needs an a above and a b-parent below).
        assert_eq!(a[0], vec![a1]);
        // depth2: a1 (with depth3 as a2) — can it also be a2? a2 must be
        // b's parent at depth 3, so depth2 is a1 only... no: a2 at depth 2
        // would need b at depth 3 as its child, but b is at depth 4.
        assert_eq!(a[1], vec![a1]);
        // depth3: a2 (b's parent), and NOT a1 (a2 must sit strictly below).
        assert_eq!(a[2], vec![a2]);
        assert_eq!(a[3], vec![b]);
    }

    #[test]
    fn materialized_lists_are_dewey_ordered() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let lists = prepare_lists(&book_qpt(), &idx, 1).materialize();
        for (_, entries) in &lists.lists {
            for w in entries.windows(2) {
                assert!(w[0].dewey < w[1].dewey);
            }
        }
    }

    #[test]
    fn plan_bytes_do_not_scale_with_list_length() {
        // Two corpora, one 50x the other: the cursor plan stays row-sized
        // while the materialized copy grows with the data.
        let mut small = Corpus::new();
        let mut big = Corpus::new();
        let make = |n: usize| {
            let mut xml = String::from("<books>");
            for i in 0..n {
                xml.push_str(&format!("<book><isbn>{i}</isbn><year>1996</year></book>"));
            }
            xml.push_str("</books>");
            xml
        };
        small.add_parsed("books.xml", &make(4)).unwrap();
        big.add_parsed("books.xml", &make(200)).unwrap();
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1990".into()));

        let small_plan = prepare_lists(&q, &PathIndex::build(&small), 1);
        let big_plan = prepare_lists(&q, &PathIndex::build(&big), 1);
        let small_copy = small_plan.materialize().bytes_copied();
        let big_copy = big_plan.materialize().bytes_copied();
        assert!(big_copy > 10 * small_copy, "{big_copy} vs {small_copy}");
        // The plan grows with distinct (path, value) rows, far slower
        // than the materialized copy grows with entries.
        assert!(
            big_plan.approx_plan_bytes() < big_copy / 2,
            "plan {} vs copy {}",
            big_plan.approx_plan_bytes(),
            big_copy
        );
    }
}
