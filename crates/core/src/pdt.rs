//! Pruned Document Trees.
//!
//! A PDT is a projection of one base document that (a) contains exactly the
//! elements satisfying the QPT's mutual ancestor/descendant/predicate
//! constraints, (b) keeps the *original* Dewey IDs, (c) selectively
//! materializes atomic values for nodes whose values the view evaluation
//! needs, and (d) carries term frequencies and original byte lengths for
//! nodes whose content reaches the view output (the scoring inputs of
//! Theorem 4.1).
//!
//! Structurally a PDT is an ordinary [`Document`] (so the unmodified
//! evaluator runs over it) plus a side table of per-element annotations.

use std::collections::BTreeMap;
use vxv_xml::{DeweyId, Document, DocumentBuilder};

/// Scoring annotations for one PDT element.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PdtNodeInfo {
    /// Original byte length of the element in the base document.
    pub byte_len: u32,
    /// Aggregate term frequency per query keyword (indexed like the query's
    /// keyword list). Present only on content (`c`) nodes.
    pub tf: Option<Vec<u32>>,
}

/// One element destined for a PDT, accumulated during generation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PdtElem {
    /// The element's tag name.
    pub tag: String,
    /// Selectively materialized atomic value, if the view needs it.
    pub value: Option<String>,
    /// Original byte length in the base document (0 if not probed).
    pub byte_len: u32,
    /// Whether any QPT node this element matched is `c`-annotated.
    pub content: bool,
}

/// A generated pruned document tree.
#[derive(Debug)]
pub struct Pdt {
    /// The name of the base document this PDT projects.
    pub doc_name: String,
    /// The pruned tree, with original Dewey IDs.
    pub doc: Document,
    /// Scoring annotations, keyed by Dewey ID.
    pub info: BTreeMap<DeweyId, PdtNodeInfo>,
}

impl Pdt {
    /// Assemble a PDT document from a Dewey-ordered element map. Elements
    /// are parented to their nearest present ancestor; if the base root is
    /// absent it is inserted (tag `root_tag`) so the result is a single
    /// well-formed tree the evaluator can navigate.
    pub fn assemble(
        doc_name: &str,
        root_tag: &str,
        root_ordinal: u32,
        elements: &BTreeMap<DeweyId, PdtElem>,
        keyword_count: usize,
    ) -> Pdt {
        let mut b = DocumentBuilder::new(doc_name, root_ordinal);
        let root_id = DeweyId::root(root_ordinal);
        let mut open: Vec<DeweyId> = Vec::new();
        let mut info = BTreeMap::new();

        // Ensure a root exists.
        if !elements.contains_key(&root_id) {
            b.begin_with_dewey(root_tag, root_id.clone());
            open.push(root_id.clone());
        }

        for (dewey, elem) in elements {
            while let Some(top) = open.last() {
                if top.is_prefix_of(dewey) {
                    break;
                }
                b.end();
                open.pop();
            }
            b.begin_with_dewey(&elem.tag, dewey.clone());
            if let Some(v) = &elem.value {
                b.text(v);
            }
            open.push(dewey.clone());
            info.insert(
                dewey.clone(),
                PdtNodeInfo {
                    byte_len: elem.byte_len,
                    tf: if elem.content { Some(vec![0; keyword_count]) } else { None },
                },
            );
        }
        while open.pop().is_some() {
            b.end();
        }
        Pdt { doc_name: doc_name.to_string(), doc: b.finish(), info }
    }

    /// Look up annotations by Dewey ID.
    pub fn node_info(&self, dewey: &DeweyId) -> Option<&PdtNodeInfo> {
        self.info.get(dewey)
    }

    /// Original byte length of an element (falls back to 0 for the
    /// synthetic root anchor, which never reaches the view output).
    pub fn byte_len(&self, dewey: &DeweyId) -> u32 {
        self.info.get(dewey).map(|i| i.byte_len).unwrap_or(0)
    }

    /// The tf of keyword `k` (by index) in the subtree of `dewey`, if the
    /// element carries tf annotations.
    pub fn tf(&self, dewey: &DeweyId, k: usize) -> u32 {
        self.info
            .get(dewey)
            .and_then(|i| i.tf.as_ref())
            .and_then(|v| v.get(k).copied())
            .unwrap_or(0)
    }

    /// Number of elements in the PDT (excluding a synthetic root anchor).
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// True if no elements qualified.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }

    /// Serialized size of the pruned tree, in bytes (the paper reports
    /// "PDTs generated with respect to the 500MB collection are about
    /// 2MB").
    pub fn byte_size(&self) -> u64 {
        self.doc.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DeweyId {
        s.parse().unwrap()
    }

    #[test]
    fn assemble_parents_to_nearest_ancestor() {
        let mut elements = BTreeMap::new();
        elements.insert(
            d("1"),
            PdtElem { tag: "books".into(), value: None, byte_len: 100, content: false },
        );
        // book at 1.2; its child isbn at 1.2.1 — 1.2's parent is 1 directly.
        elements.insert(
            d("1.2"),
            PdtElem { tag: "book".into(), value: None, byte_len: 50, content: true },
        );
        elements.insert(
            d("1.2.1"),
            PdtElem {
                tag: "isbn".into(),
                value: Some("121-23".into()),
                byte_len: 20,
                content: false,
            },
        );
        // 1.5.3.2 with no recorded ancestors parents straight to the root.
        elements.insert(
            d("1.5.3.2"),
            PdtElem { tag: "title".into(), value: Some("X".into()), byte_len: 10, content: true },
        );
        let pdt = Pdt::assemble("books.xml", "books", 1, &elements, 2);
        let root = pdt.doc.root().unwrap();
        assert_eq!(pdt.doc.node_tag(root), "books");
        let kids: Vec<String> =
            pdt.doc.children(root).iter().map(|n| pdt.doc.node(*n).dewey.to_string()).collect();
        assert_eq!(kids, vec!["1.2", "1.5.3.2"]);
        let book = pdt.doc.node_by_dewey(&d("1.2")).unwrap();
        assert_eq!(pdt.doc.children(book).len(), 1);
        assert_eq!(pdt.byte_len(&d("1.2")), 50);
        assert!(pdt.node_info(&d("1.2")).unwrap().tf.is_some());
        assert!(pdt.node_info(&d("1.2.1")).unwrap().tf.is_none());
    }

    #[test]
    fn missing_root_gets_synthesized() {
        let mut elements = BTreeMap::new();
        elements.insert(
            d("3.4"),
            PdtElem { tag: "item".into(), value: None, byte_len: 5, content: false },
        );
        let pdt = Pdt::assemble("d.xml", "catalog", 3, &elements, 0);
        let root = pdt.doc.root().unwrap();
        assert_eq!(pdt.doc.node_tag(root), "catalog");
        assert_eq!(pdt.doc.node(root).dewey, d("3"));
        assert_eq!(pdt.len(), 1);
        // Synthetic root carries no annotations.
        assert_eq!(pdt.byte_len(&d("3")), 0);
    }

    #[test]
    fn empty_pdt_still_has_an_anchor_root() {
        let pdt = Pdt::assemble("d.xml", "books", 1, &BTreeMap::new(), 0);
        assert!(pdt.is_empty());
        assert_eq!(pdt.doc.len(), 1);
    }

    #[test]
    fn values_become_node_text() {
        let mut elements = BTreeMap::new();
        elements
            .insert(d("1"), PdtElem { tag: "r".into(), value: None, byte_len: 9, content: false });
        elements.insert(
            d("1.6"),
            PdtElem {
                tag: "year".into(),
                value: Some("1996".into()),
                byte_len: 17,
                content: false,
            },
        );
        let pdt = Pdt::assemble("d", "r", 1, &elements, 0);
        let y = pdt.doc.node_by_dewey(&d("1.6")).unwrap();
        assert_eq!(pdt.doc.value(y), Some("1996"));
    }
}
