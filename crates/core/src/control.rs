//! Cooperative execution controls: per-request deadlines and
//! cancellation.
//!
//! A service cannot let one expensive view search hold a worker hostage.
//! Both controls ride on the [`crate::request::SearchRequest`]:
//!
//! * a **deadline** ([`crate::request::SearchRequest::deadline`]) turns
//!   into an absolute instant when the search starts and is checked at
//!   every phase boundary *and* periodically inside the GeneratePDT
//!   merge loop — the only place a search can spend unbounded time
//!   before the next boundary;
//! * a [`CancelToken`] lets the caller abort from another thread. The
//!   token is a shared flag; searches poll it at the same checkpoints.
//!
//! A tripped control aborts with a typed error —
//! [`crate::engine::EngineError::DeadlineExceeded`] or
//! [`crate::engine::EngineError::Cancelled`] — carrying the partial
//! [`crate::request::PhaseTimings`] accumulated so far, so callers can
//! tell *where* the budget went. An interrupted search never returns a
//! silently truncated result.

use crate::request::PhaseTimings;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation handle. Clone it, hand one clone to a
/// [`crate::request::SearchRequest`], keep the other; `cancel()` makes
/// every search carrying the token abort at its next checkpoint with
/// [`crate::engine::EngineError::Cancelled`].
///
/// ```
/// use vxv_core::CancelToken;
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; wakes nothing — searches notice
    /// at their next cooperative checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`Self::cancel`] been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a search stopped before finishing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Interrupt {
    /// The request's deadline passed.
    Deadline,
    /// The request's cancel token fired.
    Cancelled,
}

impl Interrupt {
    /// Wrap into the public error, attaching the phase work completed so
    /// far.
    pub(crate) fn into_error(self, timings: PhaseTimings) -> crate::engine::EngineError {
        match self {
            Interrupt::Deadline => crate::engine::EngineError::DeadlineExceeded { timings },
            Interrupt::Cancelled => crate::engine::EngineError::Cancelled { timings },
        }
    }
}

/// The per-search control block: the request's deadline resolved to an
/// absolute instant, plus its cancel token.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExecControl {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl ExecControl {
    /// Resolve a request's controls at search start.
    pub(crate) fn new(deadline: Option<Duration>, cancel: Option<&CancelToken>) -> Self {
        ExecControl { deadline: deadline.map(|d| Instant::now() + d), cancel: cancel.cloned() }
    }

    /// A control block that never trips (internal callers without a
    /// request).
    pub(crate) fn unchecked() -> Self {
        ExecControl::default()
    }

    /// One cooperative checkpoint.
    #[inline]
    pub(crate) fn check(&self) -> Result<(), Interrupt> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(d) = &self.deadline {
            if Instant::now() >= *d {
                return Err(Interrupt::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchecked_control_never_trips() {
        assert!(ExecControl::unchecked().check().is_ok());
    }

    #[test]
    fn elapsed_deadline_trips_as_deadline() {
        let ctl = ExecControl::new(Some(Duration::ZERO), None);
        assert_eq!(ctl.check().unwrap_err(), Interrupt::Deadline);
    }

    #[test]
    fn cancel_token_trips_as_cancelled_across_clones() {
        let token = CancelToken::new();
        let ctl = ExecControl::new(None, Some(&token));
        assert!(ctl.check().is_ok());
        token.clone().cancel();
        assert_eq!(ctl.check().unwrap_err(), Interrupt::Cancelled);
    }

    #[test]
    fn cancellation_wins_over_an_elapsed_deadline() {
        // Both tripped: report the explicit user action, not the timer.
        let token = CancelToken::new();
        token.cancel();
        let ctl = ExecControl::new(Some(Duration::ZERO), Some(&token));
        assert_eq!(ctl.check().unwrap_err(), Interrupt::Cancelled);
    }
}
