//! [`HitStream`] — pull-based, incrementally materialized search hits.
//!
//! [`crate::PreparedView::search`] answers with a fully materialized
//! [`crate::SearchResponse`]. A serving tier often wants the opposite
//! shape: rank once, then pull hits one at a time — fetching base data
//! *per hit*, stopping early, or interleaving delivery with other work.
//! [`crate::PreparedView::hits`] returns exactly that.
//!
//! The ranking phases (PDT generation, view evaluation, scoring) run
//! when the stream is created — top-k semantics need the full ranking —
//! but each hit's **materialization plan** is kept symbolic: a sequence
//! of literal XML fragments (constructed tags, PDT-resident values)
//! interleaved with base-data fetch points. Pulling a hit executes its
//! plan against the engine's [`vxv_xml::DocumentSource`]; hits never
//! pulled never touch base data.
//!
//! Both `search` and the stream execute the same plans, so collecting a
//! stream yields byte-identical hits to the equivalent `search` call —
//! the invariant `tests/` pins down. Deadlines and cancel tokens keep
//! working while pulling: a tripped control yields one `Err` and ends
//! the stream.

use crate::control::ExecControl;
use crate::engine::{EngineError, SegmentSet};
use crate::request::{PhaseTimings, SearchHit};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vxv_xml::{Corpus, DeweyId, DocumentSource, SourceError};

/// One piece of a hit's materialization plan.
#[derive(Clone, Debug)]
pub(crate) enum Segment {
    /// Literal serialized XML (constructed element tags, PDT values).
    Text(String),
    /// Expand the base-data subtree rooted at this Dewey ID.
    Fetch(DeweyId),
}

/// Routes each base-data fetch to the storage that owns the element:
/// documents of **ingested** segments materialize from their segment's
/// own in-memory corpus; everything else goes to the engine's main
/// [`DocumentSource`]. Ownership is decided by the Dewey root ordinal —
/// the engine's allocator guarantees ordinals never collide across
/// segments, so the routing table is a plain per-ordinal map frozen
/// with the prepared view's snapshot.
pub(crate) struct FetchRouter<S: DocumentSource> {
    source: Arc<S>,
    side: HashMap<u32, Arc<Corpus>>,
}

impl<S: DocumentSource> Clone for FetchRouter<S> {
    fn clone(&self) -> Self {
        FetchRouter { source: Arc::clone(&self.source), side: self.side.clone() }
    }
}

impl<S: DocumentSource> FetchRouter<S> {
    pub(crate) fn new(source: Arc<S>, snapshot: &SegmentSet) -> Self {
        let mut side = HashMap::new();
        for seg in snapshot {
            if let Some(corpus) = &seg.side_corpus {
                // Map only ordinals the side corpus actually holds: a
                // compacted segment may mix side-resident (ingested) and
                // main-source documents in one catalog.
                for doc in corpus.docs() {
                    if let Some(root) = doc.root() {
                        side.insert(doc.node(root).dewey.components()[0], Arc::clone(corpus));
                    }
                }
            }
        }
        FetchRouter { source, side }
    }

    /// The serialized subtree at `dewey`, read from whichever backend
    /// owns the element's root ordinal.
    pub(crate) fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        match dewey.components().first().and_then(|ord| self.side.get(ord)) {
            Some(corpus) => DocumentSource::subtree_xml(corpus.as_ref(), dewey),
            None => self.source.subtree_xml(dewey),
        }
    }
}

/// A ranked hit whose materialization is still pending: scores and
/// statistics are final, the XML is a plan.
#[derive(Clone, Debug)]
pub(crate) struct PlannedHit {
    pub(crate) score: f64,
    pub(crate) tf: Vec<u32>,
    pub(crate) byte_len: u64,
    pub(crate) segments: Vec<Segment>,
}

/// Execute one materialization plan against `storage`, counting served
/// fetches into `fetches`. Shared by [`HitStream`] and
/// [`crate::PreparedView::search`] so both produce byte-identical XML.
pub(crate) fn materialize_segments<S: DocumentSource>(
    segments: &[Segment],
    storage: &FetchRouter<S>,
    fetches: &mut u64,
) -> Result<String, EngineError> {
    let mut out = String::new();
    for seg in segments {
        match seg {
            Segment::Text(t) => out.push_str(t),
            Segment::Fetch(dewey) => match storage.subtree_xml(dewey) {
                Ok(Some(sub)) => {
                    *fetches += 1;
                    out.push_str(&sub);
                }
                Ok(None) => {}
                Err(e) => return Err(EngineError::Source(e)),
            },
        }
    }
    Ok(out)
}

/// A pull-based iterator over ranked search hits; see the module docs.
///
/// Yields `Result<SearchHit, EngineError>`: materialization reads base
/// data, and the request's deadline/cancel controls stay armed, so each
/// pull can fail. After the first `Err` the stream is over. The stream
/// is `Send + Sync + 'static` — create it on one thread, drain it on
/// another.
pub struct HitStream<S: DocumentSource> {
    storage: FetchRouter<S>,
    planned: std::vec::IntoIter<PlannedHit>,
    next_rank: usize,
    fetches: u64,
    view_size: usize,
    matching: usize,
    idf: Vec<f64>,
    /// Ranking-phase timings (post = scoring only at creation time).
    base: PhaseTimings,
    /// Wall-clock spent materializing pulled hits so far.
    materialize_time: Duration,
    ctl: ExecControl,
    done: bool,
}

impl<S: DocumentSource> HitStream<S> {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn new(
        storage: FetchRouter<S>,
        planned: Vec<PlannedHit>,
        view_size: usize,
        matching: usize,
        idf: Vec<f64>,
        base: PhaseTimings,
        ctl: ExecControl,
    ) -> Self {
        HitStream {
            storage,
            planned: planned.into_iter(),
            next_rank: 1,
            fetches: 0,
            view_size,
            matching,
            idf,
            base,
            materialize_time: Duration::ZERO,
            ctl,
            done: false,
        }
    }

    /// |V(D)| — size of the (virtual) view.
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// Matching elements before the top-k cut.
    pub fn matching(&self) -> usize {
        self.matching
    }

    /// Per-keyword idf over the view.
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// Base-data subtree fetches spent on hits pulled so far.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Ranked hits not yet pulled.
    pub fn remaining(&self) -> usize {
        self.planned.len()
    }

    /// Phase timings so far: the ranking phases plus materialization
    /// time accrued by the hits already pulled.
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            pdt: self.base.pdt,
            evaluator: self.base.evaluator,
            post: self.base.post + self.materialize_time,
        }
    }
}

impl<S: DocumentSource> std::fmt::Debug for HitStream<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HitStream")
            .field("remaining", &self.planned.len())
            .field("next_rank", &self.next_rank)
            .field("matching", &self.matching)
            .finish_non_exhaustive()
    }
}

impl<S: DocumentSource> Iterator for HitStream<S> {
    type Item = Result<SearchHit, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.planned.len() == 0 {
            // Naturally exhausted: fuse, so a later poll (even past the
            // deadline) stays `None` — a fully delivered result never
            // turns into an error after the fact.
            self.done = true;
            return None;
        }
        let t0 = Instant::now();
        if let Err(int) = self.ctl.check() {
            self.done = true;
            return Some(Err(int.into_error(self.timings())));
        }
        let planned = self.planned.next()?;
        let out = materialize_segments(&planned.segments, &self.storage, &mut self.fetches);
        self.materialize_time += t0.elapsed();
        match out {
            Ok(xml) => {
                let rank = self.next_rank;
                self.next_rank += 1;
                Some(Ok(SearchHit {
                    rank,
                    score: planned.score,
                    tf: planned.tf,
                    byte_len: planned.byte_len,
                    xml,
                }))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // A pull may yield a control error, so the upper bound gains
            // one potential item.
            (0, Some(self.planned.len() + 1))
        }
    }
}
