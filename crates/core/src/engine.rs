//! The end-to-end engine: the modified query execution path of Fig. 3.
//!
//! `prepare (parse → GenerateQPT → PrepareLists) → search (GeneratePDT
//! index-only → regular evaluator over PDTs → score → materialize top-k
//! from document storage)`.
//!
//! [`ViewSearchEngine`] **owns** its state — `Arc`-shared indices, the
//! document catalog, and an `Arc` of its [`DocumentSource`] — so engine,
//! [`PreparedView`] and [`crate::catalog::ViewCatalog`] are all
//! `Send + Sync + 'static`: they live in servers, thread pools and async
//! tasks without borrowing anything. Cloning an engine is an `Arc` bump;
//! every clone shares the same indices, source and work counters.
//!
//! The view-proportional work happens once in
//! [`ViewSearchEngine::prepare`]; the returned [`PreparedView`] answers
//! [`crate::request::SearchRequest`]s concurrently. Base documents are
//! touched exactly once per returned hit — the final materialization —
//! which the [`DocumentSource::fetch_count`] counter lets tests and
//! experiments verify.

use crate::generate::DocMeta;
use crate::prepared::PreparedView;
use crate::qpt_gen::QptGenError;
use crate::request::{PhaseTimings, SearchRequest};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vxv_index::{IndexBundle, InvertedIndex, PathIndex};
use vxv_xml::{Corpus, DiskStore, DocumentSource};
use vxv_xquery::{parse_query, EvalError, Query, QueryParseError};

#[cfg(feature = "legacy-api")]
use crate::request::SearchHit;
#[cfg(feature = "legacy-api")]
use crate::scoring::KeywordMode;

/// Anything that can go wrong while answering a keyword-search-over-view
/// query.
#[derive(Debug)]
pub enum EngineError {
    /// The view text failed to parse.
    Parse(QueryParseError),
    /// The view is outside the supported fragment.
    QptGen(QptGenError),
    /// The view failed at evaluation time.
    Eval(EvalError),
    /// A `fn:doc(...)` reference names no loaded document.
    UnknownDocument(String),
    /// The document source failed while materializing a hit.
    Source(vxv_xml::source::SourceError),
    /// The request carried no non-empty keyword; nothing to rank.
    EmptyQuery,
    /// No view with that name is registered in the catalog.
    ViewNotFound(String),
    /// The request's deadline passed before the search finished. Carries
    /// the phase work completed up to the abort.
    DeadlineExceeded {
        /// Partial per-phase wall-clock costs at the moment of abort.
        timings: PhaseTimings,
    },
    /// The request's [`crate::CancelToken`] fired. Carries the phase work
    /// completed up to the abort.
    Cancelled {
        /// Partial per-phase wall-clock costs at the moment of abort.
        timings: PhaseTimings,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::QptGen(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
            EngineError::Source(e) => write!(f, "{e}"),
            EngineError::EmptyQuery => {
                write!(f, "search request carries no non-empty keyword")
            }
            EngineError::ViewNotFound(name) => write!(f, "no view named '{name}' in catalog"),
            EngineError::DeadlineExceeded { timings } => {
                write!(f, "deadline exceeded after {:?}", timings.total())
            }
            EngineError::Cancelled { timings } => {
                write!(f, "search cancelled after {:?}", timings.total())
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryParseError> for EngineError {
    fn from(e: QueryParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<QptGenError> for EngineError {
    fn from(e: QptGenError) -> Self {
        EngineError::QptGen(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// The engine's shared state: catalog, indices and source. Everything a
/// [`PreparedView`] or a [`crate::catalog::ViewCatalog`] needs to answer
/// searches, behind one `Arc` so prepared state never dangles.
pub(crate) struct EngineInner<S: DocumentSource> {
    corpus: Option<Arc<Corpus>>,
    catalog: HashMap<String, DocMeta>,
    path_index: Arc<PathIndex>,
    inverted: Arc<InvertedIndex>,
    source: Arc<S>,
}

/// The keyword-search-over-virtual-views engine, generic over where the
/// top-k hits are materialized from.
///
/// Indices are either built over an in-memory corpus or loaded cold from
/// a persisted [`IndexBundle`] ([`ViewSearchEngine::open`]); `S` decides
/// where *base data* is read during materialization — the corpus itself
/// by default, or any other [`DocumentSource`] via [`Self::with_source`].
/// Prepare-time document metadata (root tag and ordinal per document
/// name) lives in a small catalog, so a cold engine never touches base
/// documents outside top-k materialization.
///
/// The engine is a cheap `Arc` handle: clone it freely, share it across
/// threads, move it into a server. Constructors accept owned values or
/// `Arc`s (`impl Into<Arc<_>>`), so callers that still need the corpus or
/// store afterwards pass an `Arc` clone and keep their handle.
pub struct ViewSearchEngine<S: DocumentSource = Corpus> {
    inner: Arc<EngineInner<S>>,
}

impl<S: DocumentSource> Clone for ViewSearchEngine<S> {
    fn clone(&self) -> Self {
        ViewSearchEngine { inner: Arc::clone(&self.inner) }
    }
}

impl<S: DocumentSource> fmt::Debug for ViewSearchEngine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewSearchEngine")
            .field("documents", &self.inner.catalog.len())
            .field("source", &self.inner.source.kind())
            .finish_non_exhaustive()
    }
}

fn corpus_catalog(corpus: &Corpus) -> HashMap<String, DocMeta> {
    corpus
        .docs()
        .filter_map(|d| {
            let root = d.root()?;
            Some((
                d.name().to_string(),
                DocMeta {
                    name: d.name().to_string(),
                    root_tag: d.node_tag(root).to_string(),
                    root_ordinal: d.node(root).dewey.components()[0],
                },
            ))
        })
        .collect()
}

impl ViewSearchEngine<Corpus> {
    /// Build indices over `corpus` and materialize from it. Pass an
    /// `Arc<Corpus>` (keeping a clone) when the caller still needs the
    /// corpus — e.g. to read its fetch counters.
    pub fn new(corpus: impl Into<Arc<Corpus>>) -> Self {
        let corpus = corpus.into();
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                catalog: corpus_catalog(&corpus),
                path_index: Arc::new(PathIndex::build(&corpus)),
                inverted: Arc::new(InvertedIndex::build(&corpus)),
                source: Arc::clone(&corpus),
                corpus: Some(corpus),
            }),
        }
    }

    /// Reuse pre-built indices.
    pub fn with_indices(
        corpus: impl Into<Arc<Corpus>>,
        path_index: impl Into<Arc<PathIndex>>,
        inverted: impl Into<Arc<InvertedIndex>>,
    ) -> Self {
        let corpus = corpus.into();
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                catalog: corpus_catalog(&corpus),
                path_index: path_index.into(),
                inverted: inverted.into(),
                source: Arc::clone(&corpus),
                corpus: Some(corpus),
            }),
        }
    }
}

impl ViewSearchEngine<DiskStore> {
    /// Cold-open an engine over persisted state: indices and document
    /// catalog from an [`IndexBundle`], base data from a [`DiskStore`].
    /// No corpus exists — searches are answered without re-tokenizing or
    /// re-walking any base document.
    pub fn open(store: impl Into<Arc<DiskStore>>, bundle: IndexBundle) -> Self {
        let (path_index, inverted, docs) = bundle.into_shared();
        let catalog = docs
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    DocMeta {
                        name: d.name.clone(),
                        root_tag: d.root_tag.clone(),
                        root_ordinal: d.root_ordinal,
                    },
                )
            })
            .collect();
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                corpus: None,
                catalog,
                path_index,
                inverted,
                source: store.into(),
            }),
        }
    }
}

impl<S: DocumentSource> ViewSearchEngine<S> {
    /// Materialize top-k hits from `source` instead of the current
    /// backend. Indices and prepared plans are unaffected — only the
    /// final per-hit base-data reads move. The indices stay shared
    /// (`Arc`), so this is cheap whenever the catalog is.
    pub fn with_source<T: DocumentSource>(&self, source: impl Into<Arc<T>>) -> ViewSearchEngine<T> {
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                corpus: self.inner.corpus.clone(),
                catalog: self.inner.catalog.clone(),
                path_index: Arc::clone(&self.inner.path_index),
                inverted: Arc::clone(&self.inner.inverted),
                source: source.into(),
            }),
        }
    }

    /// Route top-k materialization through disk-backed document storage.
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.1.0", note = "use `with_source(store)`")]
    pub fn with_store(
        &self,
        store: impl Into<Arc<vxv_xml::DiskStore>>,
    ) -> ViewSearchEngine<vxv_xml::DiskStore> {
        self.with_source(store)
    }

    /// The corpus the indices were built over, if the engine was
    /// constructed from one (`None` after a cold [`Self::open`]).
    pub fn corpus(&self) -> Option<&Corpus> {
        self.inner.corpus.as_deref()
    }

    /// Catalog metadata for one document name (root tag and ordinal).
    pub fn doc_meta(&self, name: &str) -> Option<&DocMeta> {
        self.inner.catalog.get(name)
    }

    /// The engine's path index (for experiments reporting probe work).
    pub fn path_index(&self) -> &PathIndex {
        &self.inner.path_index
    }

    /// The engine's inverted index.
    pub fn inverted_index(&self) -> &InvertedIndex {
        &self.inner.inverted
    }

    /// The base-data backend hits are materialized from.
    pub fn source(&self) -> &S {
        &self.inner.source
    }

    /// An owned handle to the base-data backend.
    pub fn source_arc(&self) -> Arc<S> {
        Arc::clone(&self.inner.source)
    }

    /// Analyze the view text once — parse, QPT generation, and the
    /// `PrepareLists` probe phase — into a [`PreparedView`] that answers
    /// many [`SearchRequest`]s. The prepared view owns an engine handle;
    /// it outlives this binding and moves freely across threads.
    pub fn prepare(&self, view: &str) -> Result<PreparedView<S>, EngineError> {
        self.prepare_query(parse_query(view)?)
    }

    /// As [`Self::prepare`], over an already-parsed view.
    pub fn prepare_query(&self, query: Query) -> Result<PreparedView<S>, EngineError> {
        PreparedView::build(self, query)
    }

    /// One-shot convenience: prepare and run a single request.
    pub fn search_once(
        &self,
        view: &str,
        request: &SearchRequest,
    ) -> Result<crate::request::SearchResponse, EngineError> {
        self.prepare(view)?.search(request)
    }

    /// Run a ranked keyword search over the virtual view defined by the
    /// XQuery text `view`.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::search(&SearchRequest)`; \
                this shim re-prepares the view on every call"
    )]
    #[allow(deprecated)]
    pub fn search(
        &self,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response =
            self.prepare(view)?.search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// As the deprecated `search`, over a pre-parsed view.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare_query(query)` + `PreparedView::search(&SearchRequest)`"
    )]
    #[allow(deprecated)]
    pub fn search_query(
        &self,
        query: &Query,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response = self
            .prepare_query(query.clone())?
            .search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// Explain how a keyword search over `view` would be answered —
    /// without running the query.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::plan(keywords)`, or \
                `SearchRequest::with_plan(true)`"
    )]
    pub fn explain(
        &self,
        view: &str,
        keywords: &[&str],
    ) -> Result<crate::prepared::QueryPlan, EngineError> {
        Ok(self.prepare(view)?.plan(keywords))
    }
}

/// What the deprecated one-shot `search` reports (the prepared API's
/// [`crate::request::SearchResponse`] supersedes this).
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.1.0", note = "use the prepared API's `SearchResponse`")]
#[derive(Debug)]
pub struct SearchOutcome {
    /// Ranked, materialized hits.
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the (virtual) view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs (Fig. 14's bars).
    pub timings: PhaseTimings,
    /// Per-document PDT statistics: (doc name, sweep stats, PDT bytes).
    pub pdt_stats: Vec<(String, crate::generate::GenerateStats, u64)>,
    /// Base-data subtree fetches spent on materialization.
    pub fetches: u64,
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl SearchOutcome {
    fn from_response(r: crate::request::SearchResponse) -> Self {
        SearchOutcome {
            hits: r.hits,
            view_size: r.view_size,
            matching: r.matching,
            idf: r.idf,
            timings: r.timings.unwrap_or_default(),
            pdt_stats: r.pdt_stats,
            fetches: r.fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::KeywordMode;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
               <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
               <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
             </books>",
        )
        .unwrap();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>111</isbn><content>all about XML search engines</content></review>\
               <review><isbn>111</isbn><content>easy to read</content></review>\
               <review><isbn>222</isbn><content>thorough search coverage</content></review>\
               <review><isbn>333</isbn><content>XML search classics</content></review>\
             </reviews>",
        )
        .unwrap();
        c
    }

    const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
         where $book/year > 1995 \
         return <bookrevs> \
           { <book> {$book/title} </book> } \
           { for $rev in fn:doc(reviews.xml)/reviews//review \
             where $rev/isbn = $book/isbn \
             return $rev/content } \
         </bookrevs>";

    #[test]
    fn end_to_end_conjunctive_search_on_the_running_example() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        // View has two elements (books 111 and 222; book 333 fails year).
        assert_eq!(out.view_size, 2);
        // Only book 111's bookrevs contains both xml and search.
        assert_eq!(out.matching, 1);
        assert_eq!(out.hits.len(), 1);
        let hit = &out.hits[0];
        assert!(hit.xml.contains("<title>XML Web Services</title>"), "{}", hit.xml);
        assert!(hit.xml.contains("all about XML search engines"), "{}", hit.xml);
        assert!(hit.xml.starts_with("<bookrevs>"), "{}", hit.xml);
        // tf: xml appears in title (1) + review1 (1) + nothing else = 2;
        // search appears once in review1.
        assert_eq!(hit.tf, vec![2, 1]);
    }

    #[test]
    fn prepared_view_outlives_the_engine_binding() {
        // The whole point of the owned API: prepared state keeps the
        // engine alive, not the other way round.
        let view = {
            let engine = ViewSearchEngine::new(corpus());
            engine.prepare(VIEW).unwrap()
        };
        let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        assert_eq!(out.matching, 1);
    }

    #[test]
    fn disjunctive_search_matches_any_keyword() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let out = view
            .search(&SearchRequest::new(["intelligence", "xml"]).mode(KeywordMode::Disjunctive))
            .unwrap();
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn base_data_is_fetched_only_for_top_k() {
        let c = Arc::new(corpus());
        let engine = ViewSearchEngine::new(Arc::clone(&c));
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).top_k(1)).unwrap();
        assert_eq!(out.hits.len(), 1);
        // Matching elements: both bookrevs contain "search"; but only the
        // top-1 result's content nodes were fetched from storage.
        assert_eq!(out.matching, 2);
        assert_eq!(c.fetch_count(), out.fetches);
        assert!(out.fetches <= 3, "fetched {} subtrees", out.fetches);
    }

    #[test]
    fn skipping_materialization_touches_no_base_data() {
        let c = Arc::new(corpus());
        let engine = ViewSearchEngine::new(Arc::clone(&c));
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).materialize(false)).unwrap();
        assert_eq!(out.fetches, 0);
        assert_eq!(c.fetch_count(), 0);
        assert!(!out.hits.is_empty());
        for hit in &out.hits {
            assert!(hit.xml.is_empty());
            assert!(hit.byte_len > 0, "stats still come from the PDT annotations");
        }
    }

    #[test]
    fn timing_collection_can_be_disabled() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let with = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(with.timings.is_some());
        let without = view.search(&SearchRequest::new(["xml"]).collect_timings(false)).unwrap();
        assert!(without.timings.is_none());
    }

    #[test]
    fn byte_lengths_match_materialized_output() {
        let engine = ViewSearchEngine::new(corpus());
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        for hit in &out.hits {
            assert_eq!(hit.byte_len, hit.xml.len() as u64, "hit: {}", hit.xml);
        }
    }

    #[test]
    fn unknown_documents_are_reported_at_prepare_time() {
        let engine = ViewSearchEngine::new(corpus());
        let e = engine.prepare("for $x in fn:doc(zzz.xml)/a return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)), "{e}");
    }

    #[test]
    fn empty_keyword_requests_are_rejected_up_front() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let no_keywords: [&str; 0] = [];
        let e = view.search(&SearchRequest::new(no_keywords)).unwrap_err();
        assert!(matches!(e, EngineError::EmptyQuery), "{e}");
        // Whitespace-only keywords are just as empty.
        let e = view.search(&SearchRequest::new(["", "  ", "\t"])).unwrap_err();
        assert!(matches!(e, EngineError::EmptyQuery), "{e}");
        // One real keyword among empties is fine.
        assert!(view.search(&SearchRequest::new(["", "xml"])).is_ok());
    }

    #[test]
    fn pdt_stats_are_reported_per_document() {
        let engine = ViewSearchEngine::new(corpus());
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        assert_eq!(out.pdt_stats.len(), 2);
        assert_eq!(out.pdt_stats[0].0, "books.xml");
        assert!(out.pdt_stats[0].1.emitted > 0);
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn legacy_one_shot_search_matches_prepared_search() {
        let engine = ViewSearchEngine::new(corpus());
        let legacy = engine.search(VIEW, &["XML", "search"], 10, KeywordMode::Conjunctive).unwrap();
        let prepared =
            engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["XML", "search"])).unwrap();
        assert_eq!(legacy.view_size, prepared.view_size);
        assert_eq!(legacy.matching, prepared.matching);
        assert_eq!(legacy.idf, prepared.idf);
        assert_eq!(legacy.hits.len(), prepared.hits.len());
        for (a, b) in legacy.hits.iter().zip(&prepared.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.tf, b.tf);
            assert_eq!(a.xml, b.xml);
        }
    }

    #[test]
    fn engine_and_prepared_view_are_send_sync_and_static() {
        fn assert_service_grade<T: Send + Sync + 'static>() {}
        assert_service_grade::<ViewSearchEngine<Corpus>>();
        assert_service_grade::<ViewSearchEngine<vxv_xml::DiskStore>>();
        assert_service_grade::<PreparedView<Corpus>>();
        assert_service_grade::<PreparedView<vxv_xml::DiskStore>>();
        assert_service_grade::<SearchRequest>();
        assert_service_grade::<crate::request::SearchResponse>();
        assert_service_grade::<crate::CancelToken>();
    }

    #[test]
    fn concurrent_searches_share_one_prepared_view() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let baseline = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let view = &view;
                    s.spawn(move || view.search(&SearchRequest::new(["XML", "search"])).unwrap())
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert_eq!(out.matching, baseline.matching);
                assert_eq!(out.hits.len(), baseline.hits.len());
                for (a, b) in out.hits.iter().zip(&baseline.hits) {
                    assert_eq!(a.score, b.score);
                    assert_eq!(a.xml, b.xml);
                }
            }
        });
    }

    #[test]
    fn prepared_views_move_across_threads() {
        // Owned prepared state: prepare here, search over there.
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let handle = std::thread::spawn(move || {
            view.search(&SearchRequest::new(["XML", "search"])).unwrap().matching
        });
        assert_eq!(handle.join().unwrap(), 1);
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn plan_reports_probes_and_list_lengths() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml xml</title><year>1999</year></book>\
             <book><isbn>2</isbn><title>other</title><year>1990</year></book></books>",
        )
        .unwrap();
        let engine = ViewSearchEngine::new(c);
        let view = engine
            .prepare(
                "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 \
                 return <h> { $b/title } </h>",
            )
            .unwrap();
        let out = view.plan(&["XML", "zzz"]);
        assert_eq!(out.qpts.len(), 1);
        let r = &out.qpts[0];
        assert_eq!(r.doc_name, "books.xml");
        assert!(r.rendered.contains("//book"), "{}", r.rendered);
        // title and year probed; year carries a pushed predicate.
        assert_eq!(r.probes.len(), 2, "{:?}", r.probes);
        let year = r.probes.iter().find(|p| p.pattern.ends_with("/year")).unwrap();
        assert_eq!(year.predicates, 1);
        assert_eq!(year.entries, 1, "only the 1999 year passes");
        // Keyword list lengths are normalized and exact.
        assert_eq!(out.keyword_list_lengths, vec![("xml".to_string(), 1), ("zzz".to_string(), 0)]);
    }

    #[test]
    fn plan_rides_along_with_a_search_when_requested() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><e><v>xml data</v></e></r>").unwrap();
        let engine = ViewSearchEngine::new(c);
        let view = engine.prepare("for $e in fn:doc(d.xml)/r/e return $e/v").unwrap();
        let out = view.search(&SearchRequest::new(["xml"]).with_plan(true)).unwrap();
        let plan = out.plan.expect("plan requested");
        assert_eq!(plan.qpts.len(), 1);
        let out2 = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(out2.plan.is_none());
    }

    #[test]
    fn prepare_rejects_unknown_documents() {
        let engine = ViewSearchEngine::new(Corpus::new());
        let e = engine.prepare("for $x in fn:doc(a.xml)/r return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)));
    }
}
