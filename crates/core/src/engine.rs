//! The end-to-end engine: the modified query execution path of Fig. 3.
//!
//! `prepare (parse → GenerateQPT → PrepareLists) → search (GeneratePDT
//! index-only → regular evaluator over PDTs → score → materialize top-k
//! from document storage)`.
//!
//! [`ViewSearchEngine`] owns the indices and is generic over its
//! [`DocumentSource`] — the in-memory [`Corpus`], the disk-backed
//! [`vxv_xml::DiskStore`], or any embedder-supplied backend. The
//! view-proportional work happens once in [`ViewSearchEngine::prepare`];
//! the returned [`PreparedView`] answers [`SearchRequest`]s concurrently
//! (engine and prepared view are `Send + Sync`).
//!
//! Base documents are touched exactly once per returned hit — the final
//! materialization — which the [`DocumentSource::fetch_count`] counter
//! lets tests and experiments verify.

use crate::generate::DocMeta;
use crate::prepared::PreparedView;
use crate::qpt_gen::QptGenError;
use crate::request::{PhaseTimings, SearchHit, SearchRequest};
use crate::scoring::KeywordMode;
use std::collections::HashMap;
use std::fmt;
use vxv_index::{IndexBundle, InvertedIndex, PathIndex};
use vxv_xml::{Corpus, DiskStore, DocumentSource};
use vxv_xquery::{parse_query, EvalError, Query, QueryParseError};

/// Anything that can go wrong while answering a keyword-search-over-view
/// query.
#[derive(Debug)]
pub enum EngineError {
    /// The view text failed to parse.
    Parse(QueryParseError),
    /// The view is outside the supported fragment.
    QptGen(QptGenError),
    /// The view failed at evaluation time.
    Eval(EvalError),
    /// A `fn:doc(...)` reference names no loaded document.
    UnknownDocument(String),
    /// The document source failed while materializing a hit.
    Source(vxv_xml::source::SourceError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::QptGen(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
            EngineError::Source(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryParseError> for EngineError {
    fn from(e: QueryParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<QptGenError> for EngineError {
    fn from(e: QptGenError) -> Self {
        EngineError::QptGen(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// The keyword-search-over-virtual-views engine, generic over where the
/// top-k hits are materialized from.
///
/// Indices are either built over an in-memory corpus or loaded cold from
/// a persisted [`IndexBundle`] ([`ViewSearchEngine::open`]); `S` decides
/// where *base data* is read during materialization — the corpus itself
/// by default, or any other [`DocumentSource`] via [`Self::with_source`].
/// Prepare-time document metadata (root tag and ordinal per document
/// name) lives in a small catalog, so a cold engine never touches base
/// documents outside top-k materialization.
pub struct ViewSearchEngine<'c, S: DocumentSource = Corpus> {
    corpus: Option<&'c Corpus>,
    catalog: HashMap<String, DocMeta>,
    path_index: PathIndex,
    inverted: InvertedIndex,
    source: &'c S,
}

fn corpus_catalog(corpus: &Corpus) -> HashMap<String, DocMeta> {
    corpus
        .docs()
        .filter_map(|d| {
            let root = d.root()?;
            Some((
                d.name().to_string(),
                DocMeta {
                    name: d.name().to_string(),
                    root_tag: d.node_tag(root).to_string(),
                    root_ordinal: d.node(root).dewey.components()[0],
                },
            ))
        })
        .collect()
}

impl<'c> ViewSearchEngine<'c, Corpus> {
    /// Build indices over `corpus` and materialize from it.
    pub fn new(corpus: &'c Corpus) -> Self {
        ViewSearchEngine {
            corpus: Some(corpus),
            catalog: corpus_catalog(corpus),
            path_index: PathIndex::build(corpus),
            inverted: InvertedIndex::build(corpus),
            source: corpus,
        }
    }

    /// Reuse pre-built indices.
    pub fn with_indices(
        corpus: &'c Corpus,
        path_index: PathIndex,
        inverted: InvertedIndex,
    ) -> Self {
        ViewSearchEngine {
            corpus: Some(corpus),
            catalog: corpus_catalog(corpus),
            path_index,
            inverted,
            source: corpus,
        }
    }
}

impl<'c> ViewSearchEngine<'c, DiskStore> {
    /// Cold-open an engine over persisted state: indices and document
    /// catalog from an [`IndexBundle`], base data from a [`DiskStore`].
    /// No corpus exists — searches are answered without re-tokenizing or
    /// re-walking any base document.
    pub fn open(store: &'c DiskStore, bundle: IndexBundle) -> Self {
        let catalog = bundle
            .docs
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    DocMeta {
                        name: d.name.clone(),
                        root_tag: d.root_tag.clone(),
                        root_ordinal: d.root_ordinal,
                    },
                )
            })
            .collect();
        ViewSearchEngine {
            corpus: None,
            catalog,
            path_index: bundle.path_index,
            inverted: bundle.inverted,
            source: store,
        }
    }
}

impl<'c, S: DocumentSource> ViewSearchEngine<'c, S> {
    /// Materialize top-k hits from `source` instead of the current
    /// backend. Indices and prepared plans are unaffected — only the
    /// final per-hit base-data reads move.
    pub fn with_source<T: DocumentSource>(self, source: &'c T) -> ViewSearchEngine<'c, T> {
        ViewSearchEngine {
            corpus: self.corpus,
            catalog: self.catalog,
            path_index: self.path_index,
            inverted: self.inverted,
            source,
        }
    }

    /// Route top-k materialization through disk-backed document storage.
    #[deprecated(since = "0.1.0", note = "use `with_source(store)`")]
    pub fn with_store(
        self,
        store: &'c vxv_xml::DiskStore,
    ) -> ViewSearchEngine<'c, vxv_xml::DiskStore> {
        self.with_source(store)
    }

    /// The corpus the indices were built over, if the engine was
    /// constructed from one (`None` after a cold [`Self::open`]).
    pub fn corpus(&self) -> Option<&'c Corpus> {
        self.corpus
    }

    /// Catalog metadata for one document name (root tag and ordinal).
    pub fn doc_meta(&self, name: &str) -> Option<&DocMeta> {
        self.catalog.get(name)
    }

    /// The engine's path index (for experiments reporting probe work).
    pub fn path_index(&self) -> &PathIndex {
        &self.path_index
    }

    /// The engine's inverted index.
    pub fn inverted_index(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// The base-data backend hits are materialized from.
    pub fn source(&self) -> &'c S {
        self.source
    }

    /// Analyze the view text once — parse, QPT generation, and the
    /// `PrepareLists` probe phase — into a [`PreparedView`] that answers
    /// many [`SearchRequest`]s.
    pub fn prepare(&self, view: &str) -> Result<PreparedView<'_, 'c, S>, EngineError> {
        self.prepare_query(parse_query(view)?)
    }

    /// As [`Self::prepare`], over an already-parsed view.
    pub fn prepare_query(&self, query: Query) -> Result<PreparedView<'_, 'c, S>, EngineError> {
        PreparedView::build(self, query)
    }

    /// One-shot convenience: prepare and run a single request.
    pub fn search_once(
        &self,
        view: &str,
        request: &SearchRequest,
    ) -> Result<crate::request::SearchResponse, EngineError> {
        self.prepare(view)?.search(request)
    }

    /// Run a ranked keyword search over the virtual view defined by the
    /// XQuery text `view`.
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::search(&SearchRequest)`; \
                this shim re-prepares the view on every call"
    )]
    pub fn search(
        &self,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response =
            self.prepare(view)?.search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// As the deprecated `search`, over a pre-parsed view.
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare_query(query)` + `PreparedView::search(&SearchRequest)`"
    )]
    pub fn search_query(
        &self,
        query: &Query,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response = self
            .prepare_query(query.clone())?
            .search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// Explain how a keyword search over `view` would be answered —
    /// without running the query.
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::plan(keywords)`, or \
                `SearchRequest::with_plan(true)`"
    )]
    pub fn explain(
        &self,
        view: &str,
        keywords: &[&str],
    ) -> Result<crate::prepared::QueryPlan, EngineError> {
        Ok(self.prepare(view)?.plan(keywords))
    }
}

/// What the deprecated one-shot `search` reports (the prepared API's
/// [`crate::request::SearchResponse`] supersedes this).
#[derive(Debug)]
pub struct SearchOutcome {
    /// Ranked, materialized hits.
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the (virtual) view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs (Fig. 14's bars).
    pub timings: PhaseTimings,
    /// Per-document PDT statistics: (doc name, sweep stats, PDT bytes).
    pub pdt_stats: Vec<(String, crate::generate::GenerateStats, u64)>,
    /// Base-data subtree fetches spent on materialization.
    pub fetches: u64,
}

impl SearchOutcome {
    fn from_response(r: crate::request::SearchResponse) -> Self {
        SearchOutcome {
            hits: r.hits,
            view_size: r.view_size,
            matching: r.matching,
            idf: r.idf,
            timings: r.timings.unwrap_or_default(),
            pdt_stats: r.pdt_stats,
            fetches: r.fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
               <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
               <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
             </books>",
        )
        .unwrap();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>111</isbn><content>all about XML search engines</content></review>\
               <review><isbn>111</isbn><content>easy to read</content></review>\
               <review><isbn>222</isbn><content>thorough search coverage</content></review>\
               <review><isbn>333</isbn><content>XML search classics</content></review>\
             </reviews>",
        )
        .unwrap();
        c
    }

    const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
         where $book/year > 1995 \
         return <bookrevs> \
           { <book> {$book/title} </book> } \
           { for $rev in fn:doc(reviews.xml)/reviews//review \
             where $rev/isbn = $book/isbn \
             return $rev/content } \
         </bookrevs>";

    #[test]
    fn end_to_end_conjunctive_search_on_the_running_example() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        // View has two elements (books 111 and 222; book 333 fails year).
        assert_eq!(out.view_size, 2);
        // Only book 111's bookrevs contains both xml and search.
        assert_eq!(out.matching, 1);
        assert_eq!(out.hits.len(), 1);
        let hit = &out.hits[0];
        assert!(hit.xml.contains("<title>XML Web Services</title>"), "{}", hit.xml);
        assert!(hit.xml.contains("all about XML search engines"), "{}", hit.xml);
        assert!(hit.xml.starts_with("<bookrevs>"), "{}", hit.xml);
        // tf: xml appears in title (1) + review1 (1) + nothing else = 2;
        // search appears once in review1.
        assert_eq!(hit.tf, vec![2, 1]);
    }

    #[test]
    fn disjunctive_search_matches_any_keyword() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        let out = view
            .search(&SearchRequest::new(["intelligence", "xml"]).mode(KeywordMode::Disjunctive))
            .unwrap();
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn base_data_is_fetched_only_for_top_k() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).top_k(1)).unwrap();
        assert_eq!(out.hits.len(), 1);
        // Matching elements: both bookrevs contain "search"; but only the
        // top-1 result's content nodes were fetched from storage.
        assert_eq!(out.matching, 2);
        assert_eq!(c.fetch_count(), out.fetches);
        assert!(out.fetches <= 3, "fetched {} subtrees", out.fetches);
    }

    #[test]
    fn skipping_materialization_touches_no_base_data() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).materialize(false)).unwrap();
        assert_eq!(out.fetches, 0);
        assert_eq!(c.fetch_count(), 0);
        assert!(!out.hits.is_empty());
        for hit in &out.hits {
            assert!(hit.xml.is_empty());
            assert!(hit.byte_len > 0, "stats still come from the PDT annotations");
        }
    }

    #[test]
    fn timing_collection_can_be_disabled() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        let with = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(with.timings.is_some());
        let without = view.search(&SearchRequest::new(["xml"]).collect_timings(false)).unwrap();
        assert!(without.timings.is_none());
    }

    #[test]
    fn byte_lengths_match_materialized_output() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        for hit in &out.hits {
            assert_eq!(hit.byte_len, hit.xml.len() as u64, "hit: {}", hit.xml);
        }
    }

    #[test]
    fn unknown_documents_are_reported_at_prepare_time() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let e = engine.prepare("for $x in fn:doc(zzz.xml)/a return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)), "{e}");
    }

    #[test]
    fn pdt_stats_are_reported_per_document() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        assert_eq!(out.pdt_stats.len(), 2);
        assert_eq!(out.pdt_stats[0].0, "books.xml");
        assert!(out.pdt_stats[0].1.emitted > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_one_shot_search_matches_prepared_search() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let legacy = engine.search(VIEW, &["XML", "search"], 10, KeywordMode::Conjunctive).unwrap();
        let prepared =
            engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["XML", "search"])).unwrap();
        assert_eq!(legacy.view_size, prepared.view_size);
        assert_eq!(legacy.matching, prepared.matching);
        assert_eq!(legacy.idf, prepared.idf);
        assert_eq!(legacy.hits.len(), prepared.hits.len());
        for (a, b) in legacy.hits.iter().zip(&prepared.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.tf, b.tf);
            assert_eq!(a.xml, b.xml);
        }
    }

    #[test]
    fn engine_and_prepared_view_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ViewSearchEngine<'_, Corpus>>();
        assert_send_sync::<ViewSearchEngine<'_, vxv_xml::DiskStore>>();
        assert_send_sync::<PreparedView<'_, '_, Corpus>>();
        assert_send_sync::<SearchRequest>();
        assert_send_sync::<crate::request::SearchResponse>();
    }

    #[test]
    fn concurrent_searches_share_one_prepared_view() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare(VIEW).unwrap();
        let baseline = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let view = &view;
                    s.spawn(move || view.search(&SearchRequest::new(["XML", "search"])).unwrap())
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert_eq!(out.matching, baseline.matching);
                assert_eq!(out.hits.len(), baseline.hits.len());
                for (a, b) in out.hits.iter().zip(&baseline.hits) {
                    assert_eq!(a.score, b.score);
                    assert_eq!(a.xml, b.xml);
                }
            }
        });
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn plan_reports_probes_and_list_lengths() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml xml</title><year>1999</year></book>\
             <book><isbn>2</isbn><title>other</title><year>1990</year></book></books>",
        )
        .unwrap();
        let engine = ViewSearchEngine::new(&c);
        let view = engine
            .prepare(
                "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 \
                 return <h> { $b/title } </h>",
            )
            .unwrap();
        let out = view.plan(&["XML", "zzz"]);
        assert_eq!(out.qpts.len(), 1);
        let r = &out.qpts[0];
        assert_eq!(r.doc_name, "books.xml");
        assert!(r.rendered.contains("//book"), "{}", r.rendered);
        // title and year probed; year carries a pushed predicate.
        assert_eq!(r.probes.len(), 2, "{:?}", r.probes);
        let year = r.probes.iter().find(|p| p.pattern.ends_with("/year")).unwrap();
        assert_eq!(year.predicates, 1);
        assert_eq!(year.entries, 1, "only the 1999 year passes");
        // Keyword list lengths are normalized and exact.
        assert_eq!(out.keyword_list_lengths, vec![("xml".to_string(), 1), ("zzz".to_string(), 0)]);
    }

    #[test]
    fn plan_rides_along_with_a_search_when_requested() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><e><v>xml data</v></e></r>").unwrap();
        let engine = ViewSearchEngine::new(&c);
        let view = engine.prepare("for $e in fn:doc(d.xml)/r/e return $e/v").unwrap();
        let out = view.search(&SearchRequest::new(["xml"]).with_plan(true)).unwrap();
        let plan = out.plan.expect("plan requested");
        assert_eq!(plan.qpts.len(), 1);
        let out2 = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(out2.plan.is_none());
    }

    #[test]
    fn prepare_rejects_unknown_documents() {
        let c = Corpus::new();
        let engine = ViewSearchEngine::new(&c);
        let e = engine.prepare("for $x in fn:doc(a.xml)/r return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)));
    }
}
