//! The end-to-end engine: the modified query execution path of Fig. 3,
//! over a **segmented** index.
//!
//! `prepare (parse → GenerateQPT → PrepareLists) → search (GeneratePDT
//! index-only → regular evaluator over PDTs → score → materialize top-k
//! from document storage)`.
//!
//! [`ViewSearchEngine`] **owns** its state — an atomically swappable
//! **segment set** (`Arc<Vec<Arc<…>>>` of immutable
//! [`vxv_index::IndexSegment`]s), per-segment document catalogs, and an
//! `Arc` of its [`DocumentSource`] — so engine, [`PreparedView`] and
//! [`crate::catalog::ViewCatalog`] are all `Send + Sync + 'static`.
//! Cloning an engine is an `Arc` bump; every clone shares the same
//! segment state, source and work counters.
//!
//! The segment set is the engine's unit of evolution:
//!
//! * [`ViewSearchEngine::ingest`] builds a **new** segment from new
//!   documents (namespaced under fresh Dewey root ordinals) and swaps
//!   the set — existing segments are never touched, and every
//!   [`PreparedView`] keeps the snapshot it was prepared against, so
//!   in-flight searches are never torn;
//! * [`ViewSearchEngine::compact`] merges size-tiered groups of
//!   segments into bigger ones whose indices are byte-identical to a
//!   single build over the union — compaction can never change a
//!   search result;
//! * searches fan PDT generation across segments in parallel and merge
//!   scores across segments exactly as a single-segment engine would
//!   (the equivalence property the test suite pins down).
//!
//! The view-proportional work happens once in
//! [`ViewSearchEngine::prepare`]; the returned [`PreparedView`] answers
//! [`crate::request::SearchRequest`]s concurrently. Base documents are
//! touched exactly once per returned hit — the final materialization —
//! which the [`DocumentSource::fetch_count`] counter lets tests and
//! experiments verify.

use crate::cache::{CacheStats, ResultCache};
use crate::generate::DocMeta;
use crate::memtable::MemTable;
use crate::prepared::PreparedView;
use crate::qpt_gen::QptGenError;
use crate::request::{PhaseTimings, SearchRequest};
use crate::scoring::PruneStats;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::Duration;
use vxv_index::wal::{self, FsyncPolicy, WalWriter};
use vxv_index::{
    Footprint, IndexBundle, IndexFootprint, IndexSegment, InvertedIndex, InvertedIndexStats,
    PathIndex, PathIndexStats,
};
use vxv_xml::{parse_document, Corpus, DiskStore, DocumentSource};
use vxv_xquery::{parse_query, EvalError, Query, QueryParseError};

#[cfg(feature = "legacy-api")]
use crate::request::SearchHit;
#[cfg(feature = "legacy-api")]
use crate::scoring::KeywordMode;

/// Anything that can go wrong while answering a keyword-search-over-view
/// query.
#[derive(Debug)]
pub enum EngineError {
    /// The view text failed to parse.
    Parse(QueryParseError),
    /// The view is outside the supported fragment.
    QptGen(QptGenError),
    /// The view failed at evaluation time.
    Eval(EvalError),
    /// A `fn:doc(...)` reference names no loaded document.
    UnknownDocument(String),
    /// The document source failed while materializing a hit.
    Source(vxv_xml::source::SourceError),
    /// The request carried no non-empty keyword; nothing to rank.
    EmptyQuery,
    /// A query term failed validation (malformed syntax, empty phrase
    /// word, non-positive boost, …). The payload is the reason.
    InvalidTerm(String),
    /// The request carries a phrase or proximity term, but at least one
    /// index segment stores no per-occurrence positions (it was loaded
    /// from a pre-v5 bundle; positions are recorded at tokenization
    /// time and cannot be synthesized from the postings). Rebuild the
    /// index from the base documents to upgrade; word and prefix terms
    /// keep working either way.
    PositionsUnavailable,
    /// No view with that name is registered in the catalog.
    ViewNotFound(String),
    /// An [`ViewSearchEngine::ingest`] batch was rejected (parse failure,
    /// duplicate document name, empty batch).
    Ingest(String),
    /// The request's deadline passed before the search finished. Carries
    /// the phase work completed up to the abort.
    DeadlineExceeded {
        /// Partial per-phase wall-clock costs at the moment of abort.
        timings: PhaseTimings,
    },
    /// The request's [`crate::CancelToken`] fired. Carries the phase work
    /// completed up to the abort.
    Cancelled {
        /// Partial per-phase wall-clock costs at the moment of abort.
        timings: PhaseTimings,
    },
    /// The request was shed before executing — by a tenant's
    /// concurrent-search quota or by the serving tier's bounded
    /// admission queue. Nothing ran; retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after: std::time::Duration,
    },
    /// A tenant resource quota (e.g. registered views) was exceeded.
    QuotaExceeded {
        /// The tenant that hit its ceiling.
        tenant: String,
        /// Which quota tripped, human-readable (e.g. `max_views=8`).
        quota: String,
    },
    /// A view references documents the deterministic doc→shard map
    /// assigns to different shards, so no single shard can own it
    /// (raised by [`crate::router::ShardedCatalog`]).
    CrossShard {
        /// The view name being registered.
        view: String,
        /// Each referenced document with its assigned shard.
        docs: Vec<(String, usize)>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::QptGen(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
            EngineError::Source(e) => write!(f, "{e}"),
            EngineError::EmptyQuery => {
                write!(f, "search request carries no non-empty keyword")
            }
            EngineError::InvalidTerm(why) => write!(f, "invalid query term: {why}"),
            EngineError::PositionsUnavailable => write!(
                f,
                "phrase/proximity terms need per-occurrence positions, but a segment \
                 was loaded from a pre-v5 bundle without them (rebuild the index from \
                 the base documents to upgrade)"
            ),
            EngineError::ViewNotFound(name) => write!(f, "no view named '{name}' in catalog"),
            EngineError::Ingest(what) => write!(f, "ingest rejected: {what}"),
            EngineError::DeadlineExceeded { timings } => {
                write!(f, "deadline exceeded after {:?}", timings.total())
            }
            EngineError::Cancelled { timings } => {
                write!(f, "search cancelled after {:?}", timings.total())
            }
            EngineError::Overloaded { retry_after } => {
                write!(f, "overloaded, retry after {}ms", retry_after.as_millis())
            }
            EngineError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant '{tenant}' exceeded quota {quota}")
            }
            EngineError::CrossShard { view, docs } => {
                write!(f, "view '{view}' spans shards:")?;
                for (doc, shard) in docs {
                    write!(f, " {doc}→{shard}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryParseError> for EngineError {
    fn from(e: QueryParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<QptGenError> for EngineError {
    fn from(e: QptGenError) -> Self {
        EngineError::QptGen(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<crate::term::TermParseError> for EngineError {
    fn from(e: crate::term::TermParseError) -> Self {
        EngineError::InvalidTerm(e.0)
    }
}

/// One segment as the engine sees it: the immutable index triple plus
/// the per-segment document catalog and, for ingested segments, the
/// in-memory corpus their hits materialize from.
pub(crate) struct EngineSegment {
    /// Engine-unique id (monotonic across ingests and compactions).
    pub(crate) id: u64,
    /// The immutable (path index, inverted index, catalog) triple.
    pub(crate) index: Arc<IndexSegment>,
    /// `fn:doc(...)` name → catalog metadata, namespaced by segment.
    pub(crate) catalog: HashMap<String, DocMeta>,
    /// Base data for ingested documents (absent when the engine's main
    /// [`DocumentSource`] covers this segment's documents).
    pub(crate) side_corpus: Option<Arc<Corpus>>,
}

impl EngineSegment {
    fn new(id: u64, index: Arc<IndexSegment>, side_corpus: Option<Arc<Corpus>>) -> EngineSegment {
        let catalog = index
            .docs()
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    DocMeta {
                        name: d.name.clone(),
                        root_tag: d.root_tag.clone(),
                        root_ordinal: d.root_ordinal,
                        segment: id,
                    },
                )
            })
            .collect();
        EngineSegment { id, index, catalog, side_corpus }
    }

    fn info(&self) -> SegmentInfo {
        SegmentInfo {
            id: self.id,
            generation: self.index.generation(),
            documents: self.index.doc_count(),
            footprint: self.index.footprint(),
        }
    }
}

/// The atomically swappable snapshot searches and prepared views hold.
pub(crate) type SegmentSet = Vec<Arc<EngineSegment>>;

/// Segment bookkeeping shared by every engine clone (including
/// source-swapped ones): the swappable set, the Dewey root-ordinal
/// allocator that namespaces ingested documents, and the id counter.
struct SegmentState {
    set: RwLock<Arc<SegmentSet>>,
    /// Segment-set generation: bumped (under the `set` write lock) on
    /// every swap — ingest, append publish, compaction. Prepared views
    /// record the epoch they captured; the result cache keys on it, so
    /// a swap invalidates every cached response implicitly.
    epoch: AtomicU64,
    /// The epoch-keyed result cache (see [`crate::cache::ResultCache`]),
    /// shared across clones like the tallies.
    cache: ResultCache,
    next_ordinal: AtomicU32,
    next_segment_id: AtomicU64,
    /// Serializes set *mutations* (ingest / append / compact); readers
    /// only ever take the `set` read lock for an `Arc` clone.
    ///
    /// Lock order: `mutate` before `write` — never the reverse.
    mutate: Mutex<()>,
    /// Engine-lifetime top-k pruning tallies, shared across clones and
    /// source swaps like the segment set itself.
    prune: PruneTallies,
    /// The real-time write path (WAL + memtable), present after
    /// [`ViewSearchEngine::enable_writes`].
    write: Mutex<Option<WriteState>>,
    /// Write-path counters, shared across clones like `prune`.
    write_tallies: WriteTallies,
    /// The background compaction thread, if one is running.
    compactor: Mutex<Option<Compactor>>,
}

/// Tuning knobs for the real-time write path (see
/// [`ViewSearchEngine::enable_writes`]).
#[derive(Clone, Copy, Debug)]
pub struct WriteConfig {
    /// When the WAL is fsynced (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Seal the memtable into an ordinary segment once it holds this
    /// many raw XML bytes.
    pub memtable_max_bytes: u64,
    /// Seal the memtable once its accumulation is this old (checked at
    /// append time).
    pub memtable_max_age: Duration,
    /// Background compaction cadence; `None` runs no compactor thread
    /// (call [`ViewSearchEngine::compact`] manually).
    pub compact_interval: Option<Duration>,
}

impl Default for WriteConfig {
    fn default() -> WriteConfig {
        WriteConfig {
            fsync: FsyncPolicy::PerRecord,
            memtable_max_bytes: 4 << 20,
            memtable_max_age: Duration::from_secs(30),
            compact_interval: Some(Duration::from_millis(200)),
        }
    }
}

/// The live write path: the open WAL, the mutable memtable, and the id
/// of the memtable's currently published snapshot segment.
struct WriteState {
    wal: WalWriter,
    memtable: MemTable,
    config: WriteConfig,
    /// Segment id of the memtable's snapshot currently in the set
    /// (`None` right after a seal or before the first append). The
    /// next append replaces this segment; compaction must never merge
    /// it away.
    live: Option<u64>,
}

/// Atomic accumulator behind [`EngineStats::writes`].
#[derive(Default)]
struct WriteTallies {
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    replay_records: AtomicU64,
    checkpoints: AtomicU64,
}

/// The background compaction thread and its shutdown signal.
struct Compactor {
    shutdown: Arc<(Mutex<bool>, Condvar)>,
    /// The compactor thread's own id — shutdown skips the join when the
    /// final engine handle is dropped *on* the compactor thread (it
    /// briefly upgrades a `Weak` to run a round), where joining would
    /// deadlock on self.
    thread_id: ThreadId,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    fn stop(&mut self) {
        let (flag, cv) = &*self.shutdown;
        if let Ok(mut stop) = flag.lock() {
            *stop = true;
        }
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            if thread::current().id() != self.thread_id {
                let _ = handle.join();
            }
        }
    }
}

/// Start the background compaction loop: wake every `interval`, upgrade
/// the weak state handle, run one tiered round, release. Holding only a
/// `Weak` between rounds means the thread never keeps a dropped engine
/// alive; the condvar makes shutdown immediate instead of
/// sleep-granular.
fn spawn_compactor(state: &Arc<SegmentState>, interval: Duration) -> Compactor {
    let weak = Arc::downgrade(state);
    let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
    let signal = Arc::clone(&shutdown);
    let handle = thread::Builder::new()
        .name("vxv-compactor".into())
        .spawn(move || loop {
            {
                let (flag, cv) = &*signal;
                let mut stop = flag.lock().unwrap();
                if !*stop {
                    let (guard, _timeout) = cv.wait_timeout(stop, interval).unwrap();
                    stop = guard;
                }
                if *stop {
                    break;
                }
            }
            let Some(state) = weak.upgrade() else { break };
            state.compact_once();
        })
        .expect("spawn vxv-compactor thread");
    Compactor { shutdown, thread_id: handle.thread().id(), handle: Some(handle) }
}

/// Atomic accumulator behind [`EngineStats::pruning`].
#[derive(Default)]
struct PruneTallies {
    blocks_pruned: AtomicU64,
    candidates_skipped: AtomicU64,
    early_terminations: AtomicU64,
}

impl PruneTallies {
    fn add(&self, s: PruneStats) {
        self.blocks_pruned.fetch_add(s.blocks_pruned, Ordering::Relaxed);
        self.candidates_skipped.fetch_add(s.candidates_skipped, Ordering::Relaxed);
        self.early_terminations.fetch_add(s.early_terminations, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PruneStats {
        PruneStats {
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed),
            candidates_skipped: self.candidates_skipped.load(Ordering::Relaxed),
            early_terminations: self.early_terminations.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.blocks_pruned.store(0, Ordering::Relaxed);
        self.candidates_skipped.store(0, Ordering::Relaxed);
        self.early_terminations.store(0, Ordering::Relaxed);
    }
}

impl SegmentState {
    fn new(mut segments: Vec<Arc<EngineSegment>>) -> SegmentState {
        // Invariant: an engine always holds at least one segment (an
        // empty bundle — e.g. `IndexBundle::from_segments(vec![])` —
        // cold-opens as one empty segment, so diagnostics accessors
        // never panic and ingest has a set to grow).
        if segments.is_empty() {
            segments.push(Arc::new(EngineSegment::new(
                1,
                Arc::new(IndexSegment::build(&Corpus::new())),
                None,
            )));
        }
        let next_ordinal = segments
            .iter()
            .filter_map(|s| s.index.max_root_ordinal())
            .max()
            .map(|m| m + 1)
            .unwrap_or(1);
        let next_segment_id = segments.iter().map(|s| s.id).max().map(|m| m + 1).unwrap_or(1);
        SegmentState {
            set: RwLock::new(Arc::new(segments)),
            epoch: AtomicU64::new(1),
            cache: ResultCache::default(),
            next_ordinal: AtomicU32::new(next_ordinal),
            next_segment_id: AtomicU64::new(next_segment_id),
            mutate: Mutex::new(()),
            prune: PruneTallies::default(),
            write: Mutex::new(None),
            write_tallies: WriteTallies::default(),
            compactor: Mutex::new(None),
        }
    }

    fn snapshot(&self) -> Arc<SegmentSet> {
        Arc::clone(&self.set.read().unwrap())
    }

    /// The snapshot and the epoch it belongs to, read under one lock so
    /// the pair is always consistent (a concurrent swap gives either the
    /// old set with the old epoch or the new set with the new one).
    fn snapshot_and_epoch(&self) -> (Arc<SegmentSet>, u64) {
        let set = self.set.read().unwrap();
        (Arc::clone(&set), self.epoch.load(Ordering::Acquire))
    }

    /// Swap in a new segment set and bump the epoch, both under the
    /// `set` write lock — the single choke point every mutation
    /// (ingest / append publish / compaction) goes through. Stale cache
    /// entries are purged after the lock drops.
    fn publish(&self, next: SegmentSet) {
        let epoch = {
            let mut set = self.set.write().unwrap();
            *set = Arc::new(next);
            self.epoch.fetch_add(1, Ordering::AcqRel) + 1
        };
        self.cache.invalidate_below(epoch);
    }

    /// Index one write batch: dup-check, parse under fresh ordinals,
    /// log to the WAL (when `durable` — replay skips this), add to the
    /// memtable, publish its snapshot segment into the set, and seal on
    /// threshold. Caller holds `mutate`; nothing is acknowledged until
    /// the WAL append succeeded.
    fn apply_batch(
        &self,
        ws: &mut WriteState,
        docs: &[(String, String)],
        durable: bool,
    ) -> Result<IngestReport, EngineError> {
        let snapshot = self.snapshot();
        let mut parsed = Vec::with_capacity(docs.len());
        let mut names: Vec<String> = Vec::with_capacity(docs.len());
        for (name, xml) in docs {
            let taken = ws.memtable.contains(name)
                || names.iter().any(|n| n == name)
                || snapshot.iter().any(|seg| seg.catalog.contains_key(name));
            if taken {
                return Err(EngineError::Ingest(format!("document '{name}' already exists")));
            }
            let ordinal = self.next_ordinal.fetch_add(1, Ordering::Relaxed);
            let doc = parse_document(name, xml, ordinal)
                .map_err(|e| EngineError::Ingest(format!("{name}: {e}")))?;
            parsed.push((doc, xml.len() as u64));
            names.push(name.clone());
        }
        if durable {
            let framed = ws
                .wal
                .append_batch(docs)
                .map_err(|e| EngineError::Ingest(format!("WAL append: {e}")))?;
            self.write_tallies.wal_appends.fetch_add(1, Ordering::Relaxed);
            self.write_tallies.wal_bytes.fetch_add(framed, Ordering::Relaxed);
        }
        for (doc, bytes) in parsed {
            ws.memtable.add(doc, bytes);
        }
        // Publish the grown memtable as a fresh immutable snapshot
        // segment, replacing its previous snapshot in the set. The
        // memtable segment sits *last* so single-segment diagnostics
        // accessors keep reading the base segment.
        let (index, corpus) = ws.memtable.snapshot();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let segment = Arc::new(EngineSegment::new(id, index, Some(corpus)));
        let info = segment.info();
        let mut next: SegmentSet =
            snapshot.iter().filter(|seg| Some(seg.id) != ws.live).cloned().collect();
        next.push(segment);
        self.publish(next);
        ws.live = Some(id);
        if ws.memtable.bytes() >= ws.config.memtable_max_bytes
            || ws.memtable.age() >= ws.config.memtable_max_age
        {
            self.seal(ws);
        }
        Ok(IngestReport { segment: info, documents: names })
    }

    /// Seal the memtable: its last published snapshot stays in the set
    /// as an ordinary segment (nothing is rewritten) and the builder
    /// restarts empty. Caller holds `mutate`.
    fn seal(&self, ws: &mut WriteState) {
        if ws.memtable.entries() == 0 {
            return;
        }
        ws.live = None;
        ws.memtable = MemTable::new();
        self.write_tallies.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// One round of size-tiered compaction (see
    /// [`ViewSearchEngine::compact`]). The live memtable snapshot is
    /// never merged — the next append would republish its documents on
    /// top of the merged copy.
    fn compact_once(&self) -> CompactReport {
        let _mutating = self.mutate.lock().unwrap();
        let live = self.write.lock().unwrap().as_ref().and_then(|w| w.live);
        let snapshot = self.snapshot();
        // Factor-of-4 size tiers over the compressed footprint.
        let tier_of = |seg: &EngineSegment| {
            let bytes = seg.index.footprint().compressed_bytes.max(1);
            (63 - bytes.leading_zeros() as u64) / 2
        };
        let mut tiers: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, seg) in snapshot.iter().enumerate() {
            if Some(seg.id) == live {
                continue;
            }
            tiers.entry(tier_of(seg)).or_default().push(i);
        }
        let mut report = CompactReport { merged_segments: 0, merges: 0, segments: snapshot.len() };
        let mut replacement: HashMap<usize, Arc<EngineSegment>> = HashMap::new();
        let mut dropped: Vec<usize> = Vec::new();
        for members in tiers.values() {
            if members.len() < 2 {
                continue;
            }
            let inputs: Vec<&IndexSegment> =
                members.iter().map(|&i| snapshot[i].index.as_ref()).collect();
            let merged_index = Arc::new(IndexSegment::merge(inputs));
            let side = merge_side_corpora(members.iter().map(|&i| &snapshot[i]));
            let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
            replacement.insert(members[0], Arc::new(EngineSegment::new(id, merged_index, side)));
            dropped.extend(&members[1..]);
            report.merged_segments += members.len();
            report.merges += 1;
        }
        if report.merges == 0 {
            return report;
        }
        let next: SegmentSet = snapshot
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped.contains(i))
            .map(|(i, seg)| replacement.remove(&i).unwrap_or_else(|| Arc::clone(seg)))
            .collect();
        report.segments = next.len();
        self.publish(next);
        self.write_tallies.compactions.fetch_add(1, Ordering::Relaxed);
        report
    }

    fn write_stats(&self) -> WriteStats {
        let write = self.write.lock().unwrap();
        WriteStats {
            enabled: write.is_some(),
            memtable_entries: write.as_ref().map_or(0, |w| w.memtable.entries() as u64),
            wal_appends: self.write_tallies.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.write_tallies.wal_bytes.load(Ordering::Relaxed),
            flushes: self.write_tallies.flushes.load(Ordering::Relaxed),
            compactions: self.write_tallies.compactions.load(Ordering::Relaxed),
            replay_records: self.write_tallies.replay_records.load(Ordering::Relaxed),
            checkpoints: self.write_tallies.checkpoints.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SegmentState {
    fn drop(&mut self) {
        // Stop the background compactor first (join unless we *are* the
        // compactor thread), then make Interval/Never WALs durable on
        // this clean exit. `get_mut` can't deadlock — we hold the only
        // reference — and a poisoned lock just skips the courtesy sync.
        if let Ok(compactor) = self.compactor.get_mut() {
            if let Some(mut c) = compactor.take() {
                c.stop();
            }
        }
        if let Ok(write) = self.write.get_mut() {
            if let Some(ws) = write.as_mut() {
                let _ = ws.wal.sync();
            }
        }
    }
}

/// The engine's shared state: segment state, and source. Everything a
/// [`PreparedView`] or a [`crate::catalog::ViewCatalog`] needs to answer
/// searches, behind one `Arc` so prepared state never dangles.
pub(crate) struct EngineInner<S: DocumentSource> {
    corpus: Option<Arc<Corpus>>,
    state: Arc<SegmentState>,
    source: Arc<S>,
}

/// The keyword-search-over-virtual-views engine, generic over where the
/// top-k hits are materialized from.
///
/// Indices are either built over an in-memory corpus or loaded cold from
/// a persisted [`IndexBundle`] ([`ViewSearchEngine::open`]); `S` decides
/// where *base data* is read during materialization — the corpus itself
/// by default, or any other [`DocumentSource`] via [`Self::with_source`].
/// Prepare-time document metadata (root tag and ordinal per document
/// name) lives in per-segment catalogs, so a cold engine never touches
/// base documents outside top-k materialization.
///
/// The engine is a cheap `Arc` handle: clone it freely, share it across
/// threads, move it into a server. Constructors accept owned values or
/// `Arc`s (`impl Into<Arc<_>>`), so callers that still need the corpus or
/// store afterwards pass an `Arc` clone and keep their handle.
///
/// The index is **segmented**: [`Self::ingest`] makes new documents
/// searchable without rebuilding anything, [`Self::compact`] merges
/// small segments in the background, and [`Self::stats`] /
/// [`Self::segments`] report aggregate and per-segment state.
pub struct ViewSearchEngine<S: DocumentSource = Corpus> {
    inner: Arc<EngineInner<S>>,
}

impl<S: DocumentSource> Clone for ViewSearchEngine<S> {
    fn clone(&self) -> Self {
        ViewSearchEngine { inner: Arc::clone(&self.inner) }
    }
}

impl<S: DocumentSource> fmt::Debug for ViewSearchEngine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("ViewSearchEngine")
            .field("segments", &snapshot.len())
            .field("documents", &snapshot.iter().map(|s| s.catalog.len()).sum::<usize>())
            .field("source", &self.inner.source.kind())
            .finish_non_exhaustive()
    }
}

impl ViewSearchEngine<Corpus> {
    /// Build a single-segment index over `corpus` and materialize from
    /// it. Pass an `Arc<Corpus>` (keeping a clone) when the caller still
    /// needs the corpus — e.g. to read its fetch counters.
    pub fn new(corpus: impl Into<Arc<Corpus>>) -> Self {
        let corpus = corpus.into();
        let segment = Arc::new(EngineSegment::new(1, Arc::new(IndexSegment::build(&corpus)), None));
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                state: Arc::new(SegmentState::new(vec![segment])),
                source: Arc::clone(&corpus),
                corpus: Some(corpus),
            }),
        }
    }

    /// Reuse pre-built indices (as one segment).
    pub fn with_indices(
        corpus: impl Into<Arc<Corpus>>,
        path_index: impl Into<Arc<PathIndex>>,
        inverted: impl Into<Arc<InvertedIndex>>,
    ) -> Self {
        let corpus = corpus.into();
        let index = Arc::new(IndexSegment::from_parts(
            path_index.into(),
            inverted.into(),
            vxv_index::segment::corpus_doc_infos(&corpus),
            0,
        ));
        let segment = Arc::new(EngineSegment::new(1, index, None));
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                state: Arc::new(SegmentState::new(vec![segment])),
                source: Arc::clone(&corpus),
                corpus: Some(corpus),
            }),
        }
    }
}

impl ViewSearchEngine<DiskStore> {
    /// Cold-open an engine over persisted state: one or more index
    /// segments and their document catalogs from an [`IndexBundle`],
    /// base data from a [`DiskStore`]. No corpus exists — searches are
    /// answered without re-tokenizing or re-walking any base document.
    pub fn open(store: impl Into<Arc<DiskStore>>, bundle: IndexBundle) -> Self {
        let segments: Vec<Arc<EngineSegment>> = bundle
            .into_segments()
            .into_iter()
            .enumerate()
            .map(|(i, index)| Arc::new(EngineSegment::new(i as u64 + 1, index, None)))
            .collect();
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                corpus: None,
                state: Arc::new(SegmentState::new(segments)),
                source: store.into(),
            }),
        }
    }

    /// Cold-open with the write path on: [`Self::open`] followed by
    /// [`ViewSearchEngine::enable_writes`] — the one-call startup a
    /// serving process uses, recovering every acknowledged append from
    /// the WAL before taking traffic.
    pub fn open_with_writes(
        store: impl Into<Arc<DiskStore>>,
        bundle: IndexBundle,
        wal_path: impl AsRef<Path>,
        config: WriteConfig,
    ) -> Result<(Self, ReplayReport), EngineError> {
        let engine = Self::open(store, bundle);
        let report = engine.enable_writes(wal_path, config)?;
        Ok((engine, report))
    }
}

impl<S: DocumentSource> ViewSearchEngine<S> {
    /// Materialize top-k hits from `source` instead of the current
    /// backend. Indices and prepared plans are unaffected — only the
    /// final per-hit base-data reads move. The segment state stays
    /// shared, so ingests and compactions on either handle are visible
    /// to both.
    pub fn with_source<T: DocumentSource>(&self, source: impl Into<Arc<T>>) -> ViewSearchEngine<T> {
        ViewSearchEngine {
            inner: Arc::new(EngineInner {
                corpus: self.inner.corpus.clone(),
                state: Arc::clone(&self.inner.state),
                source: source.into(),
            }),
        }
    }

    /// Route top-k materialization through disk-backed document storage.
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.1.0", note = "use `with_source(store)`")]
    pub fn with_store(
        &self,
        store: impl Into<Arc<vxv_xml::DiskStore>>,
    ) -> ViewSearchEngine<vxv_xml::DiskStore> {
        self.with_source(store)
    }

    /// The current segment snapshot (what new prepared views capture).
    pub(crate) fn snapshot(&self) -> Arc<SegmentSet> {
        self.inner.state.snapshot()
    }

    /// The snapshot together with its epoch, read consistently.
    pub(crate) fn snapshot_and_epoch(&self) -> (Arc<SegmentSet>, u64) {
        self.inner.state.snapshot_and_epoch()
    }

    /// The segment-set epoch: a monotone generation counter bumped on
    /// every set swap (ingest, append publish, compaction). A
    /// [`PreparedView`] whose [`PreparedView::epoch`] differs from this
    /// was prepared against a superseded set; the result cache keys on
    /// it so swaps invalidate cached responses implicitly.
    pub fn epoch(&self) -> u64 {
        self.inner.state.epoch.load(Ordering::Acquire)
    }

    /// The engine's epoch-keyed result cache (shared by every clone).
    pub fn result_cache(&self) -> &ResultCache {
        &self.inner.state.cache
    }

    /// The corpus the initial segment was built over, if the engine was
    /// constructed from one (`None` after a cold [`Self::open`]).
    /// Ingested documents live in per-segment corpora, not here.
    pub fn corpus(&self) -> Option<&Corpus> {
        self.inner.corpus.as_deref()
    }

    /// Catalog metadata for one document name (root tag, ordinal and
    /// owning segment), searched across the current segment snapshot.
    pub fn doc_meta(&self, name: &str) -> Option<DocMeta> {
        self.snapshot().iter().find_map(|seg| seg.catalog.get(name).cloned())
    }

    /// The first segment's path index — diagnostics for single-segment
    /// engines (probe-counter tests, experiment tables). Multi-segment
    /// callers should use [`Self::stats`] / [`Self::segments`].
    pub fn path_index(&self) -> Arc<PathIndex> {
        self.snapshot().first().expect("engine always has a segment").index.path_index_arc()
    }

    /// The first segment's inverted index (see [`Self::path_index`]).
    pub fn inverted_index(&self) -> Arc<InvertedIndex> {
        self.snapshot().first().expect("engine always has a segment").index.inverted_arc()
    }

    /// The base-data backend hits are materialized from.
    pub fn source(&self) -> &S {
        &self.inner.source
    }

    /// An owned handle to the base-data backend.
    pub fn source_arc(&self) -> Arc<S> {
        Arc::clone(&self.inner.source)
    }

    /// Aggregate work counters and footprints, summed across every
    /// segment in the current snapshot — the one report experiments and
    /// operators read instead of per-index peeking.
    pub fn stats(&self) -> EngineStats {
        let snapshot = self.snapshot();
        let mut stats = EngineStats {
            segments: snapshot.len(),
            pruning: self.inner.state.prune.snapshot(),
            writes: self.inner.state.write_stats(),
            cache: self.inner.state.cache.stats(),
            ..EngineStats::default()
        };
        for seg in snapshot.iter() {
            stats.documents += seg.index.doc_count();
            stats.path = stats.path + seg.index.path_index().stats();
            stats.inverted = stats.inverted + seg.index.inverted().stats();
            stats.path_footprint = stats.path_footprint + seg.index.path_index().footprint();
            stats.inverted_footprint = stats.inverted_footprint + seg.index.inverted().footprint();
        }
        stats
    }

    /// Reset every segment's work counters and the pruning tallies.
    pub fn reset_stats(&self) {
        for seg in self.snapshot().iter() {
            seg.index.reset_stats();
        }
        self.inner.state.prune.reset();
    }

    /// Fold one search's pruning counters into the engine-lifetime
    /// tallies (shared across clones and source swaps).
    pub(crate) fn record_prune(&self, s: PruneStats) {
        self.inner.state.prune.add(s);
    }

    /// Per-segment breakdown (id, generation, document count, footprint)
    /// in snapshot order — what `vxv inspect` and the `serve` loop's
    /// `segments` command print so operators can see compaction state.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        self.snapshot().iter().map(|seg| seg.info()).collect()
    }

    /// Make new documents searchable by building **one new segment**
    /// over them and atomically swapping it into the segment set.
    /// Existing segments are untouched; existing [`PreparedView`]s keep
    /// the snapshot they were prepared against (snapshot isolation —
    /// re-prepare to see the new documents).
    ///
    /// `docs` is a batch of `(name, xml)` pairs. Each document is parsed
    /// under a fresh Dewey root ordinal above everything the engine
    /// already holds, so ids never collide across segments. Hits from
    /// ingested documents materialize from the segment's own in-memory
    /// corpus — the engine's main [`DocumentSource`] is never consulted
    /// for them. The whole batch is rejected (no state change) on a
    /// parse error, a duplicate document name, or an empty batch.
    pub fn ingest<N, X>(
        &self,
        docs: impl IntoIterator<Item = (N, X)>,
    ) -> Result<IngestReport, EngineError>
    where
        N: Into<String>,
        X: AsRef<str>,
    {
        let docs: Vec<(String, String)> =
            docs.into_iter().map(|(n, x)| (n.into(), x.as_ref().to_string())).collect();
        if docs.is_empty() {
            return Err(EngineError::Ingest("empty document batch".into()));
        }
        let state = &self.inner.state;
        let _mutating = state.mutate.lock().unwrap();
        let snapshot = state.snapshot();
        let mut corpus = Corpus::new();
        let mut names = Vec::with_capacity(docs.len());
        for (name, xml) in &docs {
            let taken = corpus.doc(name).is_some()
                || snapshot.iter().any(|seg| seg.catalog.contains_key(name));
            if taken {
                return Err(EngineError::Ingest(format!("document '{name}' already exists")));
            }
            let ordinal = state.next_ordinal.fetch_add(1, Ordering::Relaxed);
            let doc = parse_document(name, xml, ordinal)
                .map_err(|e| EngineError::Ingest(format!("{name}: {e}")))?;
            corpus.add(doc);
            names.push(name.clone());
        }
        let corpus = Arc::new(corpus);
        let id = state.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let segment =
            Arc::new(EngineSegment::new(id, Arc::new(IndexSegment::build(&corpus)), Some(corpus)));
        let info = segment.info();
        let mut next: SegmentSet = (*snapshot).clone();
        next.push(segment);
        state.publish(next);
        Ok(IngestReport { segment: info, documents: names })
    }

    /// Run one round of **size-tiered compaction**: segments are grouped
    /// into factor-of-four size tiers by compressed footprint, and every
    /// tier holding two or more segments is merged into a single segment
    /// (generation = deepest input + 1). The merged indices are
    /// byte-identical to a single build over the union of the documents,
    /// so search results can never change; views prepared before the
    /// compaction keep their snapshot and stay valid.
    ///
    /// Returns what happened; call repeatedly (e.g. from a maintenance
    /// loop) until `merges == 0` to fully settle the tiers.
    pub fn compact(&self) -> CompactReport {
        self.inner.state.compact_once()
    }

    /// Turn on the real-time write path: replay the WAL at `wal_path`
    /// (recovering every acknowledged [`Self::append`] batch, truncating
    /// a torn tail record typed), open it for appending, and start the
    /// background compaction thread per [`WriteConfig`]. After this,
    /// [`Self::append`] makes documents durable *and* immediately
    /// searchable.
    ///
    /// Replay rebuilds the memtable (and any segments it sealed)
    /// deterministically: batches re-apply in log order under the same
    /// ordinal allocation, so a recovered engine answers searches
    /// byte-identically to one that never crashed. A missing WAL file
    /// starts an empty log; a file that is not a WAL is a typed error
    /// (nothing is clobbered).
    pub fn enable_writes(
        &self,
        wal_path: impl AsRef<Path>,
        config: WriteConfig,
    ) -> Result<ReplayReport, EngineError> {
        let wal_path = wal_path.as_ref();
        let state = &self.inner.state;
        let _mutating = state.mutate.lock().unwrap();
        if state.write.lock().unwrap().is_some() {
            return Err(EngineError::Ingest("writes already enabled".into()));
        }
        let replay =
            wal::replay(wal_path).map_err(|e| EngineError::Ingest(format!("WAL replay: {e}")))?;
        let mut report = ReplayReport {
            records: replay.records,
            documents: 0,
            wal_bytes: replay.valid_bytes,
            truncated_tail: replay.truncated.map(|t| format!("{t:?}")),
        };
        let wal = WalWriter::open(wal_path, replay.valid_bytes, config.fsync)
            .map_err(|e| EngineError::Ingest(format!("WAL open: {e}")))?;
        let mut ws = WriteState { wal, memtable: MemTable::new(), config, live: None };
        for batch in &replay.batches {
            report.documents += batch.len();
            state.apply_batch(&mut ws, batch, false)?;
        }
        state.write_tallies.replay_records.fetch_add(replay.records, Ordering::Relaxed);
        *state.write.lock().unwrap() = Some(ws);
        if let Some(interval) = config.compact_interval {
            let mut compactor = state.compactor.lock().unwrap();
            if compactor.is_none() {
                *compactor = Some(spawn_compactor(state, interval));
            }
        }
        Ok(report)
    }

    /// Whether [`Self::enable_writes`] has run on this engine's shared
    /// state.
    pub fn writes_enabled(&self) -> bool {
        self.inner.state.write.lock().unwrap().is_some()
    }

    /// Durably append a batch of `(name, xml)` documents: the batch is
    /// WAL-logged first (fsynced per [`WriteConfig::fsync`]), then
    /// indexed into the memtable and published to searches **before
    /// any flush** — a successful return means the documents are both
    /// recoverable and visible to the next prepare. The whole batch is
    /// rejected atomically (nothing logged, nothing visible) on a parse
    /// error, duplicate name, or empty batch; requires
    /// [`Self::enable_writes`].
    ///
    /// Existing [`PreparedView`]s keep their snapshot, exactly as with
    /// [`Self::ingest`]; the memtable's snapshot segment participates
    /// in search, pruning and scoring like any flushed segment, so
    /// pruned and exact responses stay byte-identical.
    pub fn append<N, X>(
        &self,
        docs: impl IntoIterator<Item = (N, X)>,
    ) -> Result<IngestReport, EngineError>
    where
        N: Into<String>,
        X: AsRef<str>,
    {
        let docs: Vec<(String, String)> =
            docs.into_iter().map(|(n, x)| (n.into(), x.as_ref().to_string())).collect();
        if docs.is_empty() {
            return Err(EngineError::Ingest("empty document batch".into()));
        }
        let state = &self.inner.state;
        let _mutating = state.mutate.lock().unwrap();
        let mut write = state.write.lock().unwrap();
        let Some(ws) = write.as_mut() else {
            return Err(EngineError::Ingest("writes not enabled; call enable_writes first".into()));
        };
        state.apply_batch(ws, &docs, true)
    }

    /// Seal the memtable now (size/age thresholds normally do this):
    /// its published snapshot stays in the set as an ordinary segment
    /// for the background compactor to fold in. Returns whether a
    /// non-empty memtable was sealed.
    pub fn flush_memtable(&self) -> bool {
        let state = &self.inner.state;
        let _mutating = state.mutate.lock().unwrap();
        let mut write = state.write.lock().unwrap();
        let Some(ws) = write.as_mut() else { return false };
        if ws.memtable.entries() == 0 {
            return false;
        }
        state.seal(ws);
        true
    }

    /// Checkpoint the write path into `dir`, bounding restart replay
    /// cost: seal the memtable (so every WAL-recovered document lives in
    /// an ordinary segment), persist any appended documents' base data
    /// into the store catalog in `dir`, save the whole segment set as
    /// the index bundle, and **truncate the WAL to empty** — a restart
    /// replays only records appended after this call. All of it happens
    /// under the mutation lock, so no append can slip between the
    /// persist and the truncation; requires [`Self::enable_writes`].
    ///
    /// `dir` is the store/bundle directory the engine was opened from
    /// (`store.vxc` + `indices.vxi`); a directory without a store
    /// catalog gets a fresh one holding just the appended documents.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<CheckpointReport, EngineError> {
        let dir = dir.as_ref();
        let state = &self.inner.state;
        let _mutating = state.mutate.lock().unwrap();
        let mut write = state.write.lock().unwrap();
        let Some(ws) = write.as_mut() else {
            return Err(EngineError::Ingest("writes not enabled; call enable_writes first".into()));
        };
        let flushed = ws.memtable.entries() > 0;
        if flushed {
            state.seal(ws);
        }
        let snapshot = state.snapshot();
        // Appended documents materialize from in-memory side corpora
        // that WAL replay rebuilds; once the WAL is truncated they must
        // come from the disk store instead. Persist the ones the store
        // doesn't hold yet through a fresh handle — the live store
        // handle keeps serving reads from its own catalog, and the side
        // corpora keep covering these documents until a restart.
        let mut store = if dir.join(vxv_xml::diskstore::CATALOG_FILE).exists() {
            DiskStore::open(dir)
                .map_err(|e| EngineError::Ingest(format!("checkpoint store open: {e}")))?
        } else {
            DiskStore::default()
        };
        let known: std::collections::HashSet<String> =
            store.names().map(|n| n.to_string()).collect();
        let mut side = Corpus::new();
        for seg in snapshot.iter() {
            if let Some(corpus) = &seg.side_corpus {
                for doc in corpus.docs() {
                    if !known.contains(doc.name()) && side.doc(doc.name()).is_none() {
                        side.add(doc.clone());
                    }
                }
            }
        }
        let documents_persisted = side.docs().count();
        if documents_persisted > 0 {
            store
                .append_segment(&side, dir)
                .map_err(|e| EngineError::Ingest(format!("checkpoint store: {e}")))?;
        }
        IndexBundle::save_segments(snapshot.iter().map(|s| s.index.as_ref()), dir)
            .map_err(|e| EngineError::Ingest(format!("checkpoint bundle: {e}")))?;
        let wal_bytes_truncated = ws.wal.len().saturating_sub(wal::WAL_MAGIC.len() as u64);
        ws.wal.checkpoint().map_err(|e| EngineError::Ingest(format!("WAL checkpoint: {e}")))?;
        state.write_tallies.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(CheckpointReport {
            flushed,
            segments: snapshot.len(),
            documents_persisted,
            wal_bytes_truncated,
        })
    }

    /// Analyze the view text once — parse, QPT generation, and the
    /// `PrepareLists` probe phase against the **current segment
    /// snapshot** — into a [`PreparedView`] that answers many
    /// [`SearchRequest`]s. The prepared view owns an engine handle and
    /// its snapshot; it outlives this binding and moves freely across
    /// threads.
    pub fn prepare(&self, view: &str) -> Result<PreparedView<S>, EngineError> {
        self.prepare_query(parse_query(view)?)
    }

    /// As [`Self::prepare`], over an already-parsed view.
    pub fn prepare_query(&self, query: Query) -> Result<PreparedView<S>, EngineError> {
        PreparedView::build(self, query)
    }

    /// One-shot convenience: prepare and run a single request.
    pub fn search_once(
        &self,
        view: &str,
        request: &SearchRequest,
    ) -> Result<crate::request::SearchResponse, EngineError> {
        self.prepare(view)?.search(request)
    }

    /// Run a ranked keyword search over the virtual view defined by the
    /// XQuery text `view`.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::search(&SearchRequest)`; \
                this shim re-prepares the view on every call"
    )]
    #[allow(deprecated)]
    pub fn search(
        &self,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response =
            self.prepare(view)?.search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// As the deprecated `search`, over a pre-parsed view.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare_query(query)` + `PreparedView::search(&SearchRequest)`"
    )]
    #[allow(deprecated)]
    pub fn search_query(
        &self,
        query: &Query,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let response = self
            .prepare_query(query.clone())?
            .search(&SearchRequest::new(keywords).top_k(k).mode(mode))?;
        Ok(SearchOutcome::from_response(response))
    }

    /// Explain how a keyword search over `view` would be answered —
    /// without running the query.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.1.0",
        note = "use `prepare(view)` + `PreparedView::plan(keywords)`, or \
                `SearchRequest::with_plan(true)`"
    )]
    pub fn explain(
        &self,
        view: &str,
        keywords: &[&str],
    ) -> Result<crate::prepared::QueryPlan, EngineError> {
        Ok(self.prepare(view)?.plan(keywords))
    }
}

/// Merge the side corpora of a compaction group: `None` when no member
/// carries one, otherwise a fresh corpus holding every side document
/// (ordinals are disjoint by construction).
fn merge_side_corpora<'a>(
    members: impl Iterator<Item = &'a Arc<EngineSegment>>,
) -> Option<Arc<Corpus>> {
    let mut merged: Option<Corpus> = None;
    for seg in members {
        if let Some(side) = &seg.side_corpus {
            let target = merged.get_or_insert_with(Corpus::new);
            for doc in side.docs() {
                target.add(doc.clone());
            }
        }
    }
    merged.map(Arc::new)
}

/// One segment's operator-facing summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Engine-unique segment id (monotonic across ingests/compactions).
    pub id: u64,
    /// Merge depth: 0 for fresh builds, deepest input + 1 after merges.
    pub generation: u32,
    /// Documents the segment covers.
    pub documents: usize,
    /// Combined footprint of both index families.
    pub footprint: Footprint,
}

/// Aggregate engine report: work counters and footprints summed across
/// every segment (see [`ViewSearchEngine::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Segments in the current snapshot.
    pub segments: usize,
    /// Documents across all segments.
    pub documents: usize,
    /// Path-index counters, summed.
    pub path: PathIndexStats,
    /// Inverted-index counters, summed.
    pub inverted: InvertedIndexStats,
    /// Path-index footprints, summed.
    pub path_footprint: Footprint,
    /// Inverted-index footprints, summed.
    pub inverted_footprint: Footprint,
    /// Engine-lifetime top-k pruning tallies (blocks never decoded,
    /// candidates never exactly scored, scoring passes cut short).
    pub pruning: PruneStats,
    /// Real-time write-path counters (all zero until
    /// [`ViewSearchEngine::enable_writes`]).
    pub writes: WriteStats,
    /// Result- and probe-cache counters (see [`crate::cache`]).
    pub cache: CacheStats,
}

/// Write-path counters (see [`EngineStats::writes`]): engine-lifetime
/// tallies plus the memtable-entries gauge, shared across engine clones
/// and source swaps like the pruning tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Whether the write path is on.
    pub enabled: bool,
    /// Append batches logged to the WAL.
    pub wal_appends: u64,
    /// Framed bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Documents currently buffered in the memtable (gauge).
    pub memtable_entries: u64,
    /// Memtable seals — each left one ordinary segment in the set.
    pub flushes: u64,
    /// Background/manual compaction rounds that merged at least one
    /// tier.
    pub compactions: u64,
    /// WAL records recovered at [`ViewSearchEngine::enable_writes`].
    pub replay_records: u64,
    /// Checkpoints taken ([`ViewSearchEngine::checkpoint`]): bundle +
    /// store persisted, WAL truncated to empty.
    pub checkpoints: u64,
}

/// What one [`ViewSearchEngine::checkpoint`] persisted and truncated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Whether a non-empty memtable was sealed first.
    pub flushed: bool,
    /// Segments persisted into the bundle.
    pub segments: usize,
    /// Appended documents newly written into the store catalog.
    pub documents_persisted: usize,
    /// WAL record bytes dropped by the truncation.
    pub wal_bytes_truncated: u64,
}

/// What [`ViewSearchEngine::enable_writes`] recovered from the WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records (append batches) replayed.
    pub records: u64,
    /// Documents across all replayed batches.
    pub documents: usize,
    /// Bytes of intact log (the tail past this, if any, was truncated).
    pub wal_bytes: u64,
    /// Human-readable description of the torn tail that was truncated,
    /// if one was found.
    pub truncated_tail: Option<String>,
}

impl EngineStats {
    /// Index entries decoded by cursor consumption, both families.
    pub fn entries_scanned(&self) -> u64 {
        self.path.entries_returned + self.inverted.postings_scanned
    }

    /// Compressed blocks skipped by cursor seeks, both families.
    pub fn blocks_skipped(&self) -> u64 {
        self.path.blocks_skipped + self.inverted.blocks_skipped
    }

    /// Compressed bytes decoded, both families.
    pub fn bytes_decoded(&self) -> u64 {
        self.path.bytes_decoded + self.inverted.bytes_decoded
    }

    /// Combined footprint of both index families.
    pub fn footprint(&self) -> Footprint {
        self.path_footprint + self.inverted_footprint
    }
}

/// What one [`ViewSearchEngine::ingest`] produced.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// The freshly built segment.
    pub segment: SegmentInfo,
    /// Names of the ingested documents, in batch order.
    pub documents: Vec<String>,
}

/// What one [`ViewSearchEngine::compact`] round did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Input segments consumed by merges this round.
    pub merged_segments: usize,
    /// Merge groups executed (0 = nothing to do).
    pub merges: usize,
    /// Segment count after the round.
    pub segments: usize,
}

/// What the deprecated one-shot `search` reports (the prepared API's
/// [`crate::request::SearchResponse`] supersedes this).
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.1.0", note = "use the prepared API's `SearchResponse`")]
#[derive(Debug)]
pub struct SearchOutcome {
    /// Ranked, materialized hits.
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the (virtual) view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs (Fig. 14's bars).
    pub timings: PhaseTimings,
    /// Per-document PDT statistics: (doc name, sweep stats, PDT bytes).
    pub pdt_stats: Vec<(String, crate::generate::GenerateStats, u64)>,
    /// Base-data subtree fetches spent on materialization.
    pub fetches: u64,
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl SearchOutcome {
    fn from_response(r: crate::request::SearchResponse) -> Self {
        SearchOutcome {
            hits: r.hits,
            view_size: r.view_size,
            matching: r.matching,
            idf: r.idf,
            timings: r.timings.unwrap_or_default(),
            pdt_stats: r.pdt_stats,
            fetches: r.fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::KeywordMode;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
               <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
               <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
             </books>",
        )
        .unwrap();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>111</isbn><content>all about XML search engines</content></review>\
               <review><isbn>111</isbn><content>easy to read</content></review>\
               <review><isbn>222</isbn><content>thorough search coverage</content></review>\
               <review><isbn>333</isbn><content>XML search classics</content></review>\
             </reviews>",
        )
        .unwrap();
        c
    }

    const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
         where $book/year > 1995 \
         return <bookrevs> \
           { <book> {$book/title} </book> } \
           { for $rev in fn:doc(reviews.xml)/reviews//review \
             where $rev/isbn = $book/isbn \
             return $rev/content } \
         </bookrevs>";

    #[test]
    fn end_to_end_conjunctive_search_on_the_running_example() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        // View has two elements (books 111 and 222; book 333 fails year).
        assert_eq!(out.view_size, 2);
        // Only book 111's bookrevs contains both xml and search.
        assert_eq!(out.matching, 1);
        assert_eq!(out.hits.len(), 1);
        let hit = &out.hits[0];
        assert!(hit.xml.contains("<title>XML Web Services</title>"), "{}", hit.xml);
        assert!(hit.xml.contains("all about XML search engines"), "{}", hit.xml);
        assert!(hit.xml.starts_with("<bookrevs>"), "{}", hit.xml);
        // tf: xml appears in title (1) + review1 (1) + nothing else = 2;
        // search appears once in review1.
        assert_eq!(hit.tf, vec![2, 1]);
    }

    #[test]
    fn prepared_view_outlives_the_engine_binding() {
        // The whole point of the owned API: prepared state keeps the
        // engine alive, not the other way round.
        let view = {
            let engine = ViewSearchEngine::new(corpus());
            engine.prepare(VIEW).unwrap()
        };
        let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        assert_eq!(out.matching, 1);
    }

    #[test]
    fn disjunctive_search_matches_any_keyword() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let out = view
            .search(&SearchRequest::new(["intelligence", "xml"]).mode(KeywordMode::Disjunctive))
            .unwrap();
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn base_data_is_fetched_only_for_top_k() {
        let c = Arc::new(corpus());
        let engine = ViewSearchEngine::new(Arc::clone(&c));
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).top_k(1)).unwrap();
        assert_eq!(out.hits.len(), 1);
        // Matching elements: both bookrevs contain "search"; but only the
        // top-1 result's content nodes were fetched from storage.
        assert_eq!(out.matching, 2);
        assert_eq!(c.fetch_count(), out.fetches);
        assert!(out.fetches <= 3, "fetched {} subtrees", out.fetches);
    }

    #[test]
    fn skipping_materialization_touches_no_base_data() {
        let c = Arc::new(corpus());
        let engine = ViewSearchEngine::new(Arc::clone(&c));
        let view = engine.prepare(VIEW).unwrap();
        c.reset_fetch_count();
        let out = view.search(&SearchRequest::new(["search"]).materialize(false)).unwrap();
        assert_eq!(out.fetches, 0);
        assert_eq!(c.fetch_count(), 0);
        assert!(!out.hits.is_empty());
        for hit in &out.hits {
            assert!(hit.xml.is_empty());
            assert!(hit.byte_len > 0, "stats still come from the PDT annotations");
        }
    }

    #[test]
    fn timing_collection_can_be_disabled() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let with = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(with.timings.is_some());
        let without = view.search(&SearchRequest::new(["xml"]).collect_timings(false)).unwrap();
        assert!(without.timings.is_none());
    }

    #[test]
    fn byte_lengths_match_materialized_output() {
        let engine = ViewSearchEngine::new(corpus());
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        for hit in &out.hits {
            assert_eq!(hit.byte_len, hit.xml.len() as u64, "hit: {}", hit.xml);
        }
    }

    #[test]
    fn unknown_documents_are_reported_at_prepare_time() {
        let engine = ViewSearchEngine::new(corpus());
        let e = engine.prepare("for $x in fn:doc(zzz.xml)/a return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)), "{e}");
    }

    #[test]
    fn empty_keyword_requests_are_rejected_up_front() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let no_keywords: [&str; 0] = [];
        let e = view.search(&SearchRequest::new(no_keywords)).unwrap_err();
        assert!(matches!(e, EngineError::EmptyQuery), "{e}");
        // Whitespace-only keywords are just as empty.
        let e = view.search(&SearchRequest::new(["", "  ", "\t"])).unwrap_err();
        assert!(matches!(e, EngineError::EmptyQuery), "{e}");
        // One real keyword among empties is fine.
        assert!(view.search(&SearchRequest::new(["", "xml"])).is_ok());
    }

    #[test]
    fn pdt_stats_are_reported_per_document() {
        let engine = ViewSearchEngine::new(corpus());
        let out = engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["xml"])).unwrap();
        assert_eq!(out.pdt_stats.len(), 2);
        assert_eq!(out.pdt_stats[0].0, "books.xml");
        assert!(out.pdt_stats[0].1.emitted > 0);
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn legacy_one_shot_search_matches_prepared_search() {
        let engine = ViewSearchEngine::new(corpus());
        let legacy = engine.search(VIEW, &["XML", "search"], 10, KeywordMode::Conjunctive).unwrap();
        let prepared =
            engine.prepare(VIEW).unwrap().search(&SearchRequest::new(["XML", "search"])).unwrap();
        assert_eq!(legacy.view_size, prepared.view_size);
        assert_eq!(legacy.matching, prepared.matching);
        assert_eq!(legacy.idf, prepared.idf);
        assert_eq!(legacy.hits.len(), prepared.hits.len());
        for (a, b) in legacy.hits.iter().zip(&prepared.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.tf, b.tf);
            assert_eq!(a.xml, b.xml);
        }
    }

    #[test]
    fn engine_and_prepared_view_are_send_sync_and_static() {
        fn assert_service_grade<T: Send + Sync + 'static>() {}
        assert_service_grade::<ViewSearchEngine<Corpus>>();
        assert_service_grade::<ViewSearchEngine<vxv_xml::DiskStore>>();
        assert_service_grade::<PreparedView<Corpus>>();
        assert_service_grade::<PreparedView<vxv_xml::DiskStore>>();
        assert_service_grade::<SearchRequest>();
        assert_service_grade::<crate::request::SearchResponse>();
        assert_service_grade::<crate::CancelToken>();
    }

    #[test]
    fn concurrent_searches_share_one_prepared_view() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let baseline = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let view = &view;
                    s.spawn(move || view.search(&SearchRequest::new(["XML", "search"])).unwrap())
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert_eq!(out.matching, baseline.matching);
                assert_eq!(out.hits.len(), baseline.hits.len());
                for (a, b) in out.hits.iter().zip(&baseline.hits) {
                    assert_eq!(a.score, b.score);
                    assert_eq!(a.xml, b.xml);
                }
            }
        });
    }

    #[test]
    fn prepared_views_move_across_threads() {
        // Owned prepared state: prepare here, search over there.
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(VIEW).unwrap();
        let handle = std::thread::spawn(move || {
            view.search(&SearchRequest::new(["XML", "search"])).unwrap().matching
        });
        assert_eq!(handle.join().unwrap(), 1);
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml basics</title><year>1999</year></book></books>",
        )
        .unwrap();
        c
    }

    const BOOKS_VIEW: &str = "for $b in fn:doc(books.xml)/books//book \
         where $b/year > 1990 return <h> { $b/title } </h>";

    #[test]
    fn empty_bundles_cold_open_as_one_empty_segment() {
        // A zero-segment bundle is constructible through the public API;
        // the engine must normalize it instead of panicking later.
        let dir = std::env::temp_dir().join(format!("vxv-empty-bundle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = vxv_xml::DiskStore::persist(&Corpus::new(), &dir).unwrap();
        let engine =
            ViewSearchEngine::open(store, vxv_index::IndexBundle::from_segments(Vec::new()));
        assert_eq!(engine.segments().len(), 1);
        assert_eq!(engine.stats().documents, 0);
        assert_eq!(engine.path_index().stats().probes, 0);
        assert_eq!(engine.inverted_index().stats().lookups, 0);
        assert!(engine.ingest([("a.xml", "<r><e>works</e></r>")]).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_engines_hold_one_segment() {
        let engine = ViewSearchEngine::new(corpus());
        let segs = engine.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].generation, 0);
        assert_eq!(segs[0].documents, 1);
        assert!(segs[0].footprint.compressed_bytes > 0);
        let stats = engine.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.documents, 1);
        assert!(stats.footprint().compressed_bytes > 0);
    }

    #[test]
    fn ingest_makes_new_documents_searchable_without_touching_old_segments() {
        let engine = ViewSearchEngine::new(corpus());
        let report = engine
            .ingest([(
                "more.xml",
                "<books><book><isbn>2</isbn><title>xml advanced</title><year>2005</year></book></books>",
            )])
            .unwrap();
        assert_eq!(report.documents, vec!["more.xml".to_string()]);
        assert_eq!(report.segment.documents, 1);
        assert_eq!(engine.segments().len(), 2);

        // The new document answers searches, materialized from its own
        // segment corpus (not the engine's base corpus).
        let out = engine
            .search_once(
                "for $b in fn:doc(more.xml)/books//book return <h> { $b/title } </h>",
                &SearchRequest::new(["advanced"]),
            )
            .unwrap();
        assert_eq!(out.hits.len(), 1);
        assert!(out.hits[0].xml.contains("xml advanced"), "{}", out.hits[0].xml);
        // The old document still answers too.
        let out = engine.search_once(BOOKS_VIEW, &SearchRequest::new(["basics"])).unwrap();
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn ingested_ordinals_never_collide() {
        let engine = ViewSearchEngine::new(corpus());
        engine.ingest([("a.xml", "<r><e>one</e></r>")]).unwrap();
        engine.ingest([("b.xml", "<r><e>two</e></r>")]).unwrap();
        let metas: Vec<DocMeta> =
            ["books.xml", "a.xml", "b.xml"].iter().map(|n| engine.doc_meta(n).unwrap()).collect();
        let mut ordinals: Vec<u32> = metas.iter().map(|m| m.root_ordinal).collect();
        ordinals.sort();
        ordinals.dedup();
        assert_eq!(ordinals.len(), 3, "ordinals must be disjoint: {metas:?}");
        // Each doc knows its owning segment.
        assert_ne!(metas[0].segment, metas[1].segment);
        assert_ne!(metas[1].segment, metas[2].segment);
    }

    #[test]
    fn ingest_rejects_duplicates_and_bad_xml_atomically() {
        let engine = ViewSearchEngine::new(corpus());
        let e = engine.ingest([("books.xml", "<r/>")]).unwrap_err();
        assert!(matches!(e, EngineError::Ingest(_)), "{e}");
        let e = engine
            .ingest([("ok.xml", "<r><e>fine</e></r>"), ("bad.xml", "<r><open>")])
            .unwrap_err();
        assert!(matches!(e, EngineError::Ingest(_)), "{e}");
        // The failed batch changed nothing — not even its valid half.
        assert_eq!(engine.segments().len(), 1);
        assert!(engine.doc_meta("ok.xml").is_none());
        let empty: [(&str, &str); 0] = [];
        assert!(matches!(engine.ingest(empty), Err(EngineError::Ingest(_))));
    }

    #[test]
    fn prepared_views_keep_their_snapshot_across_ingest() {
        let engine = ViewSearchEngine::new(corpus());
        let view = engine.prepare(BOOKS_VIEW).unwrap();
        let before = view.search(&SearchRequest::new(["xml"])).unwrap();
        engine
            .ingest([("late.xml", "<books><book><title>late xml</title></book></books>")])
            .unwrap();
        // The old prepared view answers identically from its snapshot…
        let after = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert_eq!(before.view_size, after.view_size);
        assert_eq!(before.hits.len(), after.hits.len());
        for (a, b) in before.hits.iter().zip(&after.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.xml, b.xml);
        }
        // …while a fresh prepare sees the new document.
        assert!(engine.doc_meta("late.xml").is_some());
    }

    #[test]
    fn compaction_merges_size_tiers_and_preserves_results() {
        let engine = ViewSearchEngine::new(corpus());
        for i in 0..3 {
            engine
                .ingest([(
                    format!("doc{i}.xml"),
                    format!(
                        "<books><book><title>xml tiny {i}</title><year>2000</year></book></books>"
                    ),
                )])
                .unwrap();
        }
        assert_eq!(engine.segments().len(), 4);
        let view = engine.prepare(BOOKS_VIEW).unwrap();
        let before = view.search(&SearchRequest::new(["xml"])).unwrap();

        let mut rounds = 0;
        while engine.compact().merges > 0 {
            rounds += 1;
            assert!(rounds < 16, "compaction must settle");
        }
        assert!(rounds >= 1, "similar-size segments must have merged");
        assert!(engine.segments().len() < 4);
        let merged = engine.segments();
        assert!(merged.iter().any(|s| s.generation >= 1), "{merged:?}");

        // Old view (pre-compaction snapshot) still answers identically.
        let after = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert_eq!(before.hits.len(), after.hits.len());
        // A fresh prepare over the compacted set answers identically too,
        // including for the ingested docs (side corpora merged along).
        let fresh = engine
            .search_once(
                "for $b in fn:doc(doc1.xml)/books//book return <h> { $b/title } </h>",
                &SearchRequest::new(["tiny"]),
            )
            .unwrap();
        assert_eq!(fresh.hits.len(), 1);
        assert!(fresh.hits[0].xml.contains("xml tiny 1"));
    }

    #[test]
    fn ingest_is_visible_across_engine_clones_and_source_swaps() {
        let c = Arc::new(corpus());
        let engine = ViewSearchEngine::new(Arc::clone(&c));
        let clone = engine.clone();
        let swapped: ViewSearchEngine<Corpus> = engine.with_source(Arc::clone(&c));
        engine.ingest([("x.xml", "<r><e>shared state</e></r>")]).unwrap();
        assert!(clone.doc_meta("x.xml").is_some());
        assert!(swapped.doc_meta("x.xml").is_some());
        let out = swapped
            .search_once("for $e in fn:doc(x.xml)/r/e return $e", &SearchRequest::new(["shared"]))
            .unwrap();
        assert_eq!(out.hits.len(), 1);
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn plan_reports_probes_and_list_lengths() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml xml</title><year>1999</year></book>\
             <book><isbn>2</isbn><title>other</title><year>1990</year></book></books>",
        )
        .unwrap();
        let engine = ViewSearchEngine::new(c);
        let view = engine
            .prepare(
                "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 \
                 return <h> { $b/title } </h>",
            )
            .unwrap();
        let out = view.plan(&["XML", "zzz"]);
        assert_eq!(out.qpts.len(), 1);
        let r = &out.qpts[0];
        assert_eq!(r.doc_name, "books.xml");
        assert!(r.rendered.contains("//book"), "{}", r.rendered);
        // title and year probed; year carries a pushed predicate.
        assert_eq!(r.probes.len(), 2, "{:?}", r.probes);
        let year = r.probes.iter().find(|p| p.pattern.ends_with("/year")).unwrap();
        assert_eq!(year.predicates, 1);
        assert_eq!(year.entries, 1, "only the 1999 year passes");
        // Keyword list lengths are normalized and exact.
        assert_eq!(out.keyword_list_lengths, vec![("xml".to_string(), 1), ("zzz".to_string(), 0)]);
    }

    #[test]
    fn plan_rides_along_with_a_search_when_requested() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><e><v>xml data</v></e></r>").unwrap();
        let engine = ViewSearchEngine::new(c);
        let view = engine.prepare("for $e in fn:doc(d.xml)/r/e return $e/v").unwrap();
        let out = view.search(&SearchRequest::new(["xml"]).with_plan(true)).unwrap();
        let plan = out.plan.expect("plan requested");
        assert_eq!(plan.qpts.len(), 1);
        let out2 = view.search(&SearchRequest::new(["xml"])).unwrap();
        assert!(out2.plan.is_none());
    }

    #[test]
    fn prepare_rejects_unknown_documents() {
        let engine = ViewSearchEngine::new(Corpus::new());
        let e = engine.prepare("for $x in fn:doc(a.xml)/r return $x").unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)));
    }

    #[test]
    fn keyword_list_lengths_sum_across_segments() {
        let mut c = Corpus::new();
        c.add_parsed("a.xml", "<r><e>xml xml here</e></r>").unwrap();
        let engine = ViewSearchEngine::new(c);
        engine.ingest([("b.xml", "<r><e>xml there</e></r>")]).unwrap();
        let view = engine.prepare("for $e in fn:doc(a.xml)/r/e return $e").unwrap();
        let plan = view.plan(&["xml"]);
        // One posting per element directly containing the keyword, across
        // both segments (1 in a.xml + 1 in b.xml).
        assert_eq!(plan.keyword_list_lengths, vec![("xml".to_string(), 2)]);
    }
}
