//! The end-to-end engine: the modified query execution path of Fig. 3.
//!
//! `parse → GenerateQPT → GeneratePDT (index-only) → regular evaluator
//! over PDTs → score → materialize top-k from document storage`.
//!
//! Base documents are touched exactly once per returned hit — the final
//! materialization — which the [`vxv_xml::Corpus`] fetch counter lets
//! tests and experiments verify.

use crate::generate::{generate_pdt, DocMeta, GenerateStats};
use crate::pdt::Pdt;
use crate::qpt_gen::{generate_qpts, QptGenError};
use crate::scoring::{score_and_rank, ElementStats, KeywordMode, ScoringOutcome};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};
use vxv_index::tokenize::normalize_keyword;
use vxv_index::{InvertedIndex, PathIndex};
use vxv_xml::{serialize_subtree, Corpus};
use vxv_xquery::{
    item_byte_len_with, item_sum_with, parse_query, serialize_item_with, EvalError, Evaluator,
    MapSource, Query, QueryParseError,
};

/// Anything that can go wrong while answering a keyword-search-over-view
/// query.
#[derive(Debug)]
pub enum EngineError {
    /// The view text failed to parse.
    Parse(QueryParseError),
    /// The view is outside the supported fragment.
    QptGen(QptGenError),
    /// The view failed at evaluation time.
    Eval(EvalError),
    /// A `fn:doc(...)` reference names no loaded document.
    UnknownDocument(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::QptGen(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryParseError> for EngineError {
    fn from(e: QueryParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<QptGenError> for EngineError {
    fn from(e: QptGenError) -> Self {
        EngineError::QptGen(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// One ranked, fully materialized search hit.
#[derive(Clone, Debug)]
pub struct SearchHit {
    /// 1-based rank.
    pub rank: usize,
    /// The normalized TF-IDF score.
    pub score: f64,
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length of the view element.
    pub byte_len: u64,
    /// The materialized XML of the view element.
    pub xml: String,
}

/// Wall-clock cost of each pipeline phase (Fig. 14's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Parse + QPT generation + PDT generation (the paper's "PDT" bar).
    pub pdt: Duration,
    /// View evaluation over the PDTs (the "Evaluator" bar).
    pub evaluator: Duration,
    /// Scoring + top-k materialization (the "Post-processing" bar).
    pub post: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.pdt + self.evaluator + self.post
    }
}

/// Everything a search run reports.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Ranked, materialized hits.
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the (virtual) view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs (Fig. 14's bars).
    pub timings: PhaseTimings,
    /// Per-document PDT statistics: (doc name, sweep stats, PDT bytes).
    pub pdt_stats: Vec<(String, GenerateStats, u64)>,
    /// Base-data subtree fetches spent on materialization.
    pub fetches: u64,
}

/// The keyword-search-over-virtual-views engine.
pub struct ViewSearchEngine<'c> {
    corpus: &'c Corpus,
    path_index: PathIndex,
    inverted: InvertedIndex,
    /// When set, top-k materialization reads from disk-backed document
    /// storage instead of the in-memory corpus (the experiment setting).
    store: Option<&'c vxv_xml::DiskStore>,
}

impl<'c> ViewSearchEngine<'c> {
    /// Build indices over `corpus` and wrap them in an engine.
    pub fn new(corpus: &'c Corpus) -> Self {
        ViewSearchEngine {
            corpus,
            path_index: PathIndex::build(corpus),
            inverted: InvertedIndex::build(corpus),
            store: None,
        }
    }

    /// Reuse pre-built indices.
    pub fn with_indices(corpus: &'c Corpus, path_index: PathIndex, inverted: InvertedIndex) -> Self {
        ViewSearchEngine { corpus, path_index, inverted, store: None }
    }

    /// Route top-k materialization through disk-backed document storage.
    pub fn with_store(mut self, store: &'c vxv_xml::DiskStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The engine's path index (for experiments reporting probe work).
    pub fn path_index(&self) -> &PathIndex {
        &self.path_index
    }

    /// The engine's inverted index.
    pub fn inverted_index(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Run a ranked keyword search over the virtual view defined by the
    /// XQuery text `view`.
    pub fn search(
        &self,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let query = parse_query(view)?;
        self.search_query(&query, keywords, k, mode)
    }

    /// As [`Self::search`], over a pre-parsed view.
    pub fn search_query(
        &self,
        query: &Query,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<SearchOutcome, EngineError> {
        let keywords: Vec<String> = keywords.iter().map(|s| normalize_keyword(s)).collect();

        // Phase 1+2: QPTs, then index-only PDTs.
        let t0 = Instant::now();
        let qpts = generate_qpts(query)?;
        let mut pdts: Vec<Pdt> = Vec::with_capacity(qpts.len());
        let mut pdt_stats = Vec::with_capacity(qpts.len());
        for qpt in &qpts {
            let doc = self
                .corpus
                .doc(&qpt.doc_name)
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let root = doc
                .root()
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let meta = DocMeta {
                name: qpt.doc_name.clone(),
                root_tag: doc.node_tag(root).to_string(),
                root_ordinal: doc.node(root).dewey.components()[0],
            };
            let (pdt, stats) = generate_pdt(qpt, &self.path_index, &self.inverted, &keywords, &meta);
            pdt_stats.push((qpt.doc_name.clone(), stats, pdt.byte_size()));
            pdts.push(pdt);
        }
        let t_pdt = t0.elapsed();

        // Phase 3a: the regular evaluator, redirected to the PDTs.
        let t1 = Instant::now();
        let source = MapSource::new(pdts.iter().map(|p| (p.doc_name.clone(), &p.doc)));
        let evaluator = Evaluator::new(&source, query);
        let results = evaluator.eval_query(query)?;
        let t_eval = t1.elapsed();

        // Phase 3b: score from PDT annotations, rank, materialize top-k.
        let t2 = Instant::now();
        let by_name: HashMap<&str, &Pdt> = pdts.iter().map(|p| (p.doc_name.as_str(), p)).collect();
        let stats: Vec<ElementStats> = results
            .iter()
            .map(|item| {
                let tf: Vec<u32> = (0..keywords.len())
                    .map(|ki| {
                        item_sum_with(item, &mut |doc, n| {
                            by_name
                                .get(doc.name())
                                .map(|p| p.tf(&doc.node(n).dewey, ki) as u64)
                                .unwrap_or(0)
                        }) as u32
                    })
                    .collect();
                let byte_len = item_byte_len_with(item, &mut |doc, n| {
                    by_name
                        .get(doc.name())
                        .map(|p| p.byte_len(&doc.node(n).dewey) as u64)
                        .unwrap_or(0)
                });
                ElementStats { tf, byte_len }
            })
            .collect();
        let ScoringOutcome { top, matching, idf, view_size } = score_and_rank(&stats, mode, k);

        let fetches_before = match self.store {
            Some(store) => store.stats().range_reads,
            None => self.corpus.fetch_count(),
        };
        let hits: Vec<SearchHit> = top
            .into_iter()
            .enumerate()
            .map(|(i, scored)| {
                let xml = serialize_item_with(&results[scored.index], &mut |doc, n, out| {
                    let dewey = &doc.node(n).dewey;
                    match self.store {
                        Some(store) => {
                            if let Ok(sub) = store.read_subtree_xml(dewey) {
                                out.push_str(&sub);
                            }
                        }
                        None => {
                            if let Some((base_doc, base_node)) = self.corpus.fetch_subtree(dewey) {
                                out.push_str(&serialize_subtree(base_doc, base_node));
                            }
                        }
                    }
                });
                SearchHit {
                    rank: i + 1,
                    score: scored.score,
                    tf: scored.tf,
                    byte_len: scored.byte_len,
                    xml,
                }
            })
            .collect();
        let fetches = match self.store {
            Some(store) => store.stats().range_reads - fetches_before,
            None => self.corpus.fetch_count() - fetches_before,
        };
        let t_post = t2.elapsed();

        Ok(SearchOutcome {
            hits,
            view_size,
            matching,
            idf,
            timings: PhaseTimings { pdt: t_pdt, evaluator: t_eval, post: t_post },
            pdt_stats,
            fetches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
               <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
               <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
             </books>",
        )
        .unwrap();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>111</isbn><content>all about XML search engines</content></review>\
               <review><isbn>111</isbn><content>easy to read</content></review>\
               <review><isbn>222</isbn><content>thorough search coverage</content></review>\
               <review><isbn>333</isbn><content>XML search classics</content></review>\
             </reviews>",
        )
        .unwrap();
        c
    }

    const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
         where $book/year > 1995 \
         return <bookrevs> \
           { <book> {$book/title} </book> } \
           { for $rev in fn:doc(reviews.xml)/reviews//review \
             where $rev/isbn = $book/isbn \
             return $rev/content } \
         </bookrevs>";

    #[test]
    fn end_to_end_conjunctive_search_on_the_running_example() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.search(VIEW, &["XML", "search"], 10, KeywordMode::Conjunctive).unwrap();
        // View has two elements (books 111 and 222; book 333 fails year).
        assert_eq!(out.view_size, 2);
        // Only book 111's bookrevs contains both xml and search.
        assert_eq!(out.matching, 1);
        assert_eq!(out.hits.len(), 1);
        let hit = &out.hits[0];
        assert!(hit.xml.contains("<title>XML Web Services</title>"), "{}", hit.xml);
        assert!(hit.xml.contains("all about XML search engines"), "{}", hit.xml);
        assert!(hit.xml.starts_with("<bookrevs>"), "{}", hit.xml);
        // tf: xml appears in title (1) + review1 (1) + nothing else = 2;
        // search appears once in review1.
        assert_eq!(hit.tf, vec![2, 1]);
    }

    #[test]
    fn disjunctive_search_matches_any_keyword() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.search(VIEW, &["intelligence", "xml"], 10, KeywordMode::Disjunctive).unwrap();
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn base_data_is_fetched_only_for_top_k() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        c.reset_fetch_count();
        let out = engine.search(VIEW, &["search"], 1, KeywordMode::Conjunctive).unwrap();
        assert_eq!(out.hits.len(), 1);
        // Matching elements: both bookrevs contain "search"; but only the
        // top-1 result's content nodes were fetched from storage.
        assert_eq!(out.matching, 2);
        assert_eq!(c.fetch_count(), out.fetches);
        assert!(out.fetches <= 3, "fetched {} subtrees", out.fetches);
    }

    #[test]
    fn byte_lengths_match_materialized_output() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.search(VIEW, &["xml"], 10, KeywordMode::Conjunctive).unwrap();
        for hit in &out.hits {
            assert_eq!(hit.byte_len, hit.xml.len() as u64, "hit: {}", hit.xml);
        }
    }

    #[test]
    fn unknown_documents_are_reported() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let e = engine
            .search("for $x in fn:doc(zzz.xml)/a return $x", &["k"], 5, KeywordMode::Conjunctive)
            .unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)), "{e}");
    }

    #[test]
    fn pdt_stats_are_reported_per_document() {
        let c = corpus();
        let engine = ViewSearchEngine::new(&c);
        let out = engine.search(VIEW, &["xml"], 5, KeywordMode::Conjunctive).unwrap();
        assert_eq!(out.pdt_stats.len(), 2);
        assert_eq!(out.pdt_stats[0].0, "books.xml");
        assert!(out.pdt_stats[0].1.emitted > 0);
    }
}

/// One probe the PDT phase would issue for a QPT node.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The root-to-node path pattern sent to the path index.
    pub pattern: String,
    /// Number of predicates pushed into the probe.
    pub predicates: usize,
    /// Full data paths the pattern expands to in the dictionary.
    pub expanded_paths: usize,
    /// Entries the probe returns (relevant-list length).
    pub entries: usize,
}

/// Query-plan introspection for one QPT.
#[derive(Clone, Debug)]
pub struct QptReport {
    /// The document this QPT projects.
    pub doc_name: String,
    /// Pretty-printed QPT (axes, edges, annotations, predicates).
    pub rendered: String,
    /// Pattern nodes in the QPT.
    pub nodes: usize,
    /// The probes `PrepareLists` issues — proportional to the query.
    pub probes: Vec<ProbeReport>,
}

/// Output of [`ViewSearchEngine::explain`].
#[derive(Clone, Debug)]
pub struct ExplainOutput {
    /// One report per base document the view references.
    pub qpts: Vec<QptReport>,
    /// Per-keyword inverted-list lengths (the paper's selectivity knob).
    pub keyword_list_lengths: Vec<(String, usize)>,
}

impl<'c> ViewSearchEngine<'c> {
    /// Explain how a keyword search over `view` would be answered:
    /// the QPTs, the index probes with their list sizes, and the
    /// inverted-list lengths of the keywords — without running the query.
    pub fn explain(&self, view: &str, keywords: &[&str]) -> Result<ExplainOutput, EngineError> {
        let query = parse_query(view)?;
        let qpts = generate_qpts(&query)?;
        let mut reports = Vec::with_capacity(qpts.len());
        for qpt in &qpts {
            let doc = self
                .corpus
                .doc(&qpt.doc_name)
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let ordinal = doc
                .root()
                .map(|r| doc.node(r).dewey.components()[0])
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let lists = crate::prepare::prepare_lists(qpt, &self.path_index, ordinal);
            let probes = lists
                .lists
                .iter()
                .map(|(q, entries)| {
                    let pattern = qpt.pattern(*q);
                    ProbeReport {
                        expanded_paths: self.path_index.expand_pattern(&pattern).len(),
                        pattern: pattern.to_string(),
                        predicates: qpt.node(*q).preds.len(),
                        entries: entries.len(),
                    }
                })
                .collect();
            reports.push(QptReport {
                doc_name: qpt.doc_name.clone(),
                rendered: qpt.to_string(),
                nodes: qpt.len(),
                probes,
            });
        }
        let keyword_list_lengths = keywords
            .iter()
            .map(|k| {
                let norm = normalize_keyword(k);
                let len = self.inverted.list_len(&norm);
                (norm, len)
            })
            .collect();
        Ok(ExplainOutput { qpts: reports, keyword_list_lengths })
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_reports_probes_and_list_lengths() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml xml</title><year>1999</year></book>\
             <book><isbn>2</isbn><title>other</title><year>1990</year></book></books>",
        )
        .unwrap();
        let engine = ViewSearchEngine::new(&c);
        let out = engine
            .explain(
                "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 \
                 return <h> { $b/title } </h>",
                &["XML", "zzz"],
            )
            .unwrap();
        assert_eq!(out.qpts.len(), 1);
        let r = &out.qpts[0];
        assert_eq!(r.doc_name, "books.xml");
        assert!(r.rendered.contains("//book"), "{}", r.rendered);
        // title and year probed; year carries a pushed predicate.
        assert_eq!(r.probes.len(), 2, "{:?}", r.probes);
        let year = r.probes.iter().find(|p| p.pattern.ends_with("/year")).unwrap();
        assert_eq!(year.predicates, 1);
        assert_eq!(year.entries, 1, "only the 1999 year passes");
        // Keyword list lengths are normalized and exact.
        assert_eq!(out.keyword_list_lengths, vec![("xml".to_string(), 1), ("zzz".to_string(), 0)]);
    }

    #[test]
    fn explain_rejects_unknown_documents() {
        let c = Corpus::new();
        let engine = ViewSearchEngine::new(&c);
        let e = engine.explain("for $x in fn:doc(a.xml)/r return $x", &[]).unwrap_err();
        assert!(matches!(e, EngineError::UnknownDocument(_)));
    }
}
