//! [`PreparedView`] — a view analyzed once, searched many times.
//!
//! The paper's core claim is that per-query work should be proportional
//! to the *query*, not the data. Preparing a view takes that one step
//! further: the work proportional to the *view definition* — parsing,
//! QPT generation (`GenerateQPT`), and the `PrepareLists` probe phase
//! with its pattern expansion against the path dictionary — happens once,
//! at [`crate::engine::ViewSearchEngine::prepare`] time. Each subsequent
//! [`PreparedView::search`] pays only for what depends on the keywords:
//! the per-segment PDT merges, view evaluation over the PDTs, scoring,
//! and top-k materialization.
//!
//! A `PreparedView` **owns** an engine handle *and a frozen segment
//! snapshot*: each QPT is planned against the segment that owns its
//! projected document, and the snapshot's `Arc`s keep those segments
//! alive even if the engine later ingests or compacts — searches are
//! never torn by concurrent index evolution (re-prepare to see new
//! documents). Views over several documents fan their per-segment PDT
//! generation across a scoped worker pool; the cross-segment score
//! merge is byte-identical to the single-segment pipeline because PDTs
//! are per-document and idf is computed over the whole view sequence
//! either way.
//!
//! Two execution shapes share one pipeline:
//!
//! * [`PreparedView::search`] — run to completion, return a
//!   [`SearchResponse`];
//! * [`PreparedView::hits`] — rank, then return a pull-based
//!   [`HitStream`] that materializes each hit on demand.

use crate::control::{ExecControl, Interrupt};
use crate::engine::{EngineError, EngineSegment, SegmentSet, ViewSearchEngine};
use crate::generate::{generate_pdt_from_lists_ctl, DocMeta, GenerateStats};
use crate::pdt::Pdt;
use crate::prepare::{prepare_lists, PreparedLists};
use crate::qpt::Qpt;
use crate::qpt_gen::generate_qpts;
use crate::request::{PhaseTimings, SearchHit, SearchRequest, SearchResponse};
use crate::scoring::{score_and_rank, ElementStats, ScoringOutcome};
use crate::stream::{materialize_segments, FetchRouter, HitStream, PlannedHit, Segment};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vxv_index::tokenize::normalize_keyword;
use vxv_xml::DocumentSource;
use vxv_xquery::{
    item_byte_len_with, item_sum_with, serialize_item_with, Evaluator, MapSource, Query,
};

/// One QPT with everything its searches reuse: catalog metadata, the
/// owning segment (from the prepared snapshot), and the cursor plan over
/// the segment's selected index rows (keyword-independent by
/// construction; entries stay compressed in the index until a search's
/// merge streams them).
pub(crate) struct QptPlan {
    pub(crate) qpt: Qpt,
    pub(crate) meta: DocMeta,
    pub(crate) segment: Arc<EngineSegment>,
    pub(crate) lists: PreparedLists,
}

/// A view with its analysis done: parse + QPT generation + index-probe
/// planning against a frozen segment snapshot, ready to answer
/// [`SearchRequest`]s. Owns its engine handle — no borrows, no
/// lifetimes; see the module docs.
pub struct PreparedView<S: DocumentSource> {
    engine: ViewSearchEngine<S>,
    query: Query,
    plans: Vec<QptPlan>,
    /// The segment set this view was prepared against (kept alive for
    /// snapshot isolation across ingests/compactions).
    snapshot: Arc<SegmentSet>,
    router: FetchRouter<S>,
}

impl<S: DocumentSource> std::fmt::Debug for PreparedView<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedView")
            .field("qpts", &self.plans.len())
            .field("probes", &self.probe_count())
            .field("segments", &self.snapshot.len())
            .field("source", &self.engine.source().kind())
            .finish_non_exhaustive()
    }
}

/// Everything the ranking phases produce, with per-hit materialization
/// kept symbolic (fully owned — no borrows into the PDTs).
struct RankedHits {
    planned: Vec<PlannedHit>,
    view_size: usize,
    matching: usize,
    idf: Vec<f64>,
    pdt_stats: Vec<(String, GenerateStats, u64)>,
    t_pdt: Duration,
    t_eval: Duration,
    t_score: Duration,
    plan: Option<QueryPlan>,
}

impl<S: DocumentSource> PreparedView<S> {
    /// Analyze `query` against `engine`'s current segment snapshot.
    /// Called via [`ViewSearchEngine::prepare`] /
    /// [`ViewSearchEngine::prepare_query`].
    pub(crate) fn build(engine: &ViewSearchEngine<S>, query: Query) -> Result<Self, EngineError> {
        let snapshot = engine.snapshot();
        let qpts = generate_qpts(&query)?;
        let mut plans = Vec::with_capacity(qpts.len());
        for qpt in qpts {
            // Locate the segment owning the projected document; root tag
            // and ordinal are catalog metadata — present whether the
            // engine was built from a corpus or cold-opened from disk.
            let (segment, meta) = snapshot
                .iter()
                .find_map(|seg| seg.catalog.get(&qpt.doc_name).map(|m| (seg, m.clone())))
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let lists = prepare_lists(&qpt, segment.index.path_index(), meta.root_ordinal);
            plans.push(QptPlan { qpt, meta, segment: Arc::clone(segment), lists });
        }
        let router = FetchRouter::new(engine.source_arc(), &snapshot);
        Ok(PreparedView { engine: engine.clone(), query, plans, snapshot, router })
    }

    /// The engine this view was prepared against (a shared handle).
    pub fn engine(&self) -> &ViewSearchEngine<S> {
        &self.engine
    }

    /// The parsed view definition.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of base documents the view projects (= number of QPTs).
    pub fn qpt_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of segments in the snapshot this view was prepared
    /// against.
    pub fn segment_count(&self) -> usize {
        self.snapshot.len()
    }

    /// Logical index probes planned at prepare time — one per probed QPT
    /// node, proportional to the query, never to the data. (A pattern
    /// that expands to several concrete data paths still counts once
    /// here; the path index's own `stats().probes` counter tracks the
    /// per-path scans.)
    pub fn probe_count(&self) -> usize {
        self.plans.iter().map(|p| p.lists.probes).sum()
    }

    /// Answer one keyword search. Only keyword-dependent work happens
    /// here; the view analysis is reused from prepare time.
    ///
    /// Requests with a [`SearchRequest::deadline`] or
    /// [`crate::CancelToken`] abort cooperatively with
    /// [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`]
    /// carrying the partial phase timings — never a panic, never a
    /// silently truncated response.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse, EngineError> {
        let ctl = ExecControl::new(request.deadline_budget(), request.cancel());
        let ranked = self.rank(request, &ctl)?;

        // Final phase: execute each hit's materialization plan.
        let t3 = Instant::now();
        // Fetches are counted locally (not by diffing the source's global
        // counter) so concurrent searches on one source each report
        // exactly their own base-data work.
        let mut fetches = 0u64;
        let mut hits: Vec<SearchHit> = Vec::with_capacity(ranked.planned.len());
        for (i, planned) in ranked.planned.into_iter().enumerate() {
            ctl.check().map_err(|int| {
                int.into_error(PhaseTimings {
                    pdt: ranked.t_pdt,
                    evaluator: ranked.t_eval,
                    post: ranked.t_score + t3.elapsed(),
                })
            })?;
            let xml = materialize_segments(&planned.segments, &self.router, &mut fetches)?;
            hits.push(SearchHit {
                rank: i + 1,
                score: planned.score,
                tf: planned.tf,
                byte_len: planned.byte_len,
                xml,
            });
        }
        let t_post = ranked.t_score + t3.elapsed();

        Ok(SearchResponse {
            hits,
            view_size: ranked.view_size,
            matching: ranked.matching,
            idf: ranked.idf,
            timings: request.collects_timings().then_some(PhaseTimings {
                pdt: ranked.t_pdt,
                evaluator: ranked.t_eval,
                post: t_post,
            }),
            pdt_stats: ranked.pdt_stats,
            fetches,
            plan: ranked.plan,
        })
    }

    /// Rank once, then pull hits incrementally: returns a [`HitStream`]
    /// whose `next()` materializes one scored hit at a time from base
    /// storage. Hits never pulled never touch base data. Collecting the
    /// stream yields hits byte-identical to [`Self::search`] on the same
    /// request; the request's deadline/cancel controls stay armed across
    /// pulls.
    pub fn hits(&self, request: &SearchRequest) -> Result<HitStream<S>, EngineError> {
        let ctl = ExecControl::new(request.deadline_budget(), request.cancel());
        let ranked = self.rank(request, &ctl)?;
        Ok(HitStream::new(
            self.router.clone(),
            ranked.planned,
            ranked.view_size,
            ranked.matching,
            ranked.idf,
            PhaseTimings { pdt: ranked.t_pdt, evaluator: ranked.t_eval, post: ranked.t_score },
            ctl,
        ))
    }

    /// Phase 1: one PDT per QPT, each merged from its owning segment's
    /// cursors. Multi-document views fan across a scoped worker pool
    /// (PDTs are independent by construction); results come back in plan
    /// order, so downstream phases are order-deterministic either way.
    fn generate_pdts(
        &self,
        keywords: &[String],
        ctl: &ExecControl,
    ) -> Result<Vec<(Pdt, GenerateStats)>, Interrupt> {
        let run = |plan: &QptPlan| {
            generate_pdt_from_lists_ctl(
                &plan.qpt,
                &plan.lists,
                plan.segment.index.inverted(),
                keywords,
                &plan.meta,
                ctl,
            )
        };
        crate::fanout::fan_out(&self.plans, run).into_iter().collect()
    }

    /// The shared ranking pipeline: per-segment PDT generation → view
    /// evaluation → scoring → top-k cut, with each winner's
    /// materialization plan kept symbolic ([`Segment`]s) instead of
    /// expanded.
    fn rank(&self, request: &SearchRequest, ctl: &ExecControl) -> Result<RankedHits, EngineError> {
        let keywords: Vec<String> =
            request.keywords().iter().map(|s| normalize_keyword(s)).collect();
        if keywords.iter().all(|k| k.trim().is_empty()) {
            return Err(EngineError::EmptyQuery);
        }

        // Phase 1: index-only PDTs from the prepared probe lists, fanned
        // across segments.
        let t0 = Instant::now();
        let pdt_timings = |t0: &Instant| PhaseTimings { pdt: t0.elapsed(), ..Default::default() };
        let generated =
            self.generate_pdts(&keywords, ctl).map_err(|int| int.into_error(pdt_timings(&t0)))?;
        let mut pdts: Vec<Pdt> = Vec::with_capacity(self.plans.len());
        let mut pdt_stats = Vec::with_capacity(self.plans.len());
        for (plan, (pdt, stats)) in self.plans.iter().zip(generated) {
            pdt_stats.push((plan.qpt.doc_name.clone(), stats, pdt.byte_size()));
            pdts.push(pdt);
        }
        let t_pdt = t0.elapsed();
        ctl.check()
            .map_err(|int| int.into_error(PhaseTimings { pdt: t_pdt, ..Default::default() }))?;

        // Phase 2: the regular evaluator, redirected to the PDTs.
        let t1 = Instant::now();
        let source = MapSource::new(pdts.iter().map(|p| (p.doc_name.clone(), &p.doc)));
        let evaluator = Evaluator::new(&source, &self.query);
        let results = evaluator.eval_query(&self.query)?;
        let t_eval = t1.elapsed();
        ctl.check().map_err(|int| {
            int.into_error(PhaseTimings { pdt: t_pdt, evaluator: t_eval, ..Default::default() })
        })?;

        // Phase 3: score from PDT annotations, rank, plan top-k
        // materialization. Scoring sees the whole view sequence at once —
        // the cross-segment merge point — so idf and ranking are
        // identical however many segments produced the PDTs.
        let t2 = Instant::now();
        let score_timings =
            |t2: &Instant| PhaseTimings { pdt: t_pdt, evaluator: t_eval, post: t2.elapsed() };
        let by_name: HashMap<&str, &Pdt> = pdts.iter().map(|p| (p.doc_name.as_str(), p)).collect();
        let mut stats: Vec<ElementStats> = Vec::with_capacity(results.len());
        for (i, item) in results.iter().enumerate() {
            if (i + 1).is_multiple_of(256) {
                ctl.check().map_err(|int| int.into_error(score_timings(&t2)))?;
            }
            let tf: Vec<u32> = (0..keywords.len())
                .map(|ki| {
                    item_sum_with(item, &mut |doc, n| {
                        by_name
                            .get(doc.name())
                            .map(|p| p.tf(&doc.node(n).dewey, ki) as u64)
                            .unwrap_or(0)
                    }) as u32
                })
                .collect();
            let byte_len = item_byte_len_with(item, &mut |doc, n| {
                by_name.get(doc.name()).map(|p| p.byte_len(&doc.node(n).dewey) as u64).unwrap_or(0)
            });
            stats.push(ElementStats { tf, byte_len });
        }
        let ScoringOutcome { top, matching, idf, view_size } =
            score_and_rank(&stats, request.keyword_mode(), request.k());

        // Top-k winners become symbolic materialization plans: literal
        // XML for constructed tags, fetch points for base-data subtrees.
        let planned: Vec<PlannedHit> = top
            .into_iter()
            .map(|scored| {
                let segments = if request.materializes() {
                    plan_segments(&results[scored.index])
                } else {
                    Vec::new()
                };
                PlannedHit {
                    score: scored.score,
                    tf: scored.tf,
                    byte_len: scored.byte_len,
                    segments,
                }
            })
            .collect();
        let t_score = t2.elapsed();

        Ok(RankedHits {
            planned,
            view_size,
            matching,
            idf,
            pdt_stats,
            t_pdt,
            t_eval,
            t_score,
            plan: request.wants_plan().then(|| self.plan(request.keywords())),
        })
    }

    /// The query plan: per-QPT probe reports from the cached prepare-time
    /// lists (each against its owning segment), plus the keywords'
    /// posting-list lengths summed across the snapshot — without running
    /// the query.
    pub fn plan<K: AsRef<str>>(&self, keywords: &[K]) -> QueryPlan {
        let qpts = self
            .plans
            .iter()
            .map(|plan| {
                let probes = plan
                    .lists
                    .lists
                    .iter()
                    .zip(&plan.lists.expanded_paths)
                    .map(|((q, node_plan), expanded)| ProbeReport {
                        expanded_paths: *expanded,
                        pattern: plan.qpt.pattern(*q).to_string(),
                        predicates: plan.qpt.node(*q).preds.len(),
                        entries: node_plan.entry_count(plan.meta.root_ordinal) as usize,
                    })
                    .collect();
                QptReport {
                    doc_name: plan.qpt.doc_name.clone(),
                    segment: plan.meta.segment,
                    rendered: plan.qpt.to_string(),
                    nodes: plan.qpt.len(),
                    probes,
                }
            })
            .collect();
        let keyword_list_lengths = keywords
            .iter()
            .map(|k| {
                let norm = normalize_keyword(k.as_ref());
                let len =
                    self.snapshot.iter().map(|seg| seg.index.inverted().list_len(&norm)).sum();
                (norm, len)
            })
            .collect();
        QueryPlan { qpts, keyword_list_lengths }
    }
}

/// Split one result item into a symbolic materialization plan: serialize
/// the constructed skeleton once, record where each base-data subtree
/// belongs. Executing the plan (in order) reproduces exactly what the
/// eager path serialized.
fn plan_segments(item: &vxv_xquery::Item<'_>) -> Vec<Segment> {
    let mut cuts: Vec<(usize, vxv_xml::DeweyId)> = Vec::new();
    let skeleton = serialize_item_with(item, &mut |doc, n, out| {
        cuts.push((out.len(), doc.node(n).dewey.clone()));
    });
    let mut segments = Vec::with_capacity(cuts.len() * 2 + 1);
    let mut prev = 0usize;
    for (offset, dewey) in cuts {
        if offset > prev {
            segments.push(Segment::Text(skeleton[prev..offset].to_string()));
            prev = offset;
        }
        segments.push(Segment::Fetch(dewey));
    }
    if prev < skeleton.len() {
        segments.push(Segment::Text(skeleton[prev..].to_string()));
    }
    segments
}

/// One probe the prepare phase issued for a QPT node.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The root-to-node path pattern sent to the path index.
    pub pattern: String,
    /// Number of predicates pushed into the probe.
    pub predicates: usize,
    /// Full data paths the pattern expands to in the owning segment's
    /// dictionary.
    pub expanded_paths: usize,
    /// Entries the plan holds for the projected document (relevant-list
    /// length, counted from block metadata without decoding interiors).
    pub entries: usize,
}

/// Query-plan introspection for one QPT.
#[derive(Clone, Debug)]
pub struct QptReport {
    /// The document this QPT projects.
    pub doc_name: String,
    /// Id of the index segment that owns the document.
    pub segment: u64,
    /// Pretty-printed QPT (axes, edges, annotations, predicates).
    pub rendered: String,
    /// Pattern nodes in the QPT.
    pub nodes: usize,
    /// The probes `PrepareLists` issued — proportional to the query.
    pub probes: Vec<ProbeReport>,
}

/// How a search over a prepared view is answered: the QPTs, the index
/// probes with their list sizes, and the keywords' inverted-list lengths.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// One report per base document the view references.
    pub qpts: Vec<QptReport>,
    /// Per-keyword inverted-list lengths, summed across segments (the
    /// paper's selectivity knob).
    pub keyword_list_lengths: Vec<(String, usize)>,
}
