//! [`PreparedView`] — a view analyzed once, searched many times.
//!
//! The paper's core claim is that per-query work should be proportional
//! to the *query*, not the data. Preparing a view takes that one step
//! further: the work proportional to the *view definition* — parsing,
//! QPT generation (`GenerateQPT`), and the `PrepareLists` probe phase
//! with its pattern expansion against the path dictionary — happens once,
//! at [`crate::engine::ViewSearchEngine::prepare`] time. Each subsequent
//! [`PreparedView::search`] pays only for what depends on the keywords:
//! the per-segment PDT merges, view evaluation over the PDTs, scoring,
//! and top-k materialization.
//!
//! A `PreparedView` **owns** an engine handle *and a frozen segment
//! snapshot*: each QPT is planned against the segment that owns its
//! projected document, and the snapshot's `Arc`s keep those segments
//! alive even if the engine later ingests or compacts — searches are
//! never torn by concurrent index evolution (re-prepare to see new
//! documents). Views over several documents fan their per-segment PDT
//! generation across a scoped worker pool; the cross-segment score
//! merge is byte-identical to the single-segment pipeline because PDTs
//! are per-document and idf is computed over the whole view sequence
//! either way.
//!
//! Two execution shapes share one pipeline:
//!
//! * [`PreparedView::search`] — run to completion, return a
//!   [`SearchResponse`];
//! * [`PreparedView::hits`] — rank, then return a pull-based
//!   [`HitStream`] that materializes each hit on demand.

use crate::cache::{request_fingerprint, CacheKey};
use crate::control::{ExecControl, Interrupt};
use crate::engine::{EngineError, EngineSegment, SegmentSet, ViewSearchEngine};
use crate::generate::{generate_pdt_from_lists_ctl, DocMeta, GenerateStats, TfAnnotation};
use crate::pdt::Pdt;
use crate::prepare::{prepare_lists, PreparedLists};
use crate::qpt::Qpt;
use crate::qpt_gen::generate_qpts;
use crate::request::{PhaseTimings, SearchHit, SearchRequest, SearchResponse};
use crate::scoring::{
    score_and_rank_boosted, score_and_rank_bounded_boosted, BoundedCandidate, ElementStats,
    PruneStats, ScoringOutcome,
};
use crate::stream::{materialize_segments, FetchRouter, HitStream, PlannedHit, Segment};
use crate::term::{QueryTerm, ResolvedTerms};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use vxv_index::tokenize::normalize_keyword;
use vxv_xml::DocumentSource;
use vxv_xquery::{
    item_byte_len_with, item_sum_with, serialize_item_with, Evaluator, MapSource, Query,
};

/// One QPT with everything its searches reuse: catalog metadata, the
/// owning segment (from the prepared snapshot), and the cursor plan over
/// the segment's selected index rows (keyword-independent by
/// construction; entries stay compressed in the index until a search's
/// merge streams them).
pub(crate) struct QptPlan {
    pub(crate) qpt: Qpt,
    pub(crate) meta: DocMeta,
    pub(crate) segment: Arc<EngineSegment>,
    pub(crate) lists: PreparedLists,
}

/// A view with its analysis done: parse + QPT generation + index-probe
/// planning against a frozen segment snapshot, ready to answer
/// [`SearchRequest`]s. Owns its engine handle — no borrows, no
/// lifetimes; see the module docs.
pub struct PreparedView<S: DocumentSource> {
    engine: ViewSearchEngine<S>,
    query: Query,
    plans: Vec<QptPlan>,
    /// The segment set this view was prepared against (kept alive for
    /// snapshot isolation across ingests/compactions).
    snapshot: Arc<SegmentSet>,
    /// The engine epoch the snapshot was taken at. A prepared view is
    /// frozen: this never changes, so comparing it against
    /// [`ViewSearchEngine::epoch`] tells callers (and the result cache)
    /// whether the view still reflects the live segment set.
    epoch: u64,
    /// Hot-keyword probe cache: pinned posting lists keyed by
    /// `(plan slot, normalized keyword)`. The pins share the snapshot's
    /// lifetime — a new prepare (new epoch) starts with an empty cache,
    /// which is exactly epoch invalidation.
    pins: RwLock<HashMap<(usize, String), Arc<vxv_index::PinnedList>>>,
    router: FetchRouter<S>,
}

/// Distinct `(plan, keyword)` pins kept per view before the probe cache
/// stops inserting — a safety valve against unbounded keyword churn, not
/// a tuning knob (real workloads are far below it).
const PROBE_CACHE_MAX_PINS: usize = 4096;

impl<S: DocumentSource> std::fmt::Debug for PreparedView<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedView")
            .field("qpts", &self.plans.len())
            .field("probes", &self.probe_count())
            .field("segments", &self.snapshot.len())
            .field("source", &self.engine.source().kind())
            .finish_non_exhaustive()
    }
}

/// Everything the ranking phases produce, with per-hit materialization
/// kept symbolic (fully owned — no borrows into the PDTs).
struct RankedHits {
    planned: Vec<PlannedHit>,
    view_size: usize,
    matching: usize,
    idf: Vec<f64>,
    pdt_stats: Vec<(String, GenerateStats, u64)>,
    pruning: PruneStats,
    t_pdt: Duration,
    t_eval: Duration,
    t_score: Duration,
    plan: Option<QueryPlan>,
}

impl<S: DocumentSource> PreparedView<S> {
    /// Analyze `query` against `engine`'s current segment snapshot.
    /// Called via [`ViewSearchEngine::prepare`] /
    /// [`ViewSearchEngine::prepare_query`].
    pub(crate) fn build(engine: &ViewSearchEngine<S>, query: Query) -> Result<Self, EngineError> {
        let (snapshot, epoch) = engine.snapshot_and_epoch();
        let qpts = generate_qpts(&query)?;
        let mut plans = Vec::with_capacity(qpts.len());
        for qpt in qpts {
            // Locate the segment owning the projected document; root tag
            // and ordinal are catalog metadata — present whether the
            // engine was built from a corpus or cold-opened from disk.
            let (segment, meta) = snapshot
                .iter()
                .find_map(|seg| seg.catalog.get(&qpt.doc_name).map(|m| (seg, m.clone())))
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let lists = prepare_lists(&qpt, segment.index.path_index(), meta.root_ordinal);
            plans.push(QptPlan { qpt, meta, segment: Arc::clone(segment), lists });
        }
        let router = FetchRouter::new(engine.source_arc(), &snapshot);
        Ok(PreparedView {
            engine: engine.clone(),
            query,
            plans,
            snapshot,
            epoch,
            pins: RwLock::new(HashMap::new()),
            router,
        })
    }

    /// The engine epoch this view was prepared at. Stale when it no
    /// longer equals [`ViewSearchEngine::epoch`] — the view still
    /// answers searches (snapshot isolation), it just doesn't see
    /// documents ingested since.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resolve one `(plan, keyword)` posting-list pin, consulting the
    /// view's probe cache first. A hit skips the dictionary lookup
    /// entirely (charging no index `lookups` counter); a miss pins the
    /// list and publishes it for subsequent searches. Pins are cheap —
    /// the block data is refcounted — and live exactly as long as the
    /// prepared snapshot.
    fn pinned_list(&self, pi: usize, plan: &QptPlan, keyword: &str) -> Arc<vxv_index::PinnedList> {
        let cache = self.engine.result_cache();
        if let Some(pin) = self.pins.read().unwrap().get(&(pi, keyword.to_string())) {
            cache.record_probe_hit();
            return Arc::clone(pin);
        }
        cache.record_probe_miss();
        let pin = Arc::new(plan.segment.index.inverted().pin_list(keyword));
        let mut pins = self.pins.write().unwrap();
        if pins.len() < PROBE_CACHE_MAX_PINS {
            // Two racing misses may both pin; keep the first insert so
            // every hit after the race shares one allocation.
            return Arc::clone(
                pins.entry((pi, keyword.to_string())).or_insert_with(|| Arc::clone(&pin)),
            );
        }
        pin
    }

    /// The engine this view was prepared against (a shared handle).
    pub fn engine(&self) -> &ViewSearchEngine<S> {
        &self.engine
    }

    /// The parsed view definition.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of base documents the view projects (= number of QPTs).
    pub fn qpt_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of segments in the snapshot this view was prepared
    /// against.
    pub fn segment_count(&self) -> usize {
        self.snapshot.len()
    }

    /// Logical index probes planned at prepare time — one per probed QPT
    /// node, proportional to the query, never to the data. (A pattern
    /// that expands to several concrete data paths still counts once
    /// here; the path index's own `stats().probes` counter tracks the
    /// per-path scans.)
    pub fn probe_count(&self) -> usize {
        self.plans.iter().map(|p| p.lists.probes).sum()
    }

    /// Answer one keyword search. Only keyword-dependent work happens
    /// here; the view analysis is reused from prepare time.
    ///
    /// Requests with a [`SearchRequest::deadline`] or
    /// [`crate::CancelToken`] abort cooperatively with
    /// [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`]
    /// carrying the partial phase timings — never a panic, never a
    /// silently truncated response.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse, EngineError> {
        let ctl = ExecControl::new(request.deadline_budget(), request.cancel());
        let ranked = self.rank(request, &ctl)?;

        // Final phase: execute each hit's materialization plan.
        let t3 = Instant::now();
        // Fetches are counted locally (not by diffing the source's global
        // counter) so concurrent searches on one source each report
        // exactly their own base-data work.
        let mut fetches = 0u64;
        let mut hits: Vec<SearchHit> = Vec::with_capacity(ranked.planned.len());
        for (i, planned) in ranked.planned.into_iter().enumerate() {
            ctl.check().map_err(|int| {
                int.into_error(PhaseTimings {
                    pdt: ranked.t_pdt,
                    evaluator: ranked.t_eval,
                    post: ranked.t_score + t3.elapsed(),
                })
            })?;
            let xml = materialize_segments(&planned.segments, &self.router, &mut fetches)?;
            hits.push(SearchHit {
                rank: i + 1,
                score: planned.score,
                tf: planned.tf,
                byte_len: planned.byte_len,
                xml,
            });
        }
        let t_post = ranked.t_score + t3.elapsed();

        Ok(SearchResponse {
            hits,
            view_size: ranked.view_size,
            matching: ranked.matching,
            idf: ranked.idf,
            timings: request.collects_timings().then_some(PhaseTimings {
                pdt: ranked.t_pdt,
                evaluator: ranked.t_eval,
                post: t_post,
            }),
            pdt_stats: ranked.pdt_stats,
            fetches,
            pruning: ranked.pruning,
            plan: ranked.plan,
        })
    }

    /// [`Self::search`] through the engine's epoch-keyed result cache:
    /// a response already computed for `(tenant, view_name, request
    /// shape)` at this view's epoch is returned without touching the
    /// index; otherwise the search runs and its response is stored.
    /// Because the epoch is part of the key, a hit is byte-identical
    /// (hits, score bits, order) to a fresh search against this view's
    /// snapshot — cached responses do carry the *original* run's
    /// [`PhaseTimings`], which is what makes them fast.
    pub fn search_cached(
        &self,
        tenant: &crate::tenant::TenantId,
        view_name: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        // A control that is already tripped must fail typed, never be
        // answered — deadlines and cancel tokens are excluded from the
        // cache fingerprint, so without this guard a zero-budget
        // request could ride an earlier request's cached response.
        if request.deadline_budget().is_some_and(|d| d.is_zero())
            || request.cancel().is_some_and(|t| t.is_cancelled())
        {
            return self.search(request);
        }
        let cache = self.engine.result_cache();
        let key = CacheKey {
            tenant: tenant.clone(),
            view: view_name.to_string(),
            fingerprint: request_fingerprint(request),
            epoch: self.epoch,
        };
        if let Some(hit) = cache.get(&key) {
            return Ok((*hit).clone());
        }
        let response = self.search(request)?;
        cache.insert(key, Arc::new(response.clone()));
        Ok(response)
    }

    /// Rank once, then pull hits incrementally: returns a [`HitStream`]
    /// whose `next()` materializes one scored hit at a time from base
    /// storage. Hits never pulled never touch base data. Collecting the
    /// stream yields hits byte-identical to [`Self::search`] on the same
    /// request; the request's deadline/cancel controls stay armed across
    /// pulls.
    pub fn hits(&self, request: &SearchRequest) -> Result<HitStream<S>, EngineError> {
        let ctl = ExecControl::new(request.deadline_budget(), request.cancel());
        let ranked = self.rank(request, &ctl)?;
        Ok(HitStream::new(
            self.router.clone(),
            ranked.planned,
            ranked.view_size,
            ranked.matching,
            ranked.idf,
            PhaseTimings { pdt: ranked.t_pdt, evaluator: ranked.t_eval, post: ranked.t_score },
            ctl,
        ))
    }

    /// Phase 1: one PDT per QPT, each merged from its owning segment's
    /// cursors. Multi-document views fan across a scoped worker pool
    /// (PDTs are independent by construction); results come back in plan
    /// order, so downstream phases are order-deterministic either way.
    fn generate_pdts(
        &self,
        terms: &ResolvedTerms,
        ctl: &ExecControl,
        annotate: TfAnnotation,
    ) -> Result<Vec<(Pdt, GenerateStats)>, Interrupt> {
        let run = |plan: &QptPlan| {
            generate_pdt_from_lists_ctl(
                &plan.qpt,
                &plan.lists,
                plan.segment.index.inverted(),
                terms,
                &plan.meta,
                ctl,
                annotate,
            )
        };
        // Plans whose segment dictionary can't match any term produce
        // keyword-empty PDTs from structure alone — cheap, so run them
        // inline on the caller and fan only the plans with posting work
        // to claim. (`might_match` issues pure dictionary probes; it
        // charges no lookup counters.)
        let hot: Vec<bool> = self
            .plans
            .iter()
            .map(|plan| terms.might_match(plan.segment.index.inverted()))
            .collect();
        let hot_plans: Vec<&QptPlan> =
            self.plans.iter().zip(&hot).filter(|(_, h)| **h).map(|(p, _)| p).collect();
        let hot_results = crate::fanout::fan_out(&hot_plans, |plan| run(plan));
        let mut hot_results = hot_results.into_iter();
        self.plans
            .iter()
            .zip(&hot)
            .map(|(plan, is_hot)| {
                if *is_hot {
                    hot_results.next().expect("one result per hot plan")
                } else {
                    run(plan)
                }
            })
            .collect()
    }

    /// The shared ranking pipeline: per-segment PDT generation → view
    /// evaluation → scoring → top-k cut, with each winner's
    /// materialization plan kept symbolic ([`Segment`]s) instead of
    /// expanded.
    ///
    /// By default the scoring phase is **score-bounded** (see
    /// [`crate::scoring::score_and_rank_bounded`]): exact per-element tf
    /// probes are
    /// deferred out of PDT generation, per-keyword upper bounds from the
    /// index's block-max metadata stand in for them, and candidates
    /// whose bound falls strictly below the running top-k threshold are
    /// never probed at all — with output byte-identical to the exact
    /// path, which [`SearchRequest::prune`]`(false)` keeps available as
    /// the reference.
    fn rank(&self, request: &SearchRequest, ctl: &ExecControl) -> Result<RankedHits, EngineError> {
        let terms = ResolvedTerms::resolve(request)?;
        // Phrase/proximity terms need per-occurrence positions in every
        // segment a plan touches — reject upfront with a typed error
        // rather than letting a positionless segment contribute silent
        // zero counts (pre-v5 bundles load without positions).
        if terms.has_positional() {
            for plan in &self.plans {
                if !plan.segment.index.inverted().has_positions() {
                    return Err(EngineError::PositionsUnavailable);
                }
            }
        }
        let prune = request.prunes();
        let annotate = if prune { TfAnnotation::Deferred } else { TfAnnotation::Exact };

        // Phase 1: index-only PDTs from the prepared probe lists, fanned
        // across segments.
        let t0 = Instant::now();
        let pdt_timings = |t0: &Instant| PhaseTimings { pdt: t0.elapsed(), ..Default::default() };
        let generated = self
            .generate_pdts(&terms, ctl, annotate)
            .map_err(|int| int.into_error(pdt_timings(&t0)))?;
        let mut pdts: Vec<Pdt> = Vec::with_capacity(self.plans.len());
        let mut pdt_stats = Vec::with_capacity(self.plans.len());
        for (plan, (pdt, stats)) in self.plans.iter().zip(generated) {
            pdt_stats.push((plan.qpt.doc_name.clone(), stats, pdt.byte_size()));
            pdts.push(pdt);
        }
        let t_pdt = t0.elapsed();
        ctl.check()
            .map_err(|int| int.into_error(PhaseTimings { pdt: t_pdt, ..Default::default() }))?;

        // Phase 2: the regular evaluator, redirected to the PDTs.
        let t1 = Instant::now();
        let source = MapSource::new(pdts.iter().map(|p| (p.doc_name.clone(), &p.doc)));
        let evaluator = Evaluator::new(&source, &self.query);
        let results = evaluator.eval_query(&self.query)?;
        let t_eval = t1.elapsed();
        ctl.check().map_err(|int| {
            int.into_error(PhaseTimings { pdt: t_pdt, evaluator: t_eval, ..Default::default() })
        })?;

        // Phase 3: score from PDT annotations, rank, plan top-k
        // materialization. Scoring sees the whole view sequence at once —
        // the cross-segment merge point — so idf and ranking are
        // identical however many segments produced the PDTs.
        let t2 = Instant::now();
        let score_timings =
            |t2: &Instant| PhaseTimings { pdt: t_pdt, evaluator: t_eval, post: t2.elapsed() };
        // Doc name → (plan slot, PDT); the plan slot routes per-node
        // probes to the segment owning the document.
        let by_name: HashMap<&str, (usize, &Pdt)> =
            pdts.iter().enumerate().map(|(i, p)| (p.doc_name.as_str(), (i, p))).collect();
        let (ScoringOutcome { top, matching, idf, view_size }, pruning) = if prune {
            self.score_bounded(
                request,
                ctl,
                &terms,
                &pdts,
                &results,
                &by_name,
                &score_timings,
                &t2,
            )?
        } else {
            let mut stats: Vec<ElementStats> = Vec::with_capacity(results.len());
            for (i, item) in results.iter().enumerate() {
                if (i + 1).is_multiple_of(256) {
                    ctl.check().map_err(|int| int.into_error(score_timings(&t2)))?;
                }
                let tf: Vec<u32> = (0..terms.len())
                    .map(|ki| {
                        item_sum_with(item, &mut |doc, n| {
                            by_name
                                .get(doc.name())
                                .map(|(_, p)| p.tf(&doc.node(n).dewey, ki) as u64)
                                .unwrap_or(0)
                        }) as u32
                    })
                    .collect();
                let byte_len = item_byte_len_with(item, &mut |doc, n| {
                    by_name
                        .get(doc.name())
                        .map(|(_, p)| p.byte_len(&doc.node(n).dewey) as u64)
                        .unwrap_or(0)
                });
                stats.push(ElementStats { tf, byte_len });
            }
            (
                score_and_rank_boosted(
                    &stats,
                    request.keyword_mode(),
                    request.k(),
                    request.boosts(),
                ),
                PruneStats::default(),
            )
        };
        self.engine.record_prune(pruning);

        // Top-k winners become symbolic materialization plans: literal
        // XML for constructed tags, fetch points for base-data subtrees.
        let planned: Vec<PlannedHit> = top
            .into_iter()
            .map(|scored| {
                let segments = if request.materializes() {
                    plan_segments(&results[scored.index])
                } else {
                    Vec::new()
                };
                PlannedHit {
                    score: scored.score,
                    tf: scored.tf,
                    byte_len: scored.byte_len,
                    segments,
                }
            })
            .collect();
        let t_score = t2.elapsed();

        Ok(RankedHits {
            planned,
            view_size,
            matching,
            idf,
            pdt_stats,
            pruning,
            t_pdt,
            t_eval,
            t_score,
            plan: request.wants_plan().then(|| self.plan_for_terms(request, &terms)),
        })
    }

    /// The score-bounded phase 3, in three steps:
    ///
    /// 1. **Estimate pass** (fanned across plans, like the reference
    ///    annotation): every content element gets one boundary-exact
    ///    estimate probe per keyword — exact contains-bits and a tf
    ///    upper bound that *is* the exact tf whenever no interior block
    ///    was bounded (the common, small-subtree case).
    /// 2. **Candidate pass**: one walk per view element aggregates the
    ///    memoized per-node estimates into [`BoundedCandidate`]s — no
    ///    index is touched.
    /// 3. [`score_and_rank_bounded_boosted`] resolves exact tf lazily:
    ///    fully-resolved candidates cost nothing, candidates bounded
    ///    below the top-k threshold are never probed again, and the few
    ///    interior nodes a surviving candidate does need are completed
    ///    by decoding **only** their interior blocks — every block at
    ///    most once across the whole search.
    #[allow(clippy::too_many_arguments)] // one phase's worth of borrowed context
    fn score_bounded(
        &self,
        request: &SearchRequest,
        ctl: &ExecControl,
        terms: &ResolvedTerms,
        pdts: &[Pdt],
        results: &[vxv_xquery::Item<'_>],
        by_name: &HashMap<&str, (usize, &Pdt)>,
        timings: &dyn Fn(&Instant) -> PhaseTimings,
        t2: &Instant,
    ) -> Result<(ScoringOutcome, PruneStats), EngineError> {
        /// How a candidate's exact tf vector is obtained on demand.
        enum Resolution {
            /// Every node's estimate was boundary-exact: this IS the tf.
            Exact(Vec<u32>),
            /// Some nodes bounded interior blocks: the exact tf is
            /// `base` (the boundary-exact nodes' contribution) plus the
            /// listed interior nodes' exact values, each resolved at
            /// most once across all candidates sharing it.
            Partial { base: Vec<u64>, interior: Vec<(usize, vxv_xml::NodeId)> },
        }
        /// Per-node estimate data, flat-indexed by node id (PDT
        /// documents are small and dense; value-join views reference
        /// the same base node from many view elements, and each
        /// (node, keyword) range is probed once, not once per
        /// referencing element).
        #[derive(Clone, Copy, Default)]
        struct NodeEst {
            /// Does the node carry tf annotations at all?
            content: bool,
            /// Interior nodes become `resolved` once completed.
            resolved: bool,
            /// Interior blocks bounded (not decoded) across keywords.
            blocks: u32,
            /// The node's annotated byte length.
            byte_len: u32,
        }
        /// Per-(node, keyword) estimate data, flat `[node * kws + k]`.
        #[derive(Clone, Copy, Default)]
        struct KwEst {
            contains: bool,
            /// Upper bound (0 when `contains` is false — exact).
            bound: u64,
            /// Boundary-block exact sum; grows into the full exact
            /// value when the node is resolved.
            sum: u64,
        }
        let kws = terms.len();

        // How one term slot is probed against one plan's segment.
        // Word/Prefix terms estimate through tf readers (one per word the
        // term covers in that segment's dictionary); Phrase/Near terms
        // resolve *exactly* through a positional reader — their estimate
        // IS the count, so they never bound interior blocks and pruning
        // stays byte-identical to the reference.
        enum TermProbe<'a> {
            Words(Vec<vxv_index::TfReader<'a>>),
            Positional(vxv_index::PositionalReader<'a>),
        }

        // One pinned posting list per (plan, term, covered word). Pins
        // come from the view's probe cache — hot keywords skip the
        // dictionary lookup on every search after the first — and both
        // the estimate pass and the lazy completions below probe through
        // them. Prefix terms expand against each segment's own sorted
        // dictionary; phrase/proximity terms pin each distinct word once.
        let pins: Vec<Vec<Vec<Arc<vxv_index::PinnedList>>>> = self
            .plans
            .iter()
            .enumerate()
            .map(|(pi, plan)| {
                terms
                    .terms()
                    .iter()
                    .map(|term| match term {
                        QueryTerm::Word(w) => vec![self.pinned_list(pi, plan, w)],
                        QueryTerm::Prefix(p) => plan
                            .segment
                            .index
                            .inverted()
                            .prefix_matches(p)
                            .iter()
                            .map(|w| self.pinned_list(pi, plan, w))
                            .collect(),
                        QueryTerm::Phrase(words) | QueryTerm::Near { words, .. } => {
                            let (distinct, _) = distinct_words(words);
                            distinct.iter().map(|w| self.pinned_list(pi, plan, w)).collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let probes: Vec<Vec<TermProbe<'_>>> = self
            .plans
            .iter()
            .zip(&pins)
            .map(|(plan, plan_pins)| {
                let inverted = plan.segment.index.inverted();
                terms
                    .terms()
                    .iter()
                    .zip(plan_pins)
                    .map(|(term, term_pins)| match term {
                        QueryTerm::Word(_) | QueryTerm::Prefix(_) => TermProbe::Words(
                            term_pins.iter().map(|pin| inverted.tf_reader_pinned(pin)).collect(),
                        ),
                        QueryTerm::Phrase(words) | QueryTerm::Near { words, .. } => {
                            // Pin order above is distinct-word order, so
                            // the same expansion maps instances to pins.
                            let (_, instance_of) = distinct_words(words);
                            let window = match term {
                                QueryTerm::Near { window, .. } => Some(*window),
                                _ => None,
                            };
                            let pin_refs: Vec<&vxv_index::PinnedList> =
                                term_pins.iter().map(|p| p.as_ref()).collect();
                            TermProbe::Positional(inverted.positional_reader_pinned(
                                &pin_refs,
                                instance_of,
                                window,
                            ))
                        }
                    })
                    .collect()
            })
            .collect();

        // Step 1: the estimate pass, one plan per worker, elements in
        // document order (the same traversal the reference annotation
        // loop uses, so block decodes stay sequential in the lists).
        let pairs: Vec<(usize, &Pdt)> = pdts.iter().enumerate().collect();
        // Each worker carries one reusable decode scratch across all its
        // estimate probes — thousands of boundary-block decodes, a
        // handful of allocations.
        let est = crate::fanout::fan_out_init(
            &pairs,
            || (vxv_index::DecodeScratch::default(), vxv_index::PositionsScratch::default()),
            |(scratch, pos_scratch), (pi, pdt)| {
                let n = pdt.doc.len();
                let mut nodes = vec![NodeEst::default(); n];
                let mut kw_data = vec![KwEst::default(); n * kws];
                let probes = &probes[*pi];
                // Info keys and arena nodes are both in document order:
                // advance a node cursor instead of searching per element.
                let mut ni = 0usize;
                for (count, (dewey, inf)) in pdt.info.iter().enumerate() {
                    if (count + 1).is_multiple_of(1024) {
                        ctl.check()?;
                    }
                    while ni < n && pdt.doc.node(vxv_xml::NodeId(ni as u32)).dewey < *dewey {
                        ni += 1;
                    }
                    debug_assert!(
                        ni < n && pdt.doc.node(vxv_xml::NodeId(ni as u32)).dewey == *dewey,
                        "every annotated element is a document node"
                    );
                    nodes[ni].byte_len = inf.byte_len;
                    if inf.tf.is_none() {
                        continue;
                    }
                    nodes[ni].content = true;
                    for (k, probe) in probes.iter().enumerate() {
                        let e = &mut kw_data[ni * kws + k];
                        match probe {
                            TermProbe::Words(readers) => {
                                for reader in readers {
                                    let est = reader.subtree_estimate_with(dewey, scratch);
                                    nodes[ni].blocks += est.skipped_blocks as u32;
                                    e.sum += est.boundary_sum;
                                    if est.contains {
                                        e.contains = true;
                                        // `contains == false` tightens the
                                        // bound to the exact value 0.
                                        e.bound += est.bound;
                                    }
                                }
                            }
                            TermProbe::Positional(reader) => {
                                // Exact by construction: the match count
                                // is both the sum and the bound, and no
                                // interior block is ever deferred.
                                let count =
                                    reader.subtree_count_with(dewey, scratch, pos_scratch) as u64;
                                e.sum = count;
                                e.bound = count;
                                e.contains = count > 0;
                            }
                        }
                    }
                }
                Ok((nodes, kw_data))
            },
        );
        let mut memos: Vec<(Vec<NodeEst>, Vec<KwEst>)> = est
            .into_iter()
            .collect::<Result<_, Interrupt>>()
            .map_err(|int| int.into_error(timings(t2)))?;

        // Step 2: aggregate per view element — memo reads only.
        let mut cands: Vec<BoundedCandidate> = Vec::with_capacity(results.len());
        let mut resolutions: Vec<Resolution> = Vec::with_capacity(results.len());
        for (i, item) in results.iter().enumerate() {
            if (i + 1).is_multiple_of(256) {
                ctl.check().map_err(|int| int.into_error(timings(t2)))?;
            }
            let mut contains = vec![false; kws];
            let mut tf_bound = vec![0u64; kws];
            let mut exact_base = vec![0u64; kws];
            let mut interior: Vec<(usize, vxv_xml::NodeId)> = Vec::new();
            let mut bound_blocks = 0u64;
            // Consecutive item nodes usually share a document; cache the
            // plan-slot lookup on document identity.
            let mut last_doc: (*const vxv_xml::Document, usize) = (std::ptr::null(), 0);
            let byte_len = item_byte_len_with(item, &mut |doc, n| {
                let pi = if std::ptr::eq(doc, last_doc.0) {
                    last_doc.1
                } else {
                    let Some((pi, _)) = by_name.get(doc.name()) else { return 0 };
                    last_doc = (doc as *const _, *pi);
                    *pi
                };
                let (nodes, kw_data) = &memos[pi];
                let ni = n.0 as usize;
                let node = nodes[ni];
                // Nodes without tf annotations contribute exactly zero —
                // matching the reference, where `Pdt::tf` returns 0; byte
                // lengths come from the same annotation table either way.
                if !node.content {
                    return node.byte_len as u64;
                }
                bound_blocks += node.blocks as u64;
                let boundary_exact = node.blocks == 0;
                if !boundary_exact {
                    interior.push((pi, n));
                }
                for k in 0..kws {
                    let e = kw_data[ni * kws + k];
                    if e.contains {
                        contains[k] = true;
                        tf_bound[k] += e.bound;
                        if boundary_exact {
                            exact_base[k] += e.bound;
                        }
                    }
                }
                node.byte_len as u64
            });
            resolutions.push(if interior.is_empty() {
                Resolution::Exact(exact_base.iter().map(|v| *v as u32).collect())
            } else {
                Resolution::Partial { base: exact_base, interior }
            });
            cands.push(BoundedCandidate { index: i, byte_len, contains, tf_bound, bound_blocks });
        }

        // Step 3: lazy exact resolution; the resolver is a cancellation
        // checkpoint (a completion costs interior-block decodes), so
        // pruning cannot change abort semantics — only make the abort
        // arrive sooner.
        let mut interrupt: Option<Interrupt> = None;
        // Completions are single-threaded: one scratch serves every
        // interior-block decode the resolver performs.
        let mut resolve_scratch = vxv_index::DecodeScratch::default();
        let outcome = score_and_rank_bounded_boosted(
            &cands,
            request.keyword_mode(),
            request.k(),
            request.boosts(),
            &mut |i| {
                match &resolutions[i] {
                    Resolution::Exact(tf) => Some(tf.clone()),
                    Resolution::Partial { base, interior } => {
                        if let Err(int) = ctl.check() {
                            interrupt = Some(int);
                            return None;
                        }
                        let mut tf = base.clone();
                        for (pi, n) in interior {
                            let (nodes, kw_data) = &mut memos[*pi];
                            let ni = n.0 as usize;
                            if !nodes[ni].resolved {
                                // Complete the estimate by decoding only
                                // the interior blocks, once per node no
                                // matter how many elements share it —
                                // through the same pinned readers the
                                // estimate pass used.
                                let dewey = &pdts[*pi].doc.node(*n).dewey;
                                for (k, probe) in probes[*pi].iter().enumerate() {
                                    // Positional slots are already exact
                                    // (their estimate was the count).
                                    if let TermProbe::Words(readers) = probe {
                                        for reader in readers {
                                            kw_data[ni * kws + k].sum += reader
                                                .subtree_interior_with(dewey, &mut resolve_scratch);
                                        }
                                    }
                                }
                                nodes[ni].resolved = true;
                            }
                            for k in 0..kws {
                                tf[k] += kw_data[ni * kws + k].sum;
                            }
                        }
                        Some(tf.iter().map(|v| *v as u32).collect())
                    }
                }
            },
        );
        match outcome {
            Some(pair) => Ok(pair),
            None => Err(interrupt
                .take()
                .expect("bounded scoring aborts only on interrupt")
                .into_error(timings(t2))),
        }
    }

    /// The per-QPT half of a [`QueryPlan`]: probe reports from the cached
    /// prepare-time lists, each against its owning segment.
    fn qpt_reports(&self) -> Vec<QptReport> {
        self.plans
            .iter()
            .map(|plan| {
                let probes = plan
                    .lists
                    .lists
                    .iter()
                    .zip(&plan.lists.expanded_paths)
                    .map(|((q, node_plan), expanded)| ProbeReport {
                        expanded_paths: *expanded,
                        pattern: plan.qpt.pattern(*q).to_string(),
                        predicates: plan.qpt.node(*q).preds.len(),
                        entries: node_plan.entry_count(plan.meta.root_ordinal) as usize,
                    })
                    .collect();
                QptReport {
                    doc_name: plan.qpt.doc_name.clone(),
                    segment: plan.meta.segment,
                    rendered: plan.qpt.to_string(),
                    nodes: plan.qpt.len(),
                    probes,
                }
            })
            .collect()
    }

    /// The query plan: per-QPT probe reports from the cached prepare-time
    /// lists (each against its owning segment), plus the keywords'
    /// posting-list lengths summed across the snapshot — without running
    /// the query.
    pub fn plan<K: AsRef<str>>(&self, keywords: &[K]) -> QueryPlan {
        let keyword_list_lengths = keywords
            .iter()
            .map(|k| {
                let norm = normalize_keyword(k.as_ref());
                let len =
                    self.snapshot.iter().map(|seg| seg.index.inverted().list_len(&norm)).sum();
                (norm, len)
            })
            .collect();
        QueryPlan { qpts: self.qpt_reports(), keyword_list_lengths }
    }

    /// [`Self::plan`], term-aware: each slot is labelled with the
    /// request's display form and sized by what the term actually reads —
    /// Word by its posting-list length, Prefix by the dictionary
    /// expansion's summed lengths (per segment, since each segment
    /// expands against its own dictionary), Phrase/Near by the rarest
    /// word's length (the selectivity that drives the position
    /// intersection).
    fn plan_for_terms(&self, request: &SearchRequest, terms: &ResolvedTerms) -> QueryPlan {
        let sum_len = |w: &str| -> usize {
            self.snapshot.iter().map(|seg| seg.index.inverted().list_len(w)).sum()
        };
        let keyword_list_lengths = request
            .keywords()
            .iter()
            .zip(terms.terms())
            .map(|(label, term)| {
                let len = match term {
                    QueryTerm::Word(w) => sum_len(w),
                    QueryTerm::Prefix(p) => self
                        .snapshot
                        .iter()
                        .map(|seg| {
                            let inv = seg.index.inverted();
                            inv.prefix_matches(p).iter().map(|w| inv.list_len(w)).sum::<usize>()
                        })
                        .sum(),
                    QueryTerm::Phrase(words) | QueryTerm::Near { words, .. } => {
                        words.iter().map(|w| sum_len(w)).min().unwrap_or(0)
                    }
                };
                (label.clone(), len)
            })
            .collect();
        QueryPlan { qpts: self.qpt_reports(), keyword_list_lengths }
    }
}

/// Collapse a phrase/proximity term's word list to its distinct words
/// plus an `instance_of` map (slot i of the original list is distinct
/// word `instance_of[i]`) — repeated words pin one list and decode its
/// positions once.
fn distinct_words(words: &[String]) -> (Vec<&String>, Vec<usize>) {
    let mut distinct: Vec<&String> = Vec::new();
    let mut instance_of = Vec::with_capacity(words.len());
    for w in words {
        match distinct.iter().position(|d| *d == w) {
            Some(i) => instance_of.push(i),
            None => {
                instance_of.push(distinct.len());
                distinct.push(w);
            }
        }
    }
    (distinct, instance_of)
}

/// Split one result item into a symbolic materialization plan: serialize
/// the constructed skeleton once, record where each base-data subtree
/// belongs. Executing the plan (in order) reproduces exactly what the
/// eager path serialized.
fn plan_segments(item: &vxv_xquery::Item<'_>) -> Vec<Segment> {
    let mut cuts: Vec<(usize, vxv_xml::DeweyId)> = Vec::new();
    let skeleton = serialize_item_with(item, &mut |doc, n, out| {
        cuts.push((out.len(), doc.node(n).dewey.clone()));
    });
    let mut segments = Vec::with_capacity(cuts.len() * 2 + 1);
    let mut prev = 0usize;
    for (offset, dewey) in cuts {
        if offset > prev {
            segments.push(Segment::Text(skeleton[prev..offset].to_string()));
            prev = offset;
        }
        segments.push(Segment::Fetch(dewey));
    }
    if prev < skeleton.len() {
        segments.push(Segment::Text(skeleton[prev..].to_string()));
    }
    segments
}

/// One probe the prepare phase issued for a QPT node.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The root-to-node path pattern sent to the path index.
    pub pattern: String,
    /// Number of predicates pushed into the probe.
    pub predicates: usize,
    /// Full data paths the pattern expands to in the owning segment's
    /// dictionary.
    pub expanded_paths: usize,
    /// Entries the plan holds for the projected document (relevant-list
    /// length, counted from block metadata without decoding interiors).
    pub entries: usize,
}

/// Query-plan introspection for one QPT.
#[derive(Clone, Debug)]
pub struct QptReport {
    /// The document this QPT projects.
    pub doc_name: String,
    /// Id of the index segment that owns the document.
    pub segment: u64,
    /// Pretty-printed QPT (axes, edges, annotations, predicates).
    pub rendered: String,
    /// Pattern nodes in the QPT.
    pub nodes: usize,
    /// The probes `PrepareLists` issued — proportional to the query.
    pub probes: Vec<ProbeReport>,
}

/// How a search over a prepared view is answered: the QPTs, the index
/// probes with their list sizes, and the keywords' inverted-list lengths.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// One report per base document the view references.
    pub qpts: Vec<QptReport>,
    /// Per-keyword inverted-list lengths, summed across segments (the
    /// paper's selectivity knob).
    pub keyword_list_lengths: Vec<(String, usize)>,
}
