//! [`PreparedView`] — a view analyzed once, searched many times.
//!
//! The paper's core claim is that per-query work should be proportional
//! to the *query*, not the data. Preparing a view takes that one step
//! further: the work proportional to the *view definition* — parsing,
//! QPT generation (`GenerateQPT`), and the `PrepareLists` probe phase
//! with its pattern expansion against the path dictionary — happens once,
//! at [`crate::engine::ViewSearchEngine::prepare`] time. Each subsequent
//! [`PreparedView::search`] pays only for what depends on the keywords:
//! the single-pass PDT merge, view evaluation over the PDTs, scoring, and
//! top-k materialization.
//!
//! A `PreparedView` is `Send + Sync`; clone-free concurrent searches from
//! many threads are the intended use (see the engine tests).

use crate::engine::{EngineError, ViewSearchEngine};
use crate::generate::{generate_pdt_from_lists, DocMeta};
use crate::pdt::Pdt;
use crate::prepare::{prepare_lists, PreparedLists};
use crate::qpt::Qpt;
use crate::qpt_gen::generate_qpts;
use crate::request::{PhaseTimings, SearchHit, SearchRequest, SearchResponse};
use crate::scoring::{score_and_rank, ElementStats, ScoringOutcome};
use std::collections::HashMap;
use std::time::Instant;
use vxv_index::tokenize::normalize_keyword;
use vxv_xml::DocumentSource;
use vxv_xquery::{
    item_byte_len_with, item_sum_with, serialize_item_with, Evaluator, MapSource, Query,
};

/// One QPT with everything its searches reuse: catalog metadata and the
/// cursor plan over the selected index rows (keyword-independent by
/// construction; entries stay compressed in the index until a search's
/// merge streams them).
#[derive(Debug)]
pub(crate) struct QptPlan {
    pub(crate) qpt: Qpt,
    pub(crate) meta: DocMeta,
    pub(crate) lists: PreparedLists,
}

/// A view with its analysis done: parse + QPT generation + index-probe
/// planning, ready to answer [`SearchRequest`]s.
pub struct PreparedView<'e, 'c, S: DocumentSource> {
    engine: &'e ViewSearchEngine<'c, S>,
    query: Query,
    plans: Vec<QptPlan>,
}

impl<S: DocumentSource> std::fmt::Debug for PreparedView<'_, '_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedView")
            .field("qpts", &self.plans.len())
            .field("probes", &self.probe_count())
            .field("source", &self.engine.source().kind())
            .finish_non_exhaustive()
    }
}

impl<'e, 'c, S: DocumentSource> PreparedView<'e, 'c, S> {
    /// Analyze `query` against `engine`'s indices. Called via
    /// [`ViewSearchEngine::prepare`] / [`ViewSearchEngine::prepare_query`].
    pub(crate) fn build(
        engine: &'e ViewSearchEngine<'c, S>,
        query: Query,
    ) -> Result<Self, EngineError> {
        let qpts = generate_qpts(&query)?;
        let mut plans = Vec::with_capacity(qpts.len());
        for qpt in qpts {
            // Root tag and ordinal are catalog metadata — present whether
            // the engine was built from a corpus or cold-opened from disk.
            let meta = engine
                .doc_meta(&qpt.doc_name)
                .cloned()
                .ok_or_else(|| EngineError::UnknownDocument(qpt.doc_name.clone()))?;
            let lists = prepare_lists(&qpt, engine.path_index(), meta.root_ordinal);
            plans.push(QptPlan { qpt, meta, lists });
        }
        Ok(PreparedView { engine, query, plans })
    }

    /// The engine this view was prepared against.
    pub fn engine(&self) -> &'e ViewSearchEngine<'c, S> {
        self.engine
    }

    /// The parsed view definition.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of base documents the view projects (= number of QPTs).
    pub fn qpt_count(&self) -> usize {
        self.plans.len()
    }

    /// Logical index probes planned at prepare time — one per probed QPT
    /// node, proportional to the query, never to the data. (A pattern
    /// that expands to several concrete data paths still counts once
    /// here; the path index's own `stats().probes` counter tracks the
    /// per-path scans.)
    pub fn probe_count(&self) -> usize {
        self.plans.iter().map(|p| p.lists.probes).sum()
    }

    /// Answer one keyword search. Only keyword-dependent work happens
    /// here; the view analysis is reused from prepare time.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse, EngineError> {
        let keywords: Vec<String> =
            request.keywords().iter().map(|s| normalize_keyword(s)).collect();

        // Phase 1: index-only PDTs from the prepared probe lists.
        let t0 = Instant::now();
        let inverted = self.engine.inverted_index();
        let mut pdts: Vec<Pdt> = Vec::with_capacity(self.plans.len());
        let mut pdt_stats = Vec::with_capacity(self.plans.len());
        for plan in &self.plans {
            let (pdt, stats) =
                generate_pdt_from_lists(&plan.qpt, &plan.lists, inverted, &keywords, &plan.meta);
            pdt_stats.push((plan.qpt.doc_name.clone(), stats, pdt.byte_size()));
            pdts.push(pdt);
        }
        let t_pdt = t0.elapsed();

        // Phase 2: the regular evaluator, redirected to the PDTs.
        let t1 = Instant::now();
        let source = MapSource::new(pdts.iter().map(|p| (p.doc_name.clone(), &p.doc)));
        let evaluator = Evaluator::new(&source, &self.query);
        let results = evaluator.eval_query(&self.query)?;
        let t_eval = t1.elapsed();

        // Phase 3: score from PDT annotations, rank, materialize top-k.
        let t2 = Instant::now();
        let by_name: HashMap<&str, &Pdt> = pdts.iter().map(|p| (p.doc_name.as_str(), p)).collect();
        let stats: Vec<ElementStats> = results
            .iter()
            .map(|item| {
                let tf: Vec<u32> = (0..keywords.len())
                    .map(|ki| {
                        item_sum_with(item, &mut |doc, n| {
                            by_name
                                .get(doc.name())
                                .map(|p| p.tf(&doc.node(n).dewey, ki) as u64)
                                .unwrap_or(0)
                        }) as u32
                    })
                    .collect();
                let byte_len = item_byte_len_with(item, &mut |doc, n| {
                    by_name
                        .get(doc.name())
                        .map(|p| p.byte_len(&doc.node(n).dewey) as u64)
                        .unwrap_or(0)
                });
                ElementStats { tf, byte_len }
            })
            .collect();
        let ScoringOutcome { top, matching, idf, view_size } =
            score_and_rank(&stats, request.keyword_mode(), request.k());

        let storage = self.engine.source();
        // Fetches are counted locally (not by diffing the source's global
        // counter) so concurrent searches on one source each report
        // exactly their own base-data work.
        let mut fetches = 0u64;
        let mut source_error: Option<vxv_xml::source::SourceError> = None;
        let mut hits: Vec<SearchHit> = Vec::with_capacity(top.len());
        for (i, scored) in top.into_iter().enumerate() {
            let xml = if request.materializes() {
                serialize_item_with(&results[scored.index], &mut |doc, n, out| match storage
                    .subtree_xml(&doc.node(n).dewey)
                {
                    Ok(Some(sub)) => {
                        fetches += 1;
                        out.push_str(&sub);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        if source_error.is_none() {
                            source_error = Some(e);
                        }
                    }
                })
            } else {
                String::new()
            };
            if let Some(e) = source_error.take() {
                return Err(EngineError::Source(e));
            }
            hits.push(SearchHit {
                rank: i + 1,
                score: scored.score,
                tf: scored.tf,
                byte_len: scored.byte_len,
                xml,
            });
        }
        let t_post = t2.elapsed();

        Ok(SearchResponse {
            hits,
            view_size,
            matching,
            idf,
            timings: request.collects_timings().then_some(PhaseTimings {
                pdt: t_pdt,
                evaluator: t_eval,
                post: t_post,
            }),
            pdt_stats,
            fetches,
            plan: request.wants_plan().then(|| self.plan(request.keywords())),
        })
    }

    /// The query plan: per-QPT probe reports from the cached prepare-time
    /// lists, plus the keywords' posting-list lengths — without running
    /// the query.
    pub fn plan<K: AsRef<str>>(&self, keywords: &[K]) -> QueryPlan {
        let qpts = self
            .plans
            .iter()
            .map(|plan| {
                let probes = plan
                    .lists
                    .lists
                    .iter()
                    .zip(&plan.lists.expanded_paths)
                    .map(|((q, node_plan), expanded)| ProbeReport {
                        expanded_paths: *expanded,
                        pattern: plan.qpt.pattern(*q).to_string(),
                        predicates: plan.qpt.node(*q).preds.len(),
                        entries: node_plan.entry_count(plan.meta.root_ordinal) as usize,
                    })
                    .collect();
                QptReport {
                    doc_name: plan.qpt.doc_name.clone(),
                    rendered: plan.qpt.to_string(),
                    nodes: plan.qpt.len(),
                    probes,
                }
            })
            .collect();
        let keyword_list_lengths = keywords
            .iter()
            .map(|k| {
                let norm = normalize_keyword(k.as_ref());
                let len = self.engine.inverted_index().list_len(&norm);
                (norm, len)
            })
            .collect();
        QueryPlan { qpts, keyword_list_lengths }
    }
}

/// One probe the prepare phase issued for a QPT node.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The root-to-node path pattern sent to the path index.
    pub pattern: String,
    /// Number of predicates pushed into the probe.
    pub predicates: usize,
    /// Full data paths the pattern expands to in the dictionary.
    pub expanded_paths: usize,
    /// Entries the plan holds for the projected document (relevant-list
    /// length, counted from block metadata without decoding interiors).
    pub entries: usize,
}

/// Query-plan introspection for one QPT.
#[derive(Clone, Debug)]
pub struct QptReport {
    /// The document this QPT projects.
    pub doc_name: String,
    /// Pretty-printed QPT (axes, edges, annotations, predicates).
    pub rendered: String,
    /// Pattern nodes in the QPT.
    pub nodes: usize,
    /// The probes `PrepareLists` issued — proportional to the query.
    pub probes: Vec<ProbeReport>,
}

/// How a search over a prepared view is answered: the QPTs, the index
/// probes with their list sizes, and the keywords' inverted-list lengths.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// One report per base document the view references.
    pub qpts: Vec<QptReport>,
    /// Per-keyword inverted-list lengths (the paper's selectivity knob).
    pub keyword_list_lengths: Vec<(String, usize)>,
}
