//! [`ViewCatalog`] — the service tier: named prepared views, shared,
//! **tenant-namespaced**.
//!
//! The paper makes view-proportional work a one-time cost; the catalog
//! makes that cost *shared*. A server owns one `ViewCatalog` (which owns
//! its engine — everything here is `Send + Sync + 'static`) and:
//!
//! * **registers** named views once — `catalog.register("reviews",
//!   view_text)` pays parse + QPT generation + probe planning a single
//!   time and parks the resulting [`PreparedView`] behind an `Arc`;
//! * **serves** any number of concurrent searches against them by name
//!   ([`ViewCatalog::search`]), each request carrying its own deadline /
//!   cancel token / output options;
//! * absorbs **ad-hoc** view texts through a capacity-bounded LRU
//!   ([`ViewCatalog::search_adhoc`]): repeated ad-hoc texts hit the
//!   cache, cold ones prepare and may evict the least-recently-used
//!   entry;
//! * **fans out batches** ([`ViewCatalog::search_batch`]) across a small
//!   worker pool, returning per-request results in order. Failures —
//!   including sheds ([`EngineError::Overloaded`]) and tripped deadlines
//!   — are **per-request**: one bad entry never poisons its siblings.
//!
//! ## Tenancy
//!
//! Every registration lives under a [`TenantId`], and the **tenant id
//! leads the lookup key** (`(tenant, name)` — the OceanBase system-table
//! idiom: tenancy in the key, not bolted on at the edge). The unscoped
//! methods ([`ViewCatalog::register`], [`ViewCatalog::search`], …) are
//! shorthand for the [`TenantId::public`] tenant, so single-tenant use
//! reads exactly as before. Per-tenant quotas
//! ([`crate::tenant::TenantQuotas`]) are enforced where the resource is
//! consumed: `max_views` at registration
//! ([`EngineError::QuotaExceeded`]), `max_concurrent` at search
//! admission ([`EngineError::Overloaded`] — shed, never queued, at this
//! layer; the serving tier adds the bounded queue). Every decision lands
//! in the tenant's atomic counters
//! ([`crate::tenant::TenantState::stats`]).
//!
//! Hit / miss / prepare counters ([`ViewCatalog::stats`]) make the cache
//! observable — the concurrency tests assert "prepared once" through
//! them.

use crate::engine::{EngineError, ViewSearchEngine};
use crate::prepared::PreparedView;
use crate::request::{SearchRequest, SearchResponse};
use crate::tenant::{TenantId, TenantQuotas, TenantRegistry, TenantState};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;
use vxv_xml::{Corpus, DocumentSource};

/// Default capacity of the ad-hoc LRU (distinct un-named view texts kept
/// prepared).
pub const DEFAULT_ADHOC_CAPACITY: usize = 32;

/// Backoff suggested to callers shed by a tenant's concurrent-search
/// quota (the catalog itself never queues; the serving tier's admission
/// queue computes its own, pressure-scaled value).
pub const QUOTA_RETRY_AFTER: Duration = Duration::from_millis(25);

/// One entry of a batch: which tenant and named view to search and with
/// what.
#[derive(Clone, Debug)]
pub struct NamedRequest {
    /// The tenant the view is registered under.
    pub tenant: TenantId,
    /// The registered view name.
    pub view: String,
    /// The per-search request.
    pub request: SearchRequest,
}

impl NamedRequest {
    /// Address `request` at the view registered under `view` by the
    /// public tenant.
    pub fn new(view: impl Into<String>, request: SearchRequest) -> Self {
        NamedRequest::for_tenant(TenantId::public(), view, request)
    }

    /// Address `request` at `tenant`'s view `view`.
    pub fn for_tenant(
        tenant: impl Into<TenantId>,
        view: impl Into<String>,
        request: SearchRequest,
    ) -> Self {
        NamedRequest { tenant: tenant.into(), view: view.into(), request }
    }
}

/// A snapshot of the catalog's observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Lookups that found a prepared view (named or ad-hoc).
    pub hits: u64,
    /// Lookups that found nothing (unknown name, or cold ad-hoc text).
    pub misses: u64,
    /// Times view analysis actually ran (`register` + cold ad-hoc).
    pub prepares: u64,
    /// Ad-hoc entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Named views re-prepared because the engine's segment-set epoch
    /// moved past the one they were prepared at.
    pub refreshes: u64,
    /// Currently registered named views, across all tenants.
    pub named: usize,
    /// Currently cached ad-hoc views.
    pub adhoc: usize,
}

struct AdhocEntry<S: DocumentSource> {
    /// Single-flight slot: exactly one thread prepares (outside the
    /// cache lock); racers for the same text block on the slot, traffic
    /// for other texts does not block at all. `None` marks a failed
    /// prepare (the entry is dropped by whoever observes it).
    slot: Arc<OnceLock<Option<Arc<PreparedView<S>>>>>,
    last_used: u64,
}

struct AdhocCache<S: DocumentSource> {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, AdhocEntry<S>>,
}

/// One named registration: the prepared view plus the original view
/// text, kept so the catalog can re-prepare when the engine's segment
/// set moves past the epoch the view was prepared at.
struct NamedEntry<S: DocumentSource> {
    text: String,
    view: Arc<PreparedView<S>>,
}

/// Tenant id leads every key, so one tenant's views form a contiguous
/// range and quota counting is a prefix scan.
type NamedViews<S> = BTreeMap<(TenantId, String), NamedEntry<S>>;

/// A registry of named [`PreparedView`]s over one shared engine,
/// namespaced by tenant; see the module docs.
pub struct ViewCatalog<S: DocumentSource = Corpus> {
    engine: ViewSearchEngine<S>,
    named: RwLock<NamedViews<S>>,
    /// Shared (`Arc`) so a sharded deployment can hand every shard's
    /// catalog the same tenant table — quotas and counters are
    /// per-tenant, never per-shard.
    tenants: Arc<TenantRegistry>,
    adhoc: Mutex<AdhocCache<S>>,
    /// Serializes epoch refreshes: one thread re-prepares a stale view,
    /// racers wait and pick up the fresh entry.
    refresh: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    prepares: AtomicU64,
    evictions: AtomicU64,
    refreshes: AtomicU64,
}

impl<S: DocumentSource> std::fmt::Debug for ViewCatalog<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ViewCatalog")
            .field("named", &stats.named)
            .field("adhoc", &stats.adhoc)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish_non_exhaustive()
    }
}

impl<S: DocumentSource> ViewCatalog<S> {
    /// A catalog over `engine` with the default ad-hoc capacity.
    pub fn new(engine: ViewSearchEngine<S>) -> Self {
        Self::with_adhoc_capacity(engine, DEFAULT_ADHOC_CAPACITY)
    }

    /// A catalog whose ad-hoc LRU keeps at most `capacity` prepared
    /// views (0 disables ad-hoc caching: every ad-hoc search prepares).
    pub fn with_adhoc_capacity(engine: ViewSearchEngine<S>, capacity: usize) -> Self {
        Self::with_registry(engine, Arc::new(TenantRegistry::new()), capacity)
    }

    /// A catalog sharing an **external** tenant registry — the sharded
    /// router gives every shard's catalog one registry so quotas and
    /// per-tenant counters stay global, not per-shard.
    pub fn with_registry(
        engine: ViewSearchEngine<S>,
        tenants: Arc<TenantRegistry>,
        capacity: usize,
    ) -> Self {
        ViewCatalog {
            engine,
            named: RwLock::new(BTreeMap::new()),
            tenants,
            adhoc: Mutex::new(AdhocCache { capacity, tick: 0, entries: HashMap::new() }),
            refresh: Mutex::new(()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// The shared engine the catalog prepares against.
    pub fn engine(&self) -> &ViewSearchEngine<S> {
        &self.engine
    }

    /// The tenant table: quotas and per-tenant counters. The serving
    /// tier shares these `Arc<TenantState>` handles so its admission
    /// queue and the catalog enforce the same numbers.
    pub fn tenants(&self) -> &TenantRegistry {
        &self.tenants
    }

    /// The tenant registry as a shareable handle (what
    /// [`Self::with_registry`] accepts).
    pub fn tenants_handle(&self) -> Arc<TenantRegistry> {
        Arc::clone(&self.tenants)
    }

    /// Shorthand: set `tenant`'s quotas (creating the tenant if new).
    pub fn set_tenant_quotas(&self, tenant: &TenantId, quotas: TenantQuotas) -> Arc<TenantState> {
        self.tenants.set_quotas(tenant, quotas)
    }

    /// Prepare `view_text` once and register it under the **public**
    /// tenant's `name`. See [`Self::register_for`].
    pub fn register(
        &self,
        name: impl Into<String>,
        view_text: &str,
    ) -> Result<Arc<PreparedView<S>>, EngineError> {
        self.register_for(&TenantId::public(), name, view_text)
    }

    /// Prepare `view_text` once and register it under `(tenant, name)`.
    /// Re-using a name replaces the previous view (existing `Arc`
    /// handles keep working) without consuming extra quota. A tenant at
    /// its `max_views` quota is refused with
    /// [`EngineError::QuotaExceeded`] **before** the prepare work runs.
    pub fn register_for(
        &self,
        tenant: &TenantId,
        name: impl Into<String>,
        view_text: &str,
    ) -> Result<Arc<PreparedView<S>>, EngineError> {
        let name = name.into();
        let max_views = self.tenants.tenant(tenant).quotas().max_views;
        {
            let named = self.named.read().unwrap();
            let held = self.tenant_view_count(&named, tenant);
            let replacing = named.contains_key(&(tenant.clone(), name.clone()));
            if !replacing && held >= max_views {
                return Err(EngineError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    quota: format!("max_views={max_views}"),
                });
            }
        }
        self.prepares.fetch_add(1, Ordering::Relaxed);
        let view = Arc::new(self.engine.prepare(view_text)?);
        // Re-check under the write lock: a racing register may have
        // consumed the last quota slot while this one prepared.
        let mut named = self.named.write().unwrap();
        let key = (tenant.clone(), name);
        if !named.contains_key(&key) && self.tenant_view_count(&named, tenant) >= max_views {
            return Err(EngineError::QuotaExceeded {
                tenant: tenant.to_string(),
                quota: format!("max_views={max_views}"),
            });
        }
        named.insert(key, NamedEntry { text: view_text.to_string(), view: Arc::clone(&view) });
        Ok(view)
    }

    fn tenant_view_count(&self, named: &NamedViews<S>, tenant: &TenantId) -> usize {
        named.range((tenant.clone(), String::new())..).take_while(|((t, _), _)| t == tenant).count()
    }

    /// The prepared view registered under the public tenant's `name`, if
    /// any. Counts a catalog hit or miss.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedView<S>>> {
        self.get_for(&TenantId::public(), name)
    }

    /// The prepared view registered under `(tenant, name)`, if any.
    /// Counts a catalog hit or miss.
    ///
    /// **Epoch refresh**: a registered view prepared at an older
    /// segment-set epoch than the engine's current one is re-prepared
    /// from its stored text before being returned, so name lookups
    /// always see documents appended/ingested since registration (and
    /// the result cache keys on a *live* epoch). Refreshes are
    /// single-flight — one thread prepares, racers wait and share the
    /// fresh view — and a failing re-prepare serves the stale view
    /// rather than failing reads.
    pub fn get_for(&self, tenant: &TenantId, name: &str) -> Option<Arc<PreparedView<S>>> {
        let key = (tenant.clone(), name.to_string());
        let found = {
            let named = self.named.read().unwrap();
            named.get(&key).map(|e| Arc::clone(&e.view))
        };
        let Some(view) = found else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        if view.epoch() == self.engine.epoch() {
            return Some(view);
        }

        // Stale: re-prepare under the refresh lock. Re-check after
        // acquiring it — the thread ahead of us may have done the work.
        let _flight = self.refresh.lock().unwrap();
        let text = {
            let named = self.named.read().unwrap();
            let entry = named.get(&key)?;
            if entry.view.epoch() == self.engine.epoch() {
                return Some(Arc::clone(&entry.view));
            }
            entry.text.clone()
        };
        match self.engine.prepare(&text) {
            Ok(fresh) => {
                let fresh = Arc::new(fresh);
                self.refreshes.fetch_add(1, Ordering::Relaxed);
                let mut named = self.named.write().unwrap();
                if let Some(entry) = named.get_mut(&key) {
                    entry.view = Arc::clone(&fresh);
                }
                Some(fresh)
            }
            // The engine moved in a way the view can no longer prepare
            // against (e.g. its document was dropped mid-flight): the
            // frozen snapshot still answers correctly for what it saw.
            Err(_) => Some(view),
        }
    }

    /// The public tenant's registered view names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.names_for(&TenantId::public())
    }

    /// `tenant`'s registered view names, sorted (a contiguous key range
    /// — the payoff of the tenant-leading key).
    pub fn names_for(&self, tenant: &TenantId) -> Vec<String> {
        self.named
            .read()
            .unwrap()
            .range((tenant.clone(), String::new())..)
            .take_while(|((t, _), _)| t == tenant)
            .map(|((_, name), _)| name.clone())
            .collect()
    }

    /// Every registration as `(tenant, name)`, sorted tenant-first.
    pub fn views(&self) -> Vec<(TenantId, String)> {
        self.named.read().unwrap().keys().cloned().collect()
    }

    /// Number of registered named views, across all tenants.
    pub fn len(&self) -> usize {
        self.named.read().unwrap().len()
    }

    /// True when no named view is registered (any tenant).
    pub fn is_empty(&self) -> bool {
        self.named.read().unwrap().is_empty()
    }

    /// Drop the public tenant's view `name`. See [`Self::evict_for`].
    pub fn evict(&self, name: &str) -> bool {
        self.evict_for(&TenantId::public(), name)
    }

    /// Drop `(tenant, name)`. Returns whether it existed. In-flight
    /// `Arc` handles stay valid; only the registration goes away.
    pub fn evict_for(&self, tenant: &TenantId, name: &str) -> bool {
        self.named.write().unwrap().remove(&(tenant.clone(), name.to_string())).is_some()
    }

    /// Search the public tenant's named view. See [`Self::search_for`].
    pub fn search(
        &self,
        name: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        self.search_for(&TenantId::public(), name, request)
    }

    /// Search `(tenant, name)` under the tenant's concurrency quota.
    ///
    /// [`EngineError::ViewNotFound`] if the name was never registered
    /// (or was evicted) for that tenant. A tenant already running
    /// `max_concurrent` searches is **shed immediately** with
    /// [`EngineError::Overloaded`] — the catalog never queues; callers
    /// that want bounded queueing put the serving tier's admission
    /// controller in front. Admitted / shed / completed /
    /// deadline-exceeded land in the tenant's counters.
    pub fn search_for(
        &self,
        tenant: &TenantId,
        name: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        let view = self
            .get_for(tenant, name)
            .ok_or_else(|| EngineError::ViewNotFound(name.to_string()))?;
        let state = self.tenants.tenant(tenant);
        let Some(_permit) = state.try_begin_search() else {
            state.record_shed();
            return Err(EngineError::Overloaded { retry_after: QUOTA_RETRY_AFTER });
        };
        state.record_admitted();
        // Named searches go through the engine's epoch-keyed result
        // cache: hot (tenant, view, request) shapes at the current
        // epoch are answered from memory, byte-identical to a fresh
        // search (the epoch in the key guarantees it).
        let result = view.search_cached(tenant, name, request);
        match &result {
            Ok(_) => state.record_completed(),
            Err(EngineError::DeadlineExceeded { .. }) => state.record_deadline_exceeded(),
            Err(_) => {}
        }
        result
    }

    /// Prepare-or-reuse an **ad-hoc** view text through the LRU: repeated
    /// texts share one prepared view, cold texts prepare (evicting the
    /// least-recently-used entry at capacity).
    ///
    /// Prepares are **single-flight per text** and run *outside* the
    /// cache lock: concurrent requests for one cold text share a single
    /// prepare, while traffic for other texts (hits or misses) is never
    /// blocked behind it.
    pub fn adhoc(&self, view_text: &str) -> Result<Arc<PreparedView<S>>, EngineError> {
        // Fast path under the lock: bump the LRU clock and grab (or
        // install) the text's single-flight slot. Nothing expensive
        // happens while the lock is held.
        let slot = {
            let mut cache = self.adhoc.lock().unwrap();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(view_text) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&entry.slot)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let slot = Arc::new(OnceLock::new());
                if cache.capacity > 0 {
                    if cache.entries.len() >= cache.capacity {
                        if let Some(lru) = cache
                            .entries
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, _)| k.clone())
                        {
                            cache.entries.remove(&lru);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    cache.entries.insert(
                        view_text.to_string(),
                        AdhocEntry { slot: Arc::clone(&slot), last_used: tick },
                    );
                }
                slot
            }
        };

        // Exactly one thread initializes the slot; racers for the same
        // text block here (not on the cache) and share the result.
        let mut my_error: Option<EngineError> = None;
        let prepared = slot.get_or_init(|| {
            self.prepares.fetch_add(1, Ordering::Relaxed);
            match self.engine.prepare(view_text) {
                Ok(view) => Some(Arc::new(view)),
                Err(e) => {
                    my_error = Some(e);
                    None
                }
            }
        });
        match prepared {
            Some(view) => Ok(Arc::clone(view)),
            None => {
                // The prepare failed. Drop the poisoned entry (only if it
                // is still this slot — a fresh retry may have replaced
                // it), then surface an error: the thread that ran the
                // prepare has the real one; observers re-derive theirs by
                // preparing directly, uncached.
                let mut cache = self.adhoc.lock().unwrap();
                if let Some(entry) = cache.entries.get(view_text) {
                    if Arc::ptr_eq(&entry.slot, &slot) {
                        cache.entries.remove(view_text);
                    }
                }
                drop(cache);
                match my_error {
                    Some(e) => Err(e),
                    None => {
                        self.prepares.fetch_add(1, Ordering::Relaxed);
                        self.engine.prepare(view_text).map(Arc::new)
                    }
                }
            }
        }
    }

    /// One-shot ad-hoc search through the LRU.
    pub fn search_adhoc(
        &self,
        view_text: &str,
        request: &SearchRequest,
    ) -> Result<SearchResponse, EngineError> {
        self.adhoc(view_text)?.search(request)
    }

    /// Execute a batch of named requests across a small worker pool,
    /// returning per-request results **in request order**. Failures are
    /// **typed and per-request** — a bad name
    /// ([`EngineError::ViewNotFound`]), a shed
    /// ([`EngineError::Overloaded`]) or a tripped deadline
    /// ([`EngineError::DeadlineExceeded`]) lands in that entry's slot
    /// and never poisons its neighbours. Entries run under their own
    /// tenant's concurrency quota. Single-request batches (and
    /// single-core hosts) run inline.
    pub fn search_batch(
        &self,
        requests: &[NamedRequest],
    ) -> Vec<Result<SearchResponse, EngineError>> {
        crate::fanout::fan_out(requests, |r| self.search_for(&r.tenant, &r.view, &r.request))
    }

    /// Counter snapshot; see [`CatalogStats`].
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            named: self.named.read().unwrap().len(),
            adhoc: self.adhoc.lock().unwrap().entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>1</isbn><title>xml search</title><year>2001</year></book>\
               <book><isbn>2</isbn><title>databases</title><year>1999</year></book>\
             </books>",
        )
        .unwrap();
        c
    }

    const VIEW_A: &str =
        "for $b in fn:doc(books.xml)/books/book where $b/year > 2000 return <a> { $b/title } </a>";
    const VIEW_B: &str =
        "for $b in fn:doc(books.xml)/books/book where $b/year > 1990 return <b> { $b/title } </b>";

    #[test]
    fn register_then_search_by_name() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        catalog.register("recent", VIEW_A).unwrap();
        let out = catalog.search("recent", &SearchRequest::new(["xml"])).unwrap();
        assert_eq!(out.matching, 1);
        assert!(out.hits[0].xml.contains("xml search"));
        let err = catalog.search("nope", &SearchRequest::new(["xml"])).unwrap_err();
        assert!(matches!(err, EngineError::ViewNotFound(_)), "{err}");
    }

    #[test]
    fn register_is_once_and_get_is_shared() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let registered = catalog.register("v", VIEW_A).unwrap();
        let got = catalog.get("v").unwrap();
        assert!(Arc::ptr_eq(&registered, &got), "same prepared view is shared");
        assert_eq!(catalog.stats().prepares, 1);
        let _ = catalog.get("v");
        assert_eq!(catalog.stats().hits, 2);
        assert!(catalog.get("missing").is_none());
        assert_eq!(catalog.stats().misses, 1);
    }

    #[test]
    fn list_and_evict() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        catalog.register("b", VIEW_B).unwrap();
        catalog.register("a", VIEW_A).unwrap();
        assert_eq!(catalog.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(catalog.len(), 2);
        assert!(catalog.evict("a"));
        assert!(!catalog.evict("a"));
        assert_eq!(catalog.names(), vec!["b".to_string()]);
    }

    #[test]
    fn tenants_are_namespaced_by_leading_key() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let acme = TenantId::new("acme");
        let beta = TenantId::new("beta");
        catalog.register_for(&acme, "recent", VIEW_A).unwrap();
        catalog.register_for(&beta, "recent", VIEW_B).unwrap();
        // Same name, different tenants: distinct views.
        let a = catalog.get_for(&acme, "recent").unwrap();
        let b = catalog.get_for(&beta, "recent").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(catalog.names_for(&acme), vec!["recent".to_string()]);
        assert_eq!(catalog.names(), Vec::<String>::new(), "public tenant holds nothing");
        assert_eq!(
            catalog.views(),
            vec![(acme.clone(), "recent".into()), (beta.clone(), "recent".into())]
        );
        // Eviction is tenant-scoped.
        assert!(catalog.evict_for(&acme, "recent"));
        assert!(catalog.get_for(&beta, "recent").is_some());
        // Search is tenant-scoped: acme's registration is gone.
        let err = catalog.search_for(&acme, "recent", &SearchRequest::new(["xml"])).unwrap_err();
        assert!(matches!(err, EngineError::ViewNotFound(_)), "{err}");
    }

    #[test]
    fn max_views_quota_refuses_registration_not_replacement() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let acme = TenantId::new("acme");
        catalog.set_tenant_quotas(&acme, TenantQuotas { max_views: 1, ..Default::default() });
        catalog.register_for(&acme, "one", VIEW_A).unwrap();
        let err = catalog.register_for(&acme, "two", VIEW_B).unwrap_err();
        assert!(
            matches!(&err, EngineError::QuotaExceeded { tenant, quota }
                if tenant == "acme" && quota == "max_views=1"),
            "{err}"
        );
        // Replacing the existing name consumes no quota.
        catalog.register_for(&acme, "one", VIEW_B).unwrap();
        // Other tenants are unaffected.
        catalog.register_for(&TenantId::new("beta"), "two", VIEW_B).unwrap();
    }

    #[test]
    fn zero_concurrency_quota_sheds_with_retry_after() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let starved = TenantId::new("starved");
        catalog.register_for(&starved, "v", VIEW_A).unwrap();
        catalog
            .set_tenant_quotas(&starved, TenantQuotas { max_concurrent: 0, ..Default::default() });
        let err = catalog.search_for(&starved, "v", &SearchRequest::new(["xml"])).unwrap_err();
        assert!(
            matches!(err, EngineError::Overloaded { retry_after } if retry_after > Duration::ZERO),
            "{err}"
        );
        let stats = catalog.tenants().tenant(&starved).stats();
        assert_eq!((stats.shed, stats.admitted, stats.completed), (1, 0, 0));
    }

    #[test]
    fn tenant_counters_track_outcomes() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        catalog.register("v", VIEW_A).unwrap();
        catalog.search("v", &SearchRequest::new(["xml"])).unwrap();
        // A different request shape (so the result cache can't answer
        // it instantly — deadlines are excluded from the cache key on
        // purpose) with an already-expired deadline.
        let err = catalog
            .search("v", &SearchRequest::new(["search"]).deadline(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded { .. }), "{err}");
        let stats = catalog.tenants().tenant(&TenantId::public()).stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.in_flight, 0, "permits released");
    }

    #[test]
    fn adhoc_cache_hits_on_repeat_and_evicts_lru() {
        let catalog = ViewCatalog::with_adhoc_capacity(ViewSearchEngine::new(corpus()), 2);
        let first = catalog.adhoc(VIEW_A).unwrap();
        let again = catalog.adhoc(VIEW_A).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(catalog.stats().prepares, 1);
        // Fill past capacity: A (LRU after B touches) gets evicted.
        catalog.adhoc(VIEW_B).unwrap();
        let view_c = "for $b in fn:doc(books.xml)/books/book return <c> { $b/isbn } </c>";
        catalog.adhoc(view_c).unwrap();
        assert_eq!(catalog.stats().adhoc, 2);
        assert_eq!(catalog.stats().evictions, 1);
        // A was evicted → re-preparing counts a new prepare.
        catalog.adhoc(VIEW_A).unwrap();
        assert_eq!(catalog.stats().prepares, 4);
    }

    #[test]
    fn batch_returns_results_in_request_order() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        catalog.register("a", VIEW_A).unwrap();
        catalog.register("b", VIEW_B).unwrap();
        let batch = vec![
            NamedRequest::new("b", SearchRequest::new(["databases"])),
            NamedRequest::new("missing", SearchRequest::new(["xml"])),
            NamedRequest::new("a", SearchRequest::new(["xml"])),
        ];
        let results = catalog.search_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().matching, 1);
        assert!(matches!(results[1], Err(EngineError::ViewNotFound(_))));
        assert_eq!(results[2].as_ref().unwrap().matching, 1);
        // Batch results equal sequential results.
        let seq = catalog.search("b", &SearchRequest::new(["databases"])).unwrap();
        let b = results[0].as_ref().unwrap();
        assert_eq!(b.hits.len(), seq.hits.len());
        for (x, y) in b.hits.iter().zip(&seq.hits) {
            assert_eq!(x.xml, y.xml);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn failed_adhoc_prepare_reports_and_does_not_poison_the_cache() {
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
        let bad = "for $x in fn:doc(zzz.xml)/a return $x";
        let err = catalog.adhoc(bad).unwrap_err();
        assert!(matches!(err, EngineError::ViewNotFound(_) | EngineError::UnknownDocument(_)));
        // The failed entry was dropped: retrying errors again (fresh
        // prepare), and valid texts are unaffected.
        let err = catalog.adhoc(bad).unwrap_err();
        assert!(matches!(err, EngineError::ViewNotFound(_) | EngineError::UnknownDocument(_)));
        assert!(catalog.adhoc(VIEW_A).is_ok());
        assert_eq!(catalog.stats().adhoc, 1, "only the good view is resident");
    }

    #[test]
    fn catalog_is_send_sync_static() {
        fn assert_service_grade<T: Send + Sync + 'static>() {}
        assert_service_grade::<ViewCatalog<Corpus>>();
        assert_service_grade::<ViewCatalog<vxv_xml::DiskStore>>();
        assert_service_grade::<NamedRequest>();
    }
}
