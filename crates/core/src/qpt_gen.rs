//! `GenerateQPT` — from a view definition to one QPT per base document
//! (paper §3.3 and Appendix B).
//!
//! The generator walks the view's AST producing *fragments*: partial twigs
//! rooted at a document, or at a variable whose binding is not yet known.
//! When a `for`/`let` binding is processed (innermost first), every
//! fragment rooted at its variable is grafted onto the leaf of the
//! binding's path fragment — the appendix's "bind the set of QPTs to the
//! variable" step. Annotation rules follow the appendix:
//!
//! * binding and `where` paths create **mandatory** edges (they restrict
//!   which elements are relevant at all); paths in `return` position
//!   create **optional** edges (a parent appears in the view output even
//!   when the optional content is absent);
//! * element constructors and sequences make the *top* edges of
//!   variable-rooted fragments optional (Fig. 24 lines 46–49) — this is
//!   what turns the outer side of a join key optional while the inner side
//!   stays mandatory, exactly as in Fig. 6(a);
//! * comparison-to-literal leaves get the predicate pushed into the index
//!   probe; path-to-path comparison leaves get the `v` annotation (both
//!   sides need materialized values for the join);
//! * `if` conditions may not restrict existence (the `else` branch still
//!   needs failing elements), so their fragments get optional edges and
//!   `v` annotations instead of pushed predicates — a deliberate, safe
//!   refinement of the appendix, which is silent on the point;
//! * content leaves (paths whose result reaches the output, and bare-`$v`
//!   returns) get the `c` annotation.

use crate::qpt::{Qpt, QptNodeId};
use std::collections::BTreeMap;
use std::fmt;
use vxv_index::{Axis, ValuePredicate};
use vxv_xquery::ast::{self, CompOp, Expr, FlworExpr, PathExpr, PathSource, Predicate, Query};

/// Error for views outside the supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QptGenError {
    /// Human-readable description of the unsupported construct.
    pub message: String,
}

impl fmt::Display for QptGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QPT generation error: {}", self.message)
    }
}

impl std::error::Error for QptGenError {}

fn err<T>(message: impl Into<String>) -> Result<T, QptGenError> {
    Err(QptGenError { message: message.into() })
}

/// What a fragment hangs off.
#[derive(Clone, PartialEq, Debug)]
enum FragSource {
    Doc(String),
    Var(String),
    /// `.` inside a bracket predicate — resolved by grafting onto the
    /// predicate's anchor node; must not survive to the top level.
    Context,
}

#[derive(Clone, Debug, Default)]
struct FNode {
    tag: String,
    preds: Vec<ValuePredicate>,
    v: bool,
    c: bool,
    children: Vec<FEdge>,
}

#[derive(Clone, Copy, Debug)]
struct FEdge {
    axis: Axis,
    mandatory: bool,
    child: usize,
}

/// A partial twig. `nodes[0]` is the source root (its `tag` is unused; its
/// annotations describe bare-source usages such as `where $x = 'v'`).
#[derive(Clone, Debug)]
struct Frag {
    source: FragSource,
    nodes: Vec<FNode>,
}

impl Frag {
    fn new(source: FragSource) -> Self {
        Frag { source, nodes: vec![FNode::default()] }
    }

    fn is_bare(&self) -> bool {
        self.nodes[0].children.is_empty()
    }

    fn add_node(&mut self, parent: usize, axis: Axis, mandatory: bool, tag: &str) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(FNode { tag: tag.to_string(), ..FNode::default() });
        self.nodes[parent].children.push(FEdge { axis, mandatory, child: idx });
        idx
    }

    /// Copy `sub`'s twig under `at`, merging `sub`'s root annotations into
    /// the target node (`c` only for bare fragments, per Fig. 24 ll.21-27).
    fn graft(&mut self, at: usize, sub: &Frag) {
        let sroot = &sub.nodes[0];
        self.nodes[at].v |= sroot.v;
        self.nodes[at].preds.extend(sroot.preds.iter().cloned());
        if sub.is_bare() {
            self.nodes[at].c |= sroot.c;
        }
        let edges = sroot.children.clone();
        for e in edges {
            let child = self.copy_subtree(sub, e.child);
            self.nodes[at].children.push(FEdge { axis: e.axis, mandatory: e.mandatory, child });
        }
    }

    fn copy_subtree(&mut self, sub: &Frag, idx: usize) -> usize {
        let src = sub.nodes[idx].clone();
        let new_idx = self.nodes.len();
        self.nodes.push(FNode {
            tag: src.tag,
            preds: src.preds,
            v: src.v,
            c: src.c,
            children: Vec::new(),
        });
        for e in src.children {
            let child = self.copy_subtree(sub, e.child);
            self.nodes[new_idx].children.push(FEdge {
                axis: e.axis,
                mandatory: e.mandatory,
                child,
            });
        }
        new_idx
    }

    /// Make top edges optional (constructor / sequence escape rule).
    fn optionalize_top(&mut self) {
        for e in &mut self.nodes[0].children {
            e.mandatory = false;
        }
    }
}

/// Edge discipline for the context a path appears in.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    /// `for`/`let` binding or `where` clause: mandatory edges.
    Restrict,
    /// `return` content: optional edges, leaf gets `c`.
    Output,
    /// `if` condition: optional edges, comparison leaves get `v`.
    Condition,
}

struct Gen<'q> {
    query: &'q Query,
    depth: u32,
}

const MAX_FN_DEPTH: u32 = 64;

impl<'q> Gen<'q> {
    /// Build a fragment for a path expression. Returns the fragment, the
    /// index of its leaf node, and any extra fragments produced by
    /// non-relative operands inside its bracket predicates.
    fn frag_from_path(
        &mut self,
        p: &PathExpr,
        mode: Mode,
    ) -> Result<(Frag, usize, Vec<Frag>), QptGenError> {
        let source = match &p.source {
            PathSource::Doc(d) => FragSource::Doc(d.clone()),
            PathSource::Var(v) => FragSource::Var(v.clone()),
            PathSource::ContextItem => FragSource::Context,
        };
        let mut frag = Frag::new(source);
        let mandatory = matches!(mode, Mode::Restrict);
        let mut leaf = 0usize;
        for step in &p.steps {
            let axis = convert_axis(step.axis);
            leaf = frag.add_node(leaf, axis, mandatory, &step.tag);
        }
        let mut extras = Vec::new();
        for pred in &p.predicates {
            // Bracket predicates always restrict the elements the path
            // addresses, regardless of the enclosing mode.
            self.apply_predicate(pred, Mode::Restrict, &mut frag, leaf, &mut extras)?;
        }
        Ok((frag, leaf, extras))
    }

    /// Handle one predicate whose relative (`.`-rooted) operands graft onto
    /// `anchor` within `frag`; var/doc-rooted operands become `extras`.
    fn apply_predicate(
        &mut self,
        pred: &Predicate,
        mode: Mode,
        frag: &mut Frag,
        anchor: usize,
        extras: &mut Vec<Frag>,
    ) -> Result<(), QptGenError> {
        match pred {
            Predicate::Exists(p) => {
                let (sub, leaf, sub_extras) = self.frag_from_path(p, mode)?;
                extras.extend(sub_extras);
                self.place_operand(sub, leaf, None, false, mode, frag, anchor, extras);
            }
            Predicate::CompareLiteral(p, op, lit) => {
                let (sub, leaf, sub_extras) = self.frag_from_path(p, mode)?;
                extras.extend(sub_extras);
                if mode == Mode::Condition {
                    // Cannot push the predicate: the else-branch still
                    // needs elements that fail it. Materialize the value.
                    self.place_operand(sub, leaf, None, true, mode, frag, anchor, extras);
                } else {
                    let vp = to_value_predicate(*op, &lit.as_atomic());
                    self.place_operand(sub, leaf, Some(vp), false, mode, frag, anchor, extras);
                }
            }
            Predicate::ComparePaths(l, op, r) => {
                let _ = op;
                for side in [l, r] {
                    let (sub, leaf, sub_extras) = self.frag_from_path(side, mode)?;
                    extras.extend(sub_extras);
                    // Both operands of a value join need values (Fig. 22
                    // ll.42-45).
                    self.place_operand(sub, leaf, None, true, mode, frag, anchor, extras);
                }
            }
        }
        Ok(())
    }

    /// Attach a predicate-operand fragment: relative operands graft onto
    /// the anchor; var/doc-rooted operands are emitted as free fragments.
    #[allow(clippy::too_many_arguments)]
    fn place_operand(
        &mut self,
        mut sub: Frag,
        sub_leaf: usize,
        leaf_pred: Option<ValuePredicate>,
        leaf_v: bool,
        mode: Mode,
        frag: &mut Frag,
        anchor: usize,
        extras: &mut Vec<Frag>,
    ) {
        sub.nodes[sub_leaf].v |= leaf_v;
        if let Some(p) = leaf_pred {
            sub.nodes[sub_leaf].preds.push(p);
        }
        if mode == Mode::Condition {
            sub.optionalize_top();
        }
        match sub.source {
            FragSource::Context => frag.graft(anchor, &sub),
            _ => extras.push(sub),
        }
    }

    /// Generate fragments for an expression in `mode`.
    fn gen_expr(&mut self, expr: &Expr, mode: Mode) -> Result<Vec<Frag>, QptGenError> {
        match expr {
            Expr::Path(p) => {
                let (mut frag, leaf, extras) = self.frag_from_path(p, mode)?;
                if mode == Mode::Output {
                    if leaf == 0 {
                        frag.nodes[0].c = true; // bare `$v` return
                    } else {
                        frag.nodes[leaf].c = true;
                    }
                }
                let mut out = vec![frag];
                out.extend(extras);
                Ok(out)
            }
            Expr::Flwor(f) => self.gen_flwor(f),
            Expr::Cond { cond, then_branch, else_branch } => {
                let mut frags = Vec::new();
                // Condition fragments: c=false everywhere, optional edges,
                // values materialized for comparisons.
                let mut dummy = Frag::new(FragSource::Context);
                let mut extras = Vec::new();
                self.apply_predicate(cond, Mode::Condition, &mut dummy, 0, &mut extras)?;
                if !dummy.is_bare() || dummy.nodes[0].v || !dummy.nodes[0].preds.is_empty() {
                    return err("context item '.' used in an if-condition outside a predicate");
                }
                frags.extend(extras);
                frags.extend(self.gen_expr(then_branch, mode)?);
                frags.extend(self.gen_expr(else_branch, mode)?);
                Ok(frags)
            }
            Expr::Element { content, .. } => {
                let mut frags = Vec::new();
                for cexpr in content {
                    frags.extend(self.gen_expr(cexpr, Mode::Output)?);
                }
                // Escape rule: var-rooted fragments' top edges go optional.
                for f in &mut frags {
                    if matches!(f.source, FragSource::Var(_)) {
                        f.optionalize_top();
                    }
                }
                Ok(frags)
            }
            Expr::Sequence(es) => {
                let mut frags = Vec::new();
                for e in es {
                    frags.extend(self.gen_expr(e, mode)?);
                }
                for f in &mut frags {
                    if matches!(f.source, FragSource::Var(_)) {
                        f.optionalize_top();
                    }
                }
                Ok(frags)
            }
            Expr::FunctionCall { name, args } => {
                if self.depth >= MAX_FN_DEPTH {
                    return err(format!("recursive function '{name}' is not supported"));
                }
                let Some(func) = self.query.function(name) else {
                    return err(format!("undefined function '{name}'"));
                };
                if func.params.len() != args.len() {
                    return err(format!("function '{name}' arity mismatch"));
                }
                self.depth += 1;
                let mut frags = self.gen_expr(&func.body, mode)?;
                self.depth -= 1;
                // Bind parameters like let clauses, innermost first.
                for (param, arg) in func.params.iter().zip(args).rev() {
                    frags = self.bind_var(frags, param, arg)?;
                }
                Ok(frags)
            }
        }
    }

    fn gen_flwor(&mut self, f: &FlworExpr) -> Result<Vec<Frag>, QptGenError> {
        let mut frags = Vec::new();
        // Where clauses (Fig. 24 ll.6-10): restrictive, no content.
        for w in &f.where_clauses {
            let mut dummy = Frag::new(FragSource::Context);
            let mut extras = Vec::new();
            self.apply_predicate(w, Mode::Restrict, &mut dummy, 0, &mut extras)?;
            if !dummy.is_bare() || dummy.nodes[0].v || !dummy.nodes[0].preds.is_empty() {
                return err("context item '.' used in a where clause");
            }
            frags.extend(extras);
        }
        // Return expression (Fig. 24 ll.11-12).
        frags.extend(self.gen_expr(&f.return_expr, Mode::Output)?);
        // Bindings, innermost (last) first (Fig. 24 ll.13-35).
        for b in f.bindings.iter().rev() {
            frags = self.bind_var(frags, &b.var, &b.expr)?;
            let _ = b.kind; // `for` and `let` bind identically for QPTs.
        }
        Ok(frags)
    }

    /// Graft every fragment rooted at `$var` onto the leaf of the binding
    /// path `expr`; keep the rest.
    fn bind_var(
        &mut self,
        frags: Vec<Frag>,
        var: &str,
        expr: &PathExpr,
    ) -> Result<Vec<Frag>, QptGenError> {
        let (mut path_frag, leaf, extras) = self.frag_from_path(expr, Mode::Restrict)?;
        let mut rest = Vec::new();
        for fr in frags {
            if fr.source == FragSource::Var(var.to_string()) {
                path_frag.graft(leaf, &fr);
            } else {
                rest.push(fr);
            }
        }
        let mut out = vec![path_frag];
        out.extend(rest);
        out.extend(extras);
        Ok(out)
    }
}

fn convert_axis(a: ast::Axis) -> Axis {
    match a {
        ast::Axis::Child => Axis::Child,
        ast::Axis::Descendant => Axis::Descendant,
    }
}

fn to_value_predicate(op: CompOp, value: &str) -> ValuePredicate {
    match op {
        CompOp::Eq => ValuePredicate::Eq(value.to_string()),
        CompOp::Lt => ValuePredicate::Lt(value.to_string()),
        CompOp::Gt => ValuePredicate::Gt(value.to_string()),
    }
}

/// Generate one QPT per referenced base document.
///
/// Errors on views that reference unbound variables or use `.` outside
/// bracket predicates (the constructs the supported grammar excludes).
pub fn generate_qpts(query: &Query) -> Result<Vec<Qpt>, QptGenError> {
    let mut gen = Gen { query, depth: 0 };
    let frags = gen.gen_expr(&query.body, Mode::Output)?;
    let mut by_doc: BTreeMap<String, Vec<Frag>> = BTreeMap::new();
    for f in frags {
        match &f.source {
            FragSource::Doc(d) => by_doc.entry(d.clone()).or_default().push(f),
            FragSource::Var(v) => return err(format!("unbound variable '${v}' in view")),
            FragSource::Context => return err("context item '.' used outside a predicate"),
        }
    }
    let mut out = Vec::new();
    for (doc, frags) in by_doc {
        let mut qpt = Qpt::new(doc);
        for f in &frags {
            for e in &f.nodes[0].children {
                merge_into_qpt(&mut qpt, None, f, *e);
            }
        }
        out.push(qpt);
    }
    Ok(out)
}

/// Merge one fragment edge (and its subtree) into the QPT under `parent`,
/// reusing an existing node when tag, axis, edge kind and predicates all
/// agree (so twigs grafted onto a shared spine stay a single twig).
fn merge_into_qpt(qpt: &mut Qpt, parent: Option<QptNodeId>, frag: &Frag, edge: FEdge) {
    let fnode = &frag.nodes[edge.child];
    let existing = match parent {
        Some(p) => qpt
            .node(p)
            .children
            .iter()
            .find(|e| {
                e.axis == edge.axis
                    && e.mandatory == edge.mandatory
                    && qpt.node(e.child).tag == fnode.tag
                    && qpt.node(e.child).preds == fnode.preds
            })
            .map(|e| e.child),
        None => qpt.roots().iter().copied().find(|r| {
            let n = qpt.node(*r);
            n.incoming_axis == edge.axis
                && n.incoming_mandatory == edge.mandatory
                && n.tag == fnode.tag
                && n.preds == fnode.preds
        }),
    };
    let id = match existing {
        Some(id) => id,
        None => {
            let id = qpt.add_node(parent, edge.axis, edge.mandatory, &fnode.tag);
            qpt.node_mut(id).preds = fnode.preds.clone();
            id
        }
    };
    qpt.node_mut(id).v_ann |= fnode.v;
    qpt.node_mut(id).c_ann |= fnode.c;
    for e in &fnode.children {
        merge_into_qpt(qpt, Some(id), frag, *e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vxv_xquery::parse_query;

    fn qpts_for(src: &str) -> Vec<Qpt> {
        generate_qpts(&parse_query(src).unwrap()).unwrap()
    }

    fn find<'a>(q: &'a Qpt, tag: &str) -> (&'a Qpt, QptNodeId) {
        let id = q.node_ids().find(|id| q.node(*id).tag == tag).unwrap();
        (q, id)
    }

    /// The running example of Fig. 2, expected to produce the QPTs of
    /// Fig. 6(a).
    #[test]
    fn running_example_matches_fig6a() {
        let qpts = qpts_for(
            "for $book in fn:doc(books.xml)/books//book \
             where $book/year > 1995 \
             return <bookrevs> \
               { <book> {$book/title} </book> } \
               { for $rev in fn:doc(reviews.xml)/reviews//review \
                 where $rev/isbn = $book/isbn \
                 return $rev/content } \
             </bookrevs>",
        );
        assert_eq!(qpts.len(), 2);
        let bq = &qpts[0];
        assert_eq!(bq.doc_name, "books.xml");

        // Spine: /books//book, both mandatory.
        let (_, book) = find(bq, "book");
        assert!(bq.node(book).incoming_mandatory);
        assert_eq!(bq.node(book).incoming_axis, Axis::Descendant);

        // year: mandatory edge, predicate > 1995, no v (pushed to index).
        let (_, year) = find(bq, "year");
        assert!(bq.node(year).incoming_mandatory, "{bq}");
        assert_eq!(bq.node(year).preds, vec![ValuePredicate::Gt("1995".into())]);
        assert!(!bq.node(year).v_ann);

        // isbn: OPTIONAL edge (outer join side), v-annotated.
        let (_, isbn) = find(bq, "isbn");
        assert!(!bq.node(isbn).incoming_mandatory, "{bq}");
        assert!(bq.node(isbn).v_ann);

        // title: optional edge, c-annotated.
        let (_, title) = find(bq, "title");
        assert!(!bq.node(title).incoming_mandatory);
        assert!(bq.node(title).c_ann);

        let rq = &qpts[1];
        assert_eq!(rq.doc_name, "reviews.xml");
        // review isbn: MANDATORY (inner join side), v-annotated.
        let (_, risbn) = find(rq, "isbn");
        assert!(rq.node(risbn).incoming_mandatory, "{rq}");
        assert!(rq.node(risbn).v_ann);
        // content: c-annotated.
        let (_, content) = find(rq, "content");
        assert!(rq.node(content).c_ann);
    }

    #[test]
    fn bare_var_return_propagates_c_to_binding_leaf() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r//item return $b");
        let q = &qpts[0];
        let (_, item) = find(q, "item");
        assert!(q.node(item).c_ann, "{q}");
    }

    #[test]
    fn bracket_predicates_become_mandatory_twig_branches() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r/item[year > 2000] return $b/name");
        let q = &qpts[0];
        let (_, year) = find(q, "year");
        assert!(q.node(year).incoming_mandatory);
        assert_eq!(q.node(year).preds, vec![ValuePredicate::Gt("2000".into())]);
        let (_, name) = find(q, "name");
        assert!(!q.node(name).incoming_mandatory);
        assert!(q.node(name).c_ann);
    }

    #[test]
    fn where_exists_is_mandatory_without_annotations() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r/item where $b/flag return $b/name");
        let q = &qpts[0];
        let (_, flag) = find(q, "flag");
        assert!(q.node(flag).incoming_mandatory);
        assert!(!q.node(flag).v_ann && !q.node(flag).c_ann && q.node(flag).preds.is_empty());
    }

    #[test]
    fn condition_fragments_are_optional_with_values() {
        let qpts = qpts_for(
            "for $b in fn:doc(d.xml)/r/item \
             return if ($b/price > 10) then $b/name else $b/id",
        );
        let q = &qpts[0];
        let (_, price) = find(q, "price");
        assert!(!q.node(price).incoming_mandatory, "{q}");
        assert!(q.node(price).v_ann, "condition values must be materialized");
        assert!(q.node(price).preds.is_empty(), "predicate must not be pushed");
        let (_, name) = find(q, "name");
        assert!(q.node(name).c_ann);
        let (_, id) = find(q, "id");
        assert!(q.node(id).c_ann);
    }

    #[test]
    fn chained_variable_bindings_compose() {
        let qpts = qpts_for(
            "for $r in fn:doc(d.xml)/catalog for $i in $r/section//item \
             where $i/price > 5 return $i/name",
        );
        let q = &qpts[0];
        assert_eq!(q.len(), 5, "{q}"); // catalog, section, item, price, name
        let (_, item) = find(q, "item");
        let chain: Vec<&str> = q.chain(item).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(chain, vec!["catalog", "section", "item"]);
    }

    #[test]
    fn functions_inline_like_let_bindings() {
        let qpts = qpts_for(
            "declare function nm($x) { $x/name } \
             for $i in fn:doc(d.xml)/r/item return nm($i)",
        );
        let q = &qpts[0];
        let (_, name) = find(q, "name");
        assert!(q.node(name).c_ann, "{q}");
        let chain: Vec<&str> = q.chain(name).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(chain, vec!["r", "item", "name"]);
    }

    #[test]
    fn shared_spines_merge_into_one_twig() {
        let qpts = qpts_for(
            "for $b in fn:doc(d.xml)/r/item where $b/x > 1 and $b/y = 'q' \
             return <o> { $b/z } </o>",
        );
        let q = &qpts[0];
        // r, item, x, y, z — not three separate item spines.
        assert_eq!(q.len(), 5, "{q}");
    }

    #[test]
    fn unbound_variables_are_rejected() {
        let e = generate_qpts(&parse_query("for $b in $nope/x return $b").unwrap()).unwrap_err();
        assert!(e.message.contains("unbound"), "{e}");
    }

    #[test]
    fn multiple_docs_produce_multiple_qpts() {
        let qpts = qpts_for(
            "for $a in fn:doc(a.xml)/r/x for $b in fn:doc(b.xml)/s/y \
             where $a/k = $b/k return <o> { $a/v } </o>",
        );
        assert_eq!(qpts.len(), 2);
        assert_eq!(qpts[0].doc_name, "a.xml");
        assert_eq!(qpts[1].doc_name, "b.xml");
    }

    #[test]
    fn recursive_functions_are_rejected() {
        let e =
            generate_qpts(&parse_query("declare function f($x) { f($x) } f(fn:doc(d)/r)").unwrap())
                .unwrap_err();
        assert!(e.message.contains("recursive"), "{e}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use vxv_xquery::parse_query;

    fn qpts_for(src: &str) -> Vec<Qpt> {
        generate_qpts(&parse_query(src).unwrap()).unwrap()
    }

    fn node<'a>(q: &'a Qpt, tag: &str) -> &'a crate::qpt::QptNode {
        let id = q.node_ids().find(|id| q.node(*id).tag == tag).unwrap();
        q.node(id)
    }

    #[test]
    fn let_bindings_graft_like_for() {
        let qpts = qpts_for(
            "let $items := fn:doc(d.xml)/r/list \
             for $i in $items/item where $i/p > 3 return $i/name",
        );
        let q = &qpts[0];
        let item = q.node_ids().find(|id| q.node(*id).tag == "item").unwrap();
        let chain: Vec<&str> = q.chain(item).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(chain, vec!["r", "list", "item"], "{q}");
        assert!(node(q, "p").incoming_mandatory);
        assert!(node(q, "name").c_ann);
    }

    #[test]
    fn equality_and_range_predicates_both_push_down() {
        let qpts = qpts_for(
            "for $b in fn:doc(d.xml)/r/item where $b/cat = 'tools' and $b/price < 100 \
             return $b/name",
        );
        let q = &qpts[0];
        assert_eq!(node(q, "cat").preds, vec![ValuePredicate::Eq("tools".into())]);
        assert_eq!(node(q, "price").preds, vec![ValuePredicate::Lt("100".into())]);
        assert!(!node(q, "cat").v_ann, "pushed predicates need no v annotation");
    }

    #[test]
    fn sequences_in_returns_optionalize_var_fragments() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r/item return ($b/name, $b/id)");
        let q = &qpts[0];
        assert!(!node(q, "name").incoming_mandatory, "{q}");
        assert!(!node(q, "id").incoming_mandatory, "{q}");
        assert!(node(q, "name").c_ann && node(q, "id").c_ann);
    }

    #[test]
    fn plain_path_return_edges_are_optional() {
        // Output-position paths always get optional edges (matching
        // Fig. 6(a), where review→content is dotted): an item without a
        // name stays in the PDT. That is a safe superset — the evaluator
        // simply produces nothing from it — and keeps the annotation rule
        // uniform whether or not a constructor wraps the return.
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r/item return $b/name");
        let q = &qpts[0];
        assert!(!node(q, "name").incoming_mandatory, "{q}");
        assert!(node(q, "name").c_ann);
    }

    #[test]
    fn multi_parameter_functions_bind_each_argument() {
        let qpts = qpts_for(
            "declare function pick($a, $b) { <p> { $a/name } { $b/title } </p> } \
             for $x in fn:doc(d.xml)/r/item for $y in fn:doc(d.xml)/r/article \
             return pick($x, $y)",
        );
        let q = &qpts[0];
        let name = q.node_ids().find(|id| q.node(*id).tag == "name").unwrap();
        let chain: Vec<&str> = q.chain(name).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(chain, vec!["r", "item", "name"], "{q}");
        let title = q.node_ids().find(|id| q.node(*id).tag == "title").unwrap();
        let chain: Vec<&str> = q.chain(title).iter().map(|id| q.node(*id).tag.as_str()).collect();
        assert_eq!(chain, vec!["r", "article", "title"]);
    }

    #[test]
    fn exists_predicate_in_brackets_restricts() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)/r/item[flag] return $b/name");
        let q = &qpts[0];
        assert!(node(q, "flag").incoming_mandatory);
        assert!(!node(q, "flag").v_ann && node(q, "flag").preds.is_empty());
    }

    #[test]
    fn top_level_descendant_axis_is_preserved() {
        let qpts = qpts_for("for $b in fn:doc(d.xml)//item return $b/name");
        let q = &qpts[0];
        let item = q.roots()[0];
        assert_eq!(q.node(item).incoming_axis, Axis::Descendant);
        assert_eq!(q.node(item).tag, "item");
    }

    #[test]
    fn join_inside_same_flwor_keeps_both_sides_mandatory() {
        // Without an intervening constructor, both join sides restrict.
        let qpts = qpts_for(
            "for $a in fn:doc(x.xml)/r/a for $b in fn:doc(y.xml)/s/b \
             where $a/k = $b/k return $a/v",
        );
        let xq = qpts.iter().find(|q| q.doc_name == "x.xml").unwrap();
        let yq = qpts.iter().find(|q| q.doc_name == "y.xml").unwrap();
        assert!(node(xq, "k").incoming_mandatory, "{xq}");
        assert!(node(yq, "k").incoming_mandatory, "{yq}");
        assert!(node(xq, "k").v_ann && node(yq, "k").v_ann);
    }
}
