//! Epoch-keyed result caching for hot searches.
//!
//! Under real traffic the same few (view, keyword-set) pairs dominate —
//! Zipf-head requests recompute identical responses from postings over
//! and over. The [`ResultCache`] short-circuits that: a completed
//! [`crate::SearchResponse`] is stored under a key that includes the
//! engine's **segment-set epoch**, the monotone counter every
//! ingest/append/flush/compact swap bumps. Invalidation is therefore
//! implicit and race-free: a swapped set means a new epoch means every
//! old entry simply stops being addressable — a hit can only ever
//! return a response computed against the exact segment set the caller
//! is searching, so cached hits are byte-identical (hits, score bits,
//! order) to a fresh search at that epoch.
//!
//! The cache is bounded in **bytes** (responses carry materialized XML;
//! counting entries would let a few fat views evict everything) with
//! LRU replacement, and capacity `0` disables it entirely. Counters
//! (hits / misses / inserts / evictions / stale purges, plus the
//! prepared views' pinned-probe counters) surface in
//! [`crate::EngineStats::cache`] so operators can see hit ratios next
//! to every other engine number — a zeroed hit counter under Zipfian
//! load is a regression the bench gate fails on.

use crate::request::{SearchRequest, SearchResponse};
use crate::tenant::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default result-cache capacity in bytes (per engine / shard).
pub const DEFAULT_RESULT_CACHE_BYTES: u64 = 32 << 20;

/// Cache key: who asked, what they asked, and against which segment-set
/// epoch. Tenant leads (the same leading-key discipline the catalog
/// uses), the request collapses to a fingerprint, and the epoch makes
/// every set swap an implicit invalidation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The registered view name the request ran against.
    pub view: String,
    /// [`request_fingerprint`] of the search request.
    pub fingerprint: u64,
    /// The engine's segment-set epoch the response was computed at.
    pub epoch: u64,
}

/// Counter snapshot (see [`crate::EngineStats::cache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Responses served from the cache.
    pub hits: u64,
    /// Lookups that found no entry at the current epoch.
    pub misses: u64,
    /// Responses stored.
    pub inserts: u64,
    /// Entries evicted by the byte-capacity LRU.
    pub evictions: u64,
    /// Dead-epoch entries purged after a segment-set swap.
    pub stale: u64,
    /// Entries resident right now (gauge).
    pub entries: u64,
    /// Bytes resident right now (gauge).
    pub bytes: u64,
    /// Capacity in bytes (0 = disabled).
    pub capacity: u64,
    /// Pinned posting-list reuses inside prepared views (dictionary
    /// re-seeks skipped).
    pub probe_hits: u64,
    /// Pinned posting-list resolutions (first touch per view epoch).
    pub probe_misses: u64,
}

/// FNV-1a fingerprint of everything in a [`SearchRequest`] that can
/// change the response bytes. Deadline and cancel tokens are excluded:
/// they bound *when* a search aborts, never what a completed response
/// contains. Terms are tagged by kind before their words, so a phrase
/// never collides with the same words as a bag (`"xml search"` ≠
/// `["xml", "search"]`), and boosts contribute their exact bit
/// patterns.
pub fn request_fingerprint(request: &SearchRequest) -> u64 {
    use crate::term::QueryTerm;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for term in request.terms() {
        match term {
            QueryTerm::Word(w) => {
                eat(&[0]);
                eat(w.as_bytes());
                eat(&[0xff]);
            }
            QueryTerm::Prefix(p) => {
                eat(&[1]);
                eat(p.as_bytes());
                eat(&[0xff]);
            }
            QueryTerm::Phrase(words) => {
                eat(&[2]);
                for w in words {
                    eat(w.as_bytes());
                    eat(&[0xff]);
                }
                eat(&[0xfe]);
            }
            QueryTerm::Near { window, words } => {
                eat(&[3]);
                eat(&window.to_le_bytes());
                for w in words {
                    eat(w.as_bytes());
                    eat(&[0xff]);
                }
                eat(&[0xfe]);
            }
        }
    }
    for boost in request.boosts() {
        eat(&boost.to_bits().to_le_bytes());
    }
    eat(&(request.k() as u64).to_le_bytes());
    eat(&[
        match request.keyword_mode() {
            crate::scoring::KeywordMode::Conjunctive => 0,
            crate::scoring::KeywordMode::Disjunctive => 1,
        },
        request.materializes() as u8,
        request.collects_timings() as u8,
        request.wants_plan() as u8,
        request.prunes() as u8,
    ]);
    h
}

/// Approximate resident size of a cached response: the strings it owns
/// plus a fixed per-hit / per-entry overhead for the fixed-size fields.
fn response_bytes(response: &SearchResponse) -> u64 {
    let mut bytes = 256u64;
    for hit in &response.hits {
        bytes += hit.xml.len() as u64 + hit.tf.len() as u64 * 4 + 64;
    }
    for (name, _, _) in &response.pdt_stats {
        bytes += name.len() as u64 + 80;
    }
    bytes += response.idf.len() as u64 * 8;
    bytes
}

struct Entry {
    response: Arc<SearchResponse>,
    bytes: u64,
    /// LRU clock value of the last touch.
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    bytes: u64,
    tick: u64,
}

/// The byte-bounded, epoch-keyed LRU result cache. One per engine
/// (shared by every clone through the segment state); all methods take
/// `&self` and are safe under concurrent searches.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("capacity", &stats.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::with_capacity(DEFAULT_RESULT_CACHE_BYTES)
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` bytes of responses (0
    /// disables caching: every get misses, every insert is dropped).
    pub fn with_capacity(capacity: u64) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity: AtomicU64::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            probe_hits: AtomicU64::new(0),
            probe_misses: AtomicU64::new(0),
        }
    }

    /// Change the byte capacity. Shrinking (or disabling with 0) evicts
    /// immediately.
    pub fn set_capacity(&self, capacity: u64) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        self.evict_to_fit(&mut inner, capacity);
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Look up a response for `key`, refreshing its LRU position.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<SearchResponse>> {
        if self.capacity() == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.response))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a completed response under `key`, evicting LRU entries
    /// until the cache fits its capacity. A response bigger than the
    /// whole capacity is not stored.
    pub fn insert(&self, key: CacheKey, response: Arc<SearchResponse>) {
        let capacity = self.capacity();
        if capacity == 0 {
            return;
        }
        let bytes = response_bytes(&response);
        if bytes > capacity {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(key, Entry { response, bytes, tick });
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evict_to_fit(&mut inner, capacity);
    }

    /// Purge every entry whose epoch predates `epoch` — called by the
    /// engine right after a segment-set swap. Old-epoch keys could never
    /// be *hit* again anyway (the key no longer forms); this frees their
    /// bytes eagerly instead of waiting for LRU pressure.
    pub fn invalidate_below(&self, epoch: u64) {
        let mut inner = self.inner.lock().unwrap();
        let dead: Vec<CacheKey> = inner.map.keys().filter(|k| k.epoch < epoch).cloned().collect();
        for key in dead {
            if let Some(entry) = inner.map.remove(&key) {
                inner.bytes -= entry.bytes;
                self.stale.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop everything (counters keep accumulating).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        inner.bytes = 0;
        self.stale.fetch_add(dropped, Ordering::Relaxed);
    }

    fn evict_to_fit(&self, inner: &mut Inner, capacity: u64) {
        while inner.bytes > capacity {
            let Some(victim) = inner.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record one pinned-probe cache hit (a prepared view reused a
    /// pinned posting list instead of re-seeking the dictionary).
    pub(crate) fn record_probe_hit(&self) {
        self.probe_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one pinned-probe cache miss (first resolution of a
    /// keyword for a view at the current epoch).
    pub(crate) fn record_probe_miss(&self) {
        self.probe_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter + gauge snapshot.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock().unwrap();
            (inner.map.len() as u64, inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity: self.capacity(),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            probe_misses: self.probe_misses.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters (entries stay resident).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
        self.probe_hits.store(0, Ordering::Relaxed);
        self.probe_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::PruneStats;

    fn response(xml_bytes: usize) -> Arc<SearchResponse> {
        Arc::new(SearchResponse {
            hits: vec![crate::request::SearchHit {
                rank: 1,
                score: 1.0,
                tf: vec![1],
                byte_len: xml_bytes as u64,
                xml: "x".repeat(xml_bytes),
            }],
            view_size: 1,
            matching: 1,
            idf: vec![1.0],
            timings: None,
            pdt_stats: Vec::new(),
            fetches: 0,
            pruning: PruneStats::default(),
            plan: None,
        })
    }

    fn key(view: &str, fingerprint: u64, epoch: u64) -> CacheKey {
        CacheKey { tenant: TenantId::public(), view: view.into(), fingerprint, epoch }
    }

    #[test]
    fn hit_returns_the_inserted_response_at_the_same_epoch() {
        let cache = ResultCache::default();
        let resp = response(10);
        cache.insert(key("v", 7, 3), Arc::clone(&resp));
        let got = cache.get(&key("v", 7, 3)).expect("hit");
        assert!(Arc::ptr_eq(&got, &resp));
        assert!(cache.get(&key("v", 7, 4)).is_none(), "other epoch never hits");
        assert!(cache.get(&key("v", 8, 3)).is_none(), "other request never hits");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn lru_evicts_oldest_when_over_capacity() {
        // Each entry is ~400 bytes; capacity fits two.
        let cache = ResultCache::with_capacity(900);
        cache.insert(key("a", 1, 1), response(20));
        cache.insert(key("b", 2, 1), response(20));
        // Touch "a" so "b" is the LRU victim.
        cache.get(&key("a", 1, 1)).unwrap();
        cache.insert(key("c", 3, 1), response(20));
        assert!(cache.get(&key("a", 1, 1)).is_some());
        assert!(cache.get(&key("b", 2, 1)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key("c", 3, 1)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_below_purges_dead_epochs() {
        let cache = ResultCache::default();
        cache.insert(key("a", 1, 1), response(4));
        cache.insert(key("b", 2, 2), response(4));
        cache.invalidate_below(2);
        let s = cache.stats();
        assert_eq!(s.stale, 1);
        assert_eq!(s.entries, 1);
        assert!(cache.get(&key("b", 2, 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::with_capacity(0);
        cache.insert(key("a", 1, 1), response(4));
        assert!(cache.get(&key("a", 1, 1)).is_none());
        let s = cache.stats();
        assert_eq!(s.inserts, 0);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn fingerprint_separates_request_shapes() {
        let base = SearchRequest::new(["xml", "search"]);
        let fp = request_fingerprint(&base);
        assert_eq!(fp, request_fingerprint(&SearchRequest::new(["xml", "search"])));
        assert_ne!(fp, request_fingerprint(&SearchRequest::new(["xml"])));
        assert_ne!(fp, request_fingerprint(&SearchRequest::new(["xml", "search"]).top_k(5)));
        assert_ne!(
            fp,
            request_fingerprint(
                &SearchRequest::new(["xml", "search"]).mode(crate::KeywordMode::Disjunctive)
            )
        );
        assert_ne!(
            fp,
            request_fingerprint(&SearchRequest::new(["xml", "search"]).materialize(false))
        );
        assert_ne!(fp, request_fingerprint(&SearchRequest::new(["xml", "search"]).prune(false)));
        // Keyword boundaries must not merge: ["ab","c"] != ["a","bc"].
        assert_ne!(
            request_fingerprint(&SearchRequest::new(["ab", "c"])),
            request_fingerprint(&SearchRequest::new(["a", "bc"]))
        );
        // Deadlines never change response bytes, so they share entries.
        assert_eq!(
            fp,
            request_fingerprint(
                &SearchRequest::new(["xml", "search"])
                    .deadline(std::time::Duration::from_millis(5))
            )
        );
    }

    #[test]
    fn fingerprint_separates_term_shapes() {
        let none = SearchRequest::new(std::iter::empty::<&str>());
        // A phrase is not its bag of words, a prefix is not its stem,
        // and proximity windows are part of the shape.
        let bag = request_fingerprint(&SearchRequest::new(["xml", "search"]));
        let phrase = request_fingerprint(&none.clone().phrase(["xml", "search"]));
        let near2 = request_fingerprint(&none.clone().near(2, ["xml", "search"]));
        let near3 = request_fingerprint(&none.clone().near(3, ["xml", "search"]));
        let word = request_fingerprint(&SearchRequest::new(["auto"]));
        let prefix = request_fingerprint(&none.clone().prefix("auto"));
        let distinct = [bag, phrase, near2, near3, word, prefix];
        for (i, a) in distinct.iter().enumerate() {
            for b in &distinct[i + 1..] {
                assert_ne!(a, b, "term shapes must not collide");
            }
        }
        // Boosts change the response bytes, so they change the key.
        assert_ne!(
            request_fingerprint(&SearchRequest::new(["xml"])),
            request_fingerprint(&SearchRequest::new(["xml"]).boost(2.0))
        );
    }
}
