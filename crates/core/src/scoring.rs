//! Scoring & Materialization module (paper §4.2.2.2).
//!
//! Scores are element-level TF-IDF as defined in §2.2:
//!
//! * `tf(e, k)` — occurrences of `k` in `e` and its descendants, obtained
//!   by *aggregating the tf values of the base elements copied into `e`*
//!   (the Efficient pipeline reads them off PDT annotations; the Baseline
//!   tokenizes the materialized result — Theorem 4.1 says, and our tests
//!   check, that the numbers coincide);
//! * `idf(k) = |V(D)| / |{e ∈ V(D) : contains(e, k)}|` — computed over the
//!   whole view sequence, which is why the pipeline produces *all* pruned
//!   view elements before ranking;
//! * `score(e, Q) = Σ_k tf(e,k) · idf(k)`, normalized by the element's
//!   aggregate byte length (we divide by the byte length — the classic
//!   document-length normalization from the similarity space the paper
//!   cites [Zobel & Moffat], turning the score into keyword density; any
//!   fixed choice preserves the paper's materialized-vs-virtual
//!   equivalence as long as both sides share it).

/// Conjunctive (`k1 & k2`) or disjunctive (`k1 | k2`) keyword semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeywordMode {
    /// Every keyword must occur in a matching element.
    Conjunctive,
    /// At least one keyword must occur.
    Disjunctive,
}

/// The tf vector and byte length of one view element, in view order.
#[derive(Clone, Debug, PartialEq)]
pub struct ElementStats {
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length of the element.
    pub byte_len: u64,
}

/// One scored view element.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredElement {
    /// Position in the view result sequence (stable tie-breaker).
    pub index: usize,
    /// The normalized TF-IDF score.
    pub score: f64,
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length.
    pub byte_len: u64,
}

/// Output of the scoring phase.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoringOutcome {
    /// Elements that satisfy the keyword semantics, best score first
    /// (ties broken by view order), truncated to `k`.
    pub top: Vec<ScoredElement>,
    /// Number of matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the whole view.
    pub idf: Vec<f64>,
    /// |V(D)| — total view elements (matching or not).
    pub view_size: usize,
}

/// Score every view element and keep the top `k` under `mode` semantics.
///
/// `stats` must cover the *entire* view result sequence (idf is a
/// view-level statistic).
pub fn score_and_rank(stats: &[ElementStats], mode: KeywordMode, k: usize) -> ScoringOutcome {
    let view_size = stats.len();
    let keyword_count = stats.first().map(|s| s.tf.len()).unwrap_or(0);

    let mut df = vec![0usize; keyword_count];
    for s in stats {
        for (i, tf) in s.tf.iter().enumerate() {
            if *tf > 0 {
                df[i] += 1;
            }
        }
    }
    let idf: Vec<f64> =
        df.iter().map(|d| if *d == 0 { 0.0 } else { view_size as f64 / *d as f64 }).collect();

    let mut matches: Vec<ScoredElement> = Vec::new();
    for (index, s) in stats.iter().enumerate() {
        let ok = match mode {
            KeywordMode::Conjunctive => s.tf.iter().all(|t| *t > 0),
            KeywordMode::Disjunctive => s.tf.iter().any(|t| *t > 0),
        };
        // A query with no keywords matches everything (pure view browse).
        if !ok && keyword_count > 0 {
            continue;
        }
        let raw: f64 = s.tf.iter().zip(&idf).map(|(t, i)| *t as f64 * i).sum();
        let norm = (s.byte_len as f64).max(1.0);
        matches.push(ScoredElement {
            index,
            score: raw / norm,
            tf: s.tf.clone(),
            byte_len: s.byte_len,
        });
    }
    let matching = matches.len();
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    matches.truncate(k);
    ScoringOutcome { top: matches, matching, idf, view_size }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn es(tf: &[u32], len: u64) -> ElementStats {
        ElementStats { tf: tf.to_vec(), byte_len: len }
    }

    #[test]
    fn idf_is_view_size_over_document_frequency() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 1], 10), es(&[0, 0], 10), es(&[1, 0], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.view_size, 4);
        assert_eq!(out.idf, vec![4.0 / 3.0, 4.0]);
    }

    #[test]
    fn conjunctive_requires_all_keywords() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 1], 10), es(&[0, 3], 10)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.matching, 1);
        assert_eq!(out.top[0].index, 1);
    }

    #[test]
    fn disjunctive_requires_any_keyword() {
        let stats = vec![es(&[1, 0], 10), es(&[0, 0], 10), es(&[0, 3], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn ranking_is_score_desc_with_stable_ties() {
        // Same byte length; higher tf wins. Equal elements keep view order.
        let stats = vec![es(&[1], 100), es(&[5], 100), es(&[1], 100)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        let order: Vec<usize> = out.top.iter().map(|t| t.index).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn byte_length_normalization_penalizes_long_elements() {
        let stats = vec![es(&[2], 10_000), es(&[2], 10)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.top[0].index, 1, "shorter element should rank first");
    }

    #[test]
    fn top_k_truncates_but_matching_counts_all() {
        let stats: Vec<ElementStats> = (1..=20).map(|i| es(&[i], 50)).collect();
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 5);
        assert_eq!(out.top.len(), 5);
        assert_eq!(out.matching, 20);
        assert_eq!(out.top[0].index, 19); // highest tf
    }

    #[test]
    fn zero_keywords_matches_everything_with_zero_scores() {
        let stats = vec![es(&[], 10), es(&[], 20)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.matching, 2);
        assert_eq!(out.top[0].score, 0.0);
    }

    #[test]
    fn unmatched_keyword_gets_zero_idf() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 0], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.idf[1], 0.0);
    }
}
