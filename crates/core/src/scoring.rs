//! Scoring & Materialization module (paper §4.2.2.2).
//!
//! Scores are element-level TF-IDF as defined in §2.2:
//!
//! * `tf(e, k)` — occurrences of `k` in `e` and its descendants, obtained
//!   by *aggregating the tf values of the base elements copied into `e`*
//!   (the Efficient pipeline reads them off PDT annotations; the Baseline
//!   tokenizes the materialized result — Theorem 4.1 says, and our tests
//!   check, that the numbers coincide);
//! * `idf(k) = |V(D)| / |{e ∈ V(D) : contains(e, k)}|` — computed over the
//!   whole view sequence, which is why the pipeline produces *all* pruned
//!   view elements before ranking;
//! * `score(e, Q) = Σ_k tf(e,k) · idf(k)`, normalized by the element's
//!   aggregate byte length (we divide by the byte length — the classic
//!   document-length normalization from the similarity space the paper
//!   cites [Zobel & Moffat], turning the score into keyword density; any
//!   fixed choice preserves the paper's materialized-vs-virtual
//!   equivalence as long as both sides share it).
//!
//! ## Score-bounded top-k pruning
//!
//! [`score_and_rank`] is the exact reference: it resolves every
//! element's tf vector and sorts the lot. [`score_and_rank_bounded`] is
//! the block-max (WAND-family) variant the engine uses by default: it
//! takes per-element **score upper bounds** (derived from the inverted
//! index's per-block max-tf metadata), processes candidates in
//! descending bound order while a min-heap tracks the current top-k
//! threshold, and stops — skipping every remaining exact tf resolution
//! — as soon as the best remaining bound falls strictly below the
//! threshold. Because idf, the matching count and every *returned*
//! score are still computed exactly (contains-bits are exact; pruning
//! is strict-inequality only), its output is **byte-identical** to
//! [`score_and_rank`]'s: same hits, same score bits, same order. The
//! work avoided is reported in [`PruneStats`].

/// Conjunctive (`k1 & k2`) or disjunctive (`k1 | k2`) keyword semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeywordMode {
    /// Every keyword must occur in a matching element.
    Conjunctive,
    /// At least one keyword must occur.
    Disjunctive,
}

/// The tf vector and byte length of one view element, in view order.
#[derive(Clone, Debug, PartialEq)]
pub struct ElementStats {
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length of the element.
    pub byte_len: u64,
}

/// One scored view element.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredElement {
    /// Position in the view result sequence (stable tie-breaker).
    pub index: usize,
    /// The normalized TF-IDF score.
    pub score: f64,
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length.
    pub byte_len: u64,
}

/// Output of the scoring phase.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoringOutcome {
    /// Elements that satisfy the keyword semantics, best score first
    /// (ties broken by view order), truncated to `k`.
    pub top: Vec<ScoredElement>,
    /// Number of matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the whole view.
    pub idf: Vec<f64>,
    /// |V(D)| — total view elements (matching or not).
    pub view_size: usize,
}

/// Score every view element and keep the top `k` under `mode` semantics.
///
/// `stats` must cover the *entire* view result sequence (idf is a
/// view-level statistic).
pub fn score_and_rank(stats: &[ElementStats], mode: KeywordMode, k: usize) -> ScoringOutcome {
    score_and_rank_boosted(stats, mode, k, &[])
}

/// One slot's contribution to the raw (un-normalized) score. With no
/// boosts this is **literally** the legacy `tf × idf` float expression,
/// so unboosted responses stay byte-identical to the pre-boost engine;
/// boosted slots multiply by their (positive, finite) weight. The same
/// expression scores exact tf vectors and upper bounds, which keeps
/// bound domination under IEEE rounding monotonicity — multiplication
/// by a positive boost preserves `x >= y  ⇒  x·b >= y·b`.
fn raw_score<T: Copy + Into<u64>>(tf: &[T], idf: &[f64], boosts: &[f64]) -> f64 {
    if boosts.is_empty() {
        tf.iter().zip(idf).map(|(t, i)| (*t).into() as f64 * i).sum()
    } else {
        tf.iter().zip(idf).zip(boosts).map(|((t, i), b)| (*t).into() as f64 * i * b).sum()
    }
}

/// As [`score_and_rank`] with per-keyword boosts: slot `k` contributes
/// `tf × idf × boosts[k]`. An **empty** `boosts` means unboosted and
/// uses the legacy float expression verbatim (byte-identical scores);
/// otherwise `boosts` must have one positive finite weight per keyword.
pub fn score_and_rank_boosted(
    stats: &[ElementStats],
    mode: KeywordMode,
    k: usize,
    boosts: &[f64],
) -> ScoringOutcome {
    let view_size = stats.len();
    let keyword_count = stats.first().map(|s| s.tf.len()).unwrap_or(0);

    let mut df = vec![0usize; keyword_count];
    for s in stats {
        for (i, tf) in s.tf.iter().enumerate() {
            if *tf > 0 {
                df[i] += 1;
            }
        }
    }
    let idf: Vec<f64> =
        df.iter().map(|d| if *d == 0 { 0.0 } else { view_size as f64 / *d as f64 }).collect();

    let mut matches: Vec<ScoredElement> = Vec::new();
    for (index, s) in stats.iter().enumerate() {
        let ok = match mode {
            KeywordMode::Conjunctive => s.tf.iter().all(|t| *t > 0),
            KeywordMode::Disjunctive => s.tf.iter().any(|t| *t > 0),
        };
        // A query with no keywords matches everything (pure view browse).
        if !ok && keyword_count > 0 {
            continue;
        }
        let raw = raw_score(&s.tf, &idf, boosts);
        let norm = (s.byte_len as f64).max(1.0);
        matches.push(ScoredElement {
            index,
            score: raw / norm,
            tf: s.tf.clone(),
            byte_len: s.byte_len,
        });
    }
    let matching = matches.len();
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    matches.truncate(k);
    ScoringOutcome { top: matches, matching, idf, view_size }
}

/// Work avoided by score-bounded top-k pruning (one search's worth, or
/// an engine-lifetime aggregate in
/// [`crate::engine::EngineStats::pruning`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Compressed index blocks under skipped candidates' subtree ranges
    /// that were never decoded (what their exact tf probes would have
    /// touched).
    pub blocks_pruned: u64,
    /// Candidates whose exact tf resolution was skipped because their
    /// score upper bound fell strictly below the top-k threshold.
    pub candidates_skipped: u64,
    /// Scoring passes that terminated early (stopped consuming
    /// candidates before exhausting them).
    pub early_terminations: u64,
}

impl std::ops::Add for PruneStats {
    type Output = PruneStats;

    fn add(self, rhs: PruneStats) -> PruneStats {
        PruneStats {
            blocks_pruned: self.blocks_pruned + rhs.blocks_pruned,
            candidates_skipped: self.candidates_skipped + rhs.candidates_skipped,
            early_terminations: self.early_terminations + rhs.early_terminations,
        }
    }
}

/// One element entering [`score_and_rank_bounded`]: exact contains-bits
/// and byte length, plus a per-keyword tf **upper bound** — everything
/// idf/matching need, without any exact tf resolution.
#[derive(Clone, Debug)]
pub struct BoundedCandidate {
    /// Position in the view result sequence (stable tie-breaker).
    pub index: usize,
    /// Aggregate byte length of the element (exact).
    pub byte_len: u64,
    /// Per-keyword: does the element contain the keyword at all?
    /// **Exact** — idf and the matching count are computed from these.
    pub contains: Vec<bool>,
    /// Per-keyword upper bound on the element's aggregate tf; must
    /// dominate the exact value (a violated bound can drop hits).
    pub tf_bound: Vec<u64>,
    /// Compressed blocks the element's exact tf probes would decode
    /// (counted into [`PruneStats::blocks_pruned`] when skipped).
    pub bound_blocks: u64,
}

/// Finite, non-NaN score ordering for the threshold heap (scores are
/// sums/quotients of finite non-negative terms).
#[derive(PartialEq)]
struct HeapScore(f64);
impl Eq for HeapScore {}
impl PartialOrd for HeapScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// As [`score_and_rank`], but with score-bounded pruning: exact tf
/// vectors are pulled lazily through `exact_tf` (candidate index →
/// per-keyword tf), candidates are consumed in descending
/// upper-bound-score order, and consumption stops as soon as the best
/// remaining bound is **strictly below** the current k-th best exact
/// score — every candidate after that point provably cannot enter the
/// top-k, tie-breaking included. Output is byte-identical to the exact
/// path (see the module docs).
///
/// `exact_tf` may return `None` to abort (deadline/cancel checkpoints
/// live in the caller's resolver); the whole call then returns `None`
/// with no partial output.
pub fn score_and_rank_bounded(
    cands: &[BoundedCandidate],
    mode: KeywordMode,
    k: usize,
    exact_tf: &mut dyn FnMut(usize) -> Option<Vec<u32>>,
) -> Option<(ScoringOutcome, PruneStats)> {
    score_and_rank_bounded_boosted(cands, mode, k, &[], exact_tf)
}

/// As [`score_and_rank_bounded`] with per-keyword boosts — the bounded
/// counterpart of [`score_and_rank_boosted`], byte-identical to it on
/// the same inputs. Boosts scale upper bounds and exact scores through
/// the **same** float expression, so bound domination (and therefore
/// pruning soundness) is preserved for any positive finite weights.
pub fn score_and_rank_bounded_boosted(
    cands: &[BoundedCandidate],
    mode: KeywordMode,
    k: usize,
    boosts: &[f64],
    exact_tf: &mut dyn FnMut(usize) -> Option<Vec<u32>>,
) -> Option<(ScoringOutcome, PruneStats)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let view_size = cands.len();
    let keyword_count = cands.first().map(|c| c.contains.len()).unwrap_or(0);

    // idf from the exact contains-bits — identical to the reference's
    // tf>0 counting (aggregate tf is positive iff some keyword
    // occurrence exists under the element).
    let mut df = vec![0usize; keyword_count];
    for c in cands {
        for (i, has) in c.contains.iter().enumerate() {
            if *has {
                df[i] += 1;
            }
        }
    }
    let idf: Vec<f64> =
        df.iter().map(|d| if *d == 0 { 0.0 } else { view_size as f64 / *d as f64 }).collect();

    // Matching candidates under the keyword semantics (zero keywords
    // matches everything — pure view browse, as in the reference).
    let matching_cands: Vec<&BoundedCandidate> = cands
        .iter()
        .filter(|c| {
            keyword_count == 0
                || match mode {
                    KeywordMode::Conjunctive => c.contains.iter().all(|b| *b),
                    KeywordMode::Disjunctive => c.contains.iter().any(|b| *b),
                }
        })
        .collect();
    let matching = matching_cands.len();

    // Candidates in descending upper-bound order (ties in view order):
    // the moment one bound drops below the threshold, so have all that
    // follow. The bound uses the same float expression as the exact
    // score, so IEEE rounding monotonicity keeps it dominating.
    let ub_score = |c: &BoundedCandidate| -> f64 {
        raw_score(&c.tf_bound, &idf, boosts) / (c.byte_len as f64).max(1.0)
    };
    let mut order: Vec<(f64, &BoundedCandidate)> =
        matching_cands.iter().map(|c| (ub_score(c), *c)).collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.index.cmp(&b.1.index)));

    let mut stats = PruneStats::default();
    let mut scored: Vec<ScoredElement> = Vec::new();
    let mut heap: BinaryHeap<Reverse<HeapScore>> =
        BinaryHeap::with_capacity(k.saturating_add(1).min(order.len() + 1));
    for (pos, (ub, c)) in order.iter().enumerate() {
        // Terminate when no remaining candidate can enter the top-k:
        // with k == 0 immediately, otherwise once the best remaining
        // bound falls strictly below the k-th best exact score (ub order
        // is descending, so every later candidate is bounded too — even
        // ties are safe under the strict inequality).
        let done =
            k == 0 || (heap.len() == k && *ub < heap.peek().expect("heap holds k scores").0 .0);
        if done {
            stats.early_terminations = 1;
            for (_, rest) in &order[pos..] {
                stats.candidates_skipped += 1;
                stats.blocks_pruned += rest.bound_blocks;
            }
            break;
        }
        let tf = exact_tf(c.index)?;
        // The exact score, with the reference's own float expression.
        let score = raw_score(&tf, &idf, boosts) / (c.byte_len as f64).max(1.0);
        heap.push(Reverse(HeapScore(score)));
        if heap.len() > k {
            heap.pop();
        }
        scored.push(ScoredElement { index: c.index, score, tf, byte_len: c.byte_len });
    }

    // Exactly the reference's final ordering over the survivors — every
    // pruned candidate scores strictly below all k of these.
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    scored.truncate(k);
    Some((ScoringOutcome { top: scored, matching, idf, view_size }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn es(tf: &[u32], len: u64) -> ElementStats {
        ElementStats { tf: tf.to_vec(), byte_len: len }
    }

    #[test]
    fn idf_is_view_size_over_document_frequency() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 1], 10), es(&[0, 0], 10), es(&[1, 0], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.view_size, 4);
        assert_eq!(out.idf, vec![4.0 / 3.0, 4.0]);
    }

    #[test]
    fn conjunctive_requires_all_keywords() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 1], 10), es(&[0, 3], 10)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.matching, 1);
        assert_eq!(out.top[0].index, 1);
    }

    #[test]
    fn disjunctive_requires_any_keyword() {
        let stats = vec![es(&[1, 0], 10), es(&[0, 0], 10), es(&[0, 3], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.matching, 2);
    }

    #[test]
    fn ranking_is_score_desc_with_stable_ties() {
        // Same byte length; higher tf wins. Equal elements keep view order.
        let stats = vec![es(&[1], 100), es(&[5], 100), es(&[1], 100)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        let order: Vec<usize> = out.top.iter().map(|t| t.index).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn byte_length_normalization_penalizes_long_elements() {
        let stats = vec![es(&[2], 10_000), es(&[2], 10)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.top[0].index, 1, "shorter element should rank first");
    }

    #[test]
    fn top_k_truncates_but_matching_counts_all() {
        let stats: Vec<ElementStats> = (1..=20).map(|i| es(&[i], 50)).collect();
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 5);
        assert_eq!(out.top.len(), 5);
        assert_eq!(out.matching, 20);
        assert_eq!(out.top[0].index, 19); // highest tf
    }

    #[test]
    fn zero_keywords_matches_everything_with_zero_scores() {
        let stats = vec![es(&[], 10), es(&[], 20)];
        let out = score_and_rank(&stats, KeywordMode::Conjunctive, 10);
        assert_eq!(out.matching, 2);
        assert_eq!(out.top[0].score, 0.0);
    }

    #[test]
    fn unmatched_keyword_gets_zero_idf() {
        let stats = vec![es(&[1, 0], 10), es(&[2, 0], 10)];
        let out = score_and_rank(&stats, KeywordMode::Disjunctive, 10);
        assert_eq!(out.idf[1], 0.0);
    }
}

#[cfg(test)]
mod bounded_tests {
    use super::*;

    fn es(tf: &[u32], len: u64) -> ElementStats {
        ElementStats { tf: tf.to_vec(), byte_len: len }
    }

    /// Wrap exact element stats as bounded candidates with a chosen
    /// looseness (bound = tf * slack, a valid upper bound for slack>=1).
    fn candidates(stats: &[ElementStats], slack: u64) -> Vec<BoundedCandidate> {
        stats
            .iter()
            .enumerate()
            .map(|(index, s)| BoundedCandidate {
                index,
                byte_len: s.byte_len,
                contains: s.tf.iter().map(|t| *t > 0).collect(),
                tf_bound: s.tf.iter().map(|t| *t as u64 * slack).collect(),
                bound_blocks: 3,
            })
            .collect()
    }

    fn assert_outcomes_identical(a: &ScoringOutcome, b: &ScoringOutcome) {
        assert_eq!(a.view_size, b.view_size, "view_size");
        assert_eq!(a.matching, b.matching, "matching");
        assert_eq!(a.idf.len(), b.idf.len());
        for (x, y) in a.idf.iter().zip(&b.idf) {
            assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
        }
        assert_eq!(a.top.len(), b.top.len(), "top len");
        for (x, y) in a.top.iter().zip(&b.top) {
            assert_eq!(x.index, y.index, "index");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits");
            assert_eq!(x.tf, y.tf, "tf");
            assert_eq!(x.byte_len, y.byte_len, "byte_len");
        }
    }

    /// Deterministic pseudo-random element stats (splitmix-ish).
    fn random_stats(seed: u64, n: usize, kws: usize) -> Vec<ElementStats> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..n)
            .map(|_| ElementStats {
                tf: (0..kws).map(|_| next() % 5).collect(),
                byte_len: (next() % 300) as u64 + 1,
            })
            .collect()
    }

    #[test]
    fn bounded_matches_exact_across_random_inputs() {
        for seed in 0..40u64 {
            let stats = random_stats(seed, (seed % 17) as usize + 1, (seed % 3) as usize + 1);
            for k in [0usize, 1, 3, stats.len(), stats.len() + 5] {
                for (mode, slack) in [
                    (KeywordMode::Conjunctive, 1),
                    (KeywordMode::Disjunctive, 1),
                    (KeywordMode::Conjunctive, 4),
                    (KeywordMode::Disjunctive, 4),
                ] {
                    let exact = score_and_rank(&stats, mode, k);
                    let cands = candidates(&stats, slack);
                    let mut resolutions = 0usize;
                    let (bounded, prune) = score_and_rank_bounded(&cands, mode, k, &mut |i| {
                        resolutions += 1;
                        Some(stats[i].tf.clone())
                    })
                    .expect("no abort");
                    assert_outcomes_identical(&exact, &bounded);
                    assert_eq!(
                        resolutions as u64 + prune.candidates_skipped,
                        bounded.matching as u64,
                        "every matching candidate is either resolved or counted skipped"
                    );
                    assert_eq!(prune.blocks_pruned, prune.candidates_skipped * 3);
                }
            }
        }
    }

    #[test]
    fn ties_at_the_threshold_are_never_pruned() {
        // Three identical elements, k=2: the third ties the threshold
        // exactly, so it must still be resolved (strict-< pruning) and
        // the reference's index tie-break decides.
        let stats = vec![es(&[2], 10), es(&[2], 10), es(&[2], 10)];
        let cands = candidates(&stats, 1);
        let exact = score_and_rank(&stats, KeywordMode::Conjunctive, 2);
        let (bounded, prune) =
            score_and_rank_bounded(&cands, KeywordMode::Conjunctive, 2, &mut |i| {
                Some(stats[i].tf.clone())
            })
            .unwrap();
        assert_outcomes_identical(&exact, &bounded);
        assert_eq!(prune.candidates_skipped, 0, "equal bounds cannot be pruned");
    }

    #[test]
    fn clearly_dominated_candidates_are_skipped() {
        // One heavy hitter and many lightweights with tiny bounds: k=1
        // must resolve only the (few) candidates whose bound reaches the
        // winner's score.
        let mut stats = vec![es(&[50], 10)];
        for _ in 0..20 {
            stats.push(es(&[1], 1000));
        }
        let cands = candidates(&stats, 1);
        let mut resolutions = 0usize;
        let (bounded, prune) =
            score_and_rank_bounded(&cands, KeywordMode::Conjunctive, 1, &mut |i| {
                resolutions += 1;
                Some(stats[i].tf.clone())
            })
            .unwrap();
        let exact = score_and_rank(&stats, KeywordMode::Conjunctive, 1);
        assert_outcomes_identical(&exact, &bounded);
        assert_eq!(resolutions, 1, "only the winner needed exact resolution");
        assert_eq!(prune.candidates_skipped, 20);
        assert_eq!(prune.early_terminations, 1);
        assert_eq!(bounded.matching, 21, "matching still counts pruned candidates");
    }

    #[test]
    fn k_zero_skips_all_resolution_but_reports_matching_and_idf() {
        let stats = vec![es(&[1, 2], 10), es(&[3, 0], 10)];
        let cands = candidates(&stats, 1);
        let exact = score_and_rank(&stats, KeywordMode::Disjunctive, 0);
        let (bounded, prune) =
            score_and_rank_bounded(&cands, KeywordMode::Disjunctive, 0, &mut |_| {
                panic!("k=0 must not resolve anything")
            })
            .unwrap();
        assert_outcomes_identical(&exact, &bounded);
        assert_eq!(prune.candidates_skipped, 2);
    }

    #[test]
    fn resolver_abort_propagates_as_none() {
        let stats = vec![es(&[1], 10), es(&[2], 10)];
        let cands = candidates(&stats, 1);
        let out = score_and_rank_bounded(&cands, KeywordMode::Conjunctive, 2, &mut |_| None);
        assert!(out.is_none(), "resolver abort must surface, not truncate");
    }

    #[test]
    fn boosts_reweight_the_ranking() {
        // Without boosts both elements tie on idf symmetry; boosting the
        // second keyword must promote the element that carries it.
        let stats = vec![es(&[2, 0], 10), es(&[0, 2], 10)];
        let plain = score_and_rank(&stats, KeywordMode::Disjunctive, 2);
        assert_eq!(plain.top[0].index, 0, "ties break in view order unboosted");
        let boosted = score_and_rank_boosted(&stats, KeywordMode::Disjunctive, 2, &[1.0, 3.0]);
        assert_eq!(boosted.top[0].index, 1, "boosted keyword outranks");
        assert_eq!(boosted.idf, plain.idf, "boosts scale scores, never idf");
    }

    #[test]
    fn unit_boosts_are_bit_identical_to_unboosted() {
        // ×1.0 is exact in IEEE arithmetic, so an all-ones boost vector
        // must reproduce the legacy expression bit for bit.
        for seed in 0..10u64 {
            let stats = random_stats(seed, (seed % 13) as usize + 2, 3);
            let a = score_and_rank(&stats, KeywordMode::Disjunctive, 5);
            let b = score_and_rank_boosted(&stats, KeywordMode::Disjunctive, 5, &[1.0, 1.0, 1.0]);
            assert_outcomes_identical(&a, &b);
        }
    }

    #[test]
    fn bounded_boosted_matches_exact_boosted_across_random_inputs() {
        for seed in 0..30u64 {
            let stats = random_stats(seed, (seed % 17) as usize + 1, 2);
            let boosts = [0.25 + (seed % 7) as f64, 1.0 + (seed % 3) as f64];
            for (k, slack) in [(1usize, 1u64), (3, 4), (stats.len(), 2)] {
                let exact = score_and_rank_boosted(&stats, KeywordMode::Disjunctive, k, &boosts);
                let cands = candidates(&stats, slack);
                let (bounded, _) = score_and_rank_bounded_boosted(
                    &cands,
                    KeywordMode::Disjunctive,
                    k,
                    &boosts,
                    &mut |i| Some(stats[i].tf.clone()),
                )
                .expect("no abort");
                assert_outcomes_identical(&exact, &bounded);
            }
        }
    }
}
