//! Property tests for the XML substrate: Dewey-order laws, document
//! builder invariants, parse/serialize round trips, and disk-store
//! equivalence with in-memory access.

use proptest::prelude::*;
use vxv_xml::{parse_document, serialize_subtree, Corpus, DeweyId, DiskStore, DocumentBuilder};

fn dewey_strategy() -> impl Strategy<Value = DeweyId> {
    prop::collection::vec(1u32..6, 1..6).prop_map(DeweyId::from_components)
}

proptest! {
    /// Document order: an ancestor sorts before every descendant, and the
    /// subtree upper bound separates the subtree from the rest.
    #[test]
    fn dewey_order_laws(a in dewey_strategy(), b in dewey_strategy()) {
        if a.is_ancestor_of(&b) {
            prop_assert!(a < b);
            prop_assert!(b < a.subtree_upper_bound());
        }
        if a < b && !a.is_prefix_of(&b) {
            prop_assert!(a.subtree_upper_bound() <= b || a.common_prefix_len(&b) > 0);
        }
        // is_prefix_of is reflexive and antisymmetric-with-equality.
        prop_assert!(a.is_prefix_of(&a));
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(&a, &b);
        }
        // parent ∘ child is the identity.
        let child_parent = a.child(3).parent();
        prop_assert_eq!(child_parent.as_ref(), Some(&a));
    }

    /// Display → FromStr is the identity.
    #[test]
    fn dewey_display_round_trip(a in dewey_strategy()) {
        let s = a.to_string();
        let back: DeweyId = s.parse().unwrap();
        prop_assert_eq!(a, back);
    }
}

/// A recipe for a random small document.
#[derive(Clone, Debug)]
struct Spec {
    tag: usize,
    text: Option<u16>,
    children: Vec<Spec>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf = (0..5usize, proptest::option::of(any::<u16>())).prop_map(|(tag, text)| Spec {
        tag,
        text,
        children: vec![],
    });
    leaf.prop_recursive(4, 32, 5, |inner| {
        (0..5usize, proptest::option::of(any::<u16>()), prop::collection::vec(inner, 0..5))
            .prop_map(|(tag, text, children)| Spec { tag, text, children })
    })
}

const TAGS: &[&str] = &["alpha", "beta", "gamma", "delta", "eps"];

fn build(spec: &Spec) -> vxv_xml::Document {
    fn rec(b: &mut DocumentBuilder, s: &Spec) {
        b.begin(TAGS[s.tag]);
        if let Some(t) = s.text {
            b.text(&format!("v{t}"));
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new("doc.xml", 1);
    rec(&mut b, spec);
    b.finish()
}

proptest! {
    /// serialize → parse → serialize is a fixpoint, and byte lengths match
    /// the serializer exactly at every node.
    #[test]
    fn parse_serialize_round_trip(spec in spec_strategy()) {
        let doc = build(&spec);
        let xml = serialize_subtree(&doc, doc.root().unwrap());
        let reparsed = parse_document("doc.xml", &xml, 1).unwrap();
        prop_assert_eq!(reparsed.len(), doc.len());
        let xml2 = serialize_subtree(&reparsed, reparsed.root().unwrap());
        prop_assert_eq!(&xml, &xml2);
        for n in doc.iter() {
            prop_assert_eq!(
                serialize_subtree(&doc, n).len() as u32,
                doc.node(n).byte_len
            );
        }
    }

    /// Arena order is document order; subtree ranges are contiguous.
    #[test]
    fn builder_invariants(spec in spec_strategy()) {
        let doc = build(&spec);
        let deweys: Vec<DeweyId> = doc.iter().map(|n| doc.node(n).dewey.clone()).collect();
        let mut sorted = deweys.clone();
        sorted.sort();
        prop_assert_eq!(&deweys, &sorted, "arena must be in document order");
        for n in doc.iter() {
            prop_assert_eq!(doc.node_by_dewey(&doc.node(n).dewey), Some(n));
        }
    }

    /// Every subtree read from the disk store equals the in-memory
    /// serialization of that subtree.
    #[test]
    fn disk_store_subtree_reads_match_memory(spec in spec_strategy()) {
        let doc = build(&spec);
        let mut corpus = Corpus::new();
        corpus.add(doc);
        let dir = std::env::temp_dir()
            .join(format!("vxv-prop-{}-{:x}", std::process::id(), rand_suffix()));
        let store = DiskStore::persist(&corpus, &dir).unwrap();
        let doc = corpus.doc("doc.xml").unwrap();
        for n in doc.iter() {
            let want = serialize_subtree(doc, n);
            let got = store.read_subtree_xml(&doc.node(n).dewey).unwrap();
            prop_assert_eq!(want, got);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
}
