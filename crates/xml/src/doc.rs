//! Arena-based XML document model.
//!
//! Documents are immutable once built. Nodes live in a flat arena in
//! document order (parents before children, siblings left to right), so the
//! node vector is sorted by Dewey ID and lookups by ID are binary searches.
//! Attributes are modelled as leading subelements, as the paper does
//! (§2.1: "we treat attributes as though they are subelements").

use crate::dewey::DeweyId;
use std::collections::HashMap;
use std::fmt;

/// Interned tag name. Cheap to copy and compare; resolved via [`Document::tag_name`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TagId(pub u32);

/// Index of a node within its document's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// One element node. Text content is stored on the node itself; an element
/// holding only text is a *leaf* with an atomic value.
#[derive(Clone, Debug)]
pub struct Node {
    /// Interned tag name.
    pub tag: TagId,
    /// The parent element, if any.
    pub parent: Option<NodeId>,
    /// Child elements, in document order.
    pub children: Vec<NodeId>,
    /// Atomic text value (concatenated character data), if any.
    pub text: Option<String>,
    /// The element's Dewey identifier.
    pub dewey: DeweyId,
    /// Byte length of the element's serialized form, `len(e)` in the paper.
    pub byte_len: u32,
}

/// An immutable XML document with interned tags and Dewey-identified nodes.
#[derive(Clone, Debug, Default)]
pub struct Document {
    name: String,
    nodes: Vec<Node>,
    tags: Vec<String>,
    tag_ids: HashMap<String, TagId>,
}

impl Document {
    /// The document name (e.g. `books.xml`), used by `fn:doc(...)`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node, if the document is non-empty.
    pub fn root(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(NodeId(0))
        }
    }

    /// Number of element nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document holds no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Resolve an interned tag.
    pub fn tag_name(&self, tag: TagId) -> &str {
        &self.tags[tag.0 as usize]
    }

    /// Tag name of a node.
    pub fn node_tag(&self, id: NodeId) -> &str {
        self.tag_name(self.node(id).tag)
    }

    /// Look up the interned id for a tag name, if the tag occurs at all.
    pub fn lookup_tag(&self, name: &str) -> Option<TagId> {
        self.tag_ids.get(name).copied()
    }

    /// All distinct tag names in the document.
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(|s| s.as_str())
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Iterate over all nodes in document order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over the subtree rooted at `id` (inclusive) in document order.
    ///
    /// Because the arena is laid out in document order, a subtree is the
    /// contiguous index range starting at `id` whose Dewey IDs have
    /// `id.dewey` as prefix.
    pub fn subtree(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let root_dewey = self.node(id).dewey.clone();
        (id.0..self.nodes.len() as u32)
            .map(NodeId)
            .take_while(move |n| root_dewey.is_prefix_of(&self.node(*n).dewey))
    }

    /// Strict descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.subtree(id).skip(1)
    }

    /// Binary-search a node by its Dewey ID.
    pub fn node_by_dewey(&self, dewey: &DeweyId) -> Option<NodeId> {
        self.nodes.binary_search_by(|n| n.dewey.cmp(dewey)).ok().map(|i| NodeId(i as u32))
    }

    /// The atomic value of a node (text content), if it is a leaf with text.
    pub fn value(&self, id: NodeId) -> Option<&str> {
        self.node(id).text.as_deref()
    }

    /// Concatenated text content of the subtree rooted at `id`, in document
    /// order, segments separated by a single space.
    pub fn full_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.subtree(id) {
            if let Some(t) = &self.node(n).text {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// Root-to-node path of tag names, e.g. `/books/book/isbn`.
    pub fn path_of(&self, id: NodeId) -> String {
        let mut tags = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            tags.push(self.node_tag(n));
            cur = self.node(n).parent;
        }
        let mut out = String::new();
        for t in tags.iter().rev() {
            out.push('/');
            out.push_str(t);
        }
        out
    }

    /// Total serialized byte length of the document (the root's byte length).
    pub fn byte_size(&self) -> u64 {
        self.root().map(|r| self.node(r).byte_len as u64).unwrap_or(0)
    }
}

/// Incremental builder emitting nodes in document order.
///
/// `begin`/`end` pairs open and close elements; `text` appends character
/// data to the currently open element; `leaf` is `begin` + `text` + `end`.
/// Dewey IDs are assigned contiguously (first child = parent ID + `.1`).
pub struct DocumentBuilder {
    doc: Document,
    /// Stack of open element node indices.
    stack: Vec<NodeId>,
    /// Per-open-element count of children assigned so far.
    child_counts: Vec<u32>,
    root_ordinal: u32,
}

impl DocumentBuilder {
    /// Start building a document whose root Dewey component is `root_ordinal`.
    pub fn new(name: impl Into<String>, root_ordinal: u32) -> Self {
        DocumentBuilder {
            doc: Document {
                name: name.into(),
                nodes: Vec::new(),
                tags: Vec::new(),
                tag_ids: HashMap::new(),
            },
            stack: Vec::new(),
            child_counts: Vec::new(),
            root_ordinal,
        }
    }

    fn intern(&mut self, tag: &str) -> TagId {
        if let Some(id) = self.doc.tag_ids.get(tag) {
            return *id;
        }
        let id = TagId(self.doc.tags.len() as u32);
        self.doc.tags.push(tag.to_string());
        self.doc.tag_ids.insert(tag.to_string(), id);
        id
    }

    /// Open a new element under the current element (or as the root).
    pub fn begin(&mut self, tag: &str) -> NodeId {
        let dewey = match self.stack.last() {
            None => {
                assert!(self.doc.nodes.is_empty(), "document already has a root");
                DeweyId::root(self.root_ordinal)
            }
            Some(parent) => {
                let cnt = self.child_counts.last_mut().unwrap();
                *cnt += 1;
                self.doc.node(*parent).dewey.child(*cnt)
            }
        };
        self.begin_with_dewey(tag, dewey)
    }

    /// Open a new element with an explicit Dewey ID. Used when building
    /// pruned document trees, which keep the *original* base-data IDs.
    /// The ID must be strictly greater (document order) than every ID
    /// emitted so far and must extend the currently open element's ID.
    pub fn begin_with_dewey(&mut self, tag: &str, dewey: DeweyId) -> NodeId {
        if let Some(parent) = self.stack.last() {
            debug_assert!(
                self.doc.node(*parent).dewey.is_ancestor_of(&dewey),
                "dewey {dewey} does not extend open element {}",
                self.doc.node(*parent).dewey
            );
        }
        if let Some(last) = self.doc.nodes.last() {
            debug_assert!(last.dewey < dewey, "nodes must be emitted in document order");
        }
        let tag = self.intern(tag);
        let id = NodeId(self.doc.nodes.len() as u32);
        let parent = self.stack.last().copied();
        self.doc.nodes.push(Node {
            tag,
            parent,
            children: Vec::new(),
            text: None,
            dewey,
            byte_len: 0,
        });
        if let Some(p) = parent {
            self.doc.nodes[p.0 as usize].children.push(id);
        }
        self.stack.push(id);
        self.child_counts.push(0);
        id
    }

    /// Append character data to the currently open element.
    pub fn text(&mut self, text: &str) {
        let cur = *self.stack.last().expect("text outside any element");
        let node = &mut self.doc.nodes[cur.0 as usize];
        match &mut node.text {
            Some(existing) => {
                existing.push(' ');
                existing.push_str(text);
            }
            None => node.text = Some(text.to_string()),
        }
    }

    /// Close the currently open element.
    pub fn end(&mut self) {
        self.stack.pop().expect("end without begin");
        self.child_counts.pop();
    }

    /// Convenience: a leaf element with a text value.
    pub fn leaf(&mut self, tag: &str, value: &str) -> NodeId {
        let id = self.begin(tag);
        self.text(value);
        self.end();
        id
    }

    /// Finish building; computes byte lengths bottom-up.
    ///
    /// # Panics
    /// Panics if elements remain open.
    pub fn finish(mut self) -> Document {
        assert!(self.stack.is_empty(), "unclosed elements at finish");
        // Nodes are in document order, so iterating in reverse visits every
        // child before its parent.
        for i in (0..self.doc.nodes.len()).rev() {
            let mut len = 0u32;
            {
                let n = &self.doc.nodes[i];
                // <tag> + </tag>
                let tag_len = self.doc.tags[n.tag.0 as usize].len() as u32;
                len += 2 * tag_len + 5;
                if let Some(t) = &n.text {
                    len += t.len() as u32;
                }
                for c in &n.children {
                    len += self.doc.nodes[c.0 as usize].byte_len;
                }
            }
            self.doc.nodes[i].byte_len = len;
        }
        self.doc
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.root() {
            Some(r) => write!(f, "{}", crate::write::serialize_subtree(self, r)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("books.xml", 1);
        b.begin("books");
        b.begin("book");
        b.leaf("isbn", "111");
        b.leaf("title", "XML Web Services");
        b.end();
        b.begin("book");
        b.leaf("isbn", "222");
        b.end();
        b.end();
        b.finish()
    }

    #[test]
    fn builder_assigns_contiguous_dewey_ids() {
        let d = sample();
        let ids: Vec<String> = d.iter().map(|n| d.node(n).dewey.to_string()).collect();
        assert_eq!(ids, vec!["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1"]);
    }

    #[test]
    fn node_lookup_by_dewey() {
        let d = sample();
        let n = d.node_by_dewey(&"1.1.2".parse().unwrap()).unwrap();
        assert_eq!(d.node_tag(n), "title");
        assert_eq!(d.value(n), Some("XML Web Services"));
        assert!(d.node_by_dewey(&"1.9".parse().unwrap()).is_none());
    }

    #[test]
    fn subtree_iteration_is_contiguous() {
        let d = sample();
        let book1 = d.node_by_dewey(&"1.1".parse().unwrap()).unwrap();
        let tags: Vec<&str> = d.subtree(book1).map(|n| d.node_tag(n)).collect();
        assert_eq!(tags, vec!["book", "isbn", "title"]);
        let desc: Vec<&str> = d.descendants(book1).map(|n| d.node_tag(n)).collect();
        assert_eq!(desc, vec!["isbn", "title"]);
    }

    #[test]
    fn path_of_walks_to_root() {
        let d = sample();
        let isbn = d.node_by_dewey(&"1.2.1".parse().unwrap()).unwrap();
        assert_eq!(d.path_of(isbn), "/books/book/isbn");
    }

    #[test]
    fn full_text_concatenates_in_document_order() {
        let d = sample();
        let root = d.root().unwrap();
        assert_eq!(d.full_text(root), "111 XML Web Services 222");
    }

    #[test]
    fn byte_lengths_are_monotone_in_the_tree() {
        let d = sample();
        let root = d.root().unwrap();
        let book1 = d.node_by_dewey(&"1.1".parse().unwrap()).unwrap();
        assert!(d.node(root).byte_len > d.node(book1).byte_len);
        // Leaf: <isbn>111</isbn> = 2*4+5+3 = 16
        let isbn = d.node_by_dewey(&"1.1.1".parse().unwrap()).unwrap();
        assert_eq!(d.node(isbn).byte_len, 16);
    }

    #[test]
    fn explicit_dewey_builder_supports_sparse_ids() {
        let mut b = DocumentBuilder::new("pdt", 1);
        b.begin_with_dewey("books", "1".parse().unwrap());
        b.begin_with_dewey("book", "1.2".parse().unwrap());
        b.begin_with_dewey("isbn", "1.2.1".parse().unwrap());
        b.text("121-23");
        b.end();
        b.begin_with_dewey("year", "1.2.6".parse().unwrap());
        b.text("1996");
        b.end();
        b.end();
        b.end();
        let d = b.finish();
        let year = d.node_by_dewey(&"1.2.6".parse().unwrap()).unwrap();
        assert_eq!(d.node_tag(year), "year");
        assert_eq!(d.children(d.root().unwrap()).len(), 1);
    }
}
