//! A small XML parser for the document subset the system stores.
//!
//! Supports elements, attributes (rewritten as leading subelements, per the
//! paper's data model), character data, comments, processing instructions,
//! and the five predefined entities. It does not support namespaces, CDATA,
//! or DTD-internal subsets — none of which the paper's data model uses.

use crate::doc::{Document, DocumentBuilder};
use std::fmt;

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse `input` into a [`Document`] named `name` with the given Dewey root
/// ordinal (documents in a corpus get distinct ordinals).
pub fn parse_document(name: &str, input: &str, root_ordinal: u32) -> Result<Document, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        builder: DocumentBuilder::new(name, root_ordinal),
        depth: 0,
    };
    p.skip_prolog();
    p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(p.builder.finish())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    builder: DocumentBuilder,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_misc();
    }

    /// Skip whitespace, comments and processing instructions.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if let Some(end) = find(self.bytes, self.pos + 4, "-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<?") {
                if let Some(end) = find(self.bytes, self.pos + 2, "?>") {
                    self.pos = end + 2;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<!DOCTYPE") {
                if let Some(end) = find(self.bytes, self.pos, ">") {
                    self.pos = end + 1;
                    continue;
                }
            }
            return;
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string())
    }

    fn parse_element(&mut self) -> Result<(), ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let tag = self.read_name()?;
        self.builder.begin(&tag);
        self.depth += 1;

        // Attributes -> leading subelements.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    self.builder.end();
                    self.depth -= 1;
                    return Ok(());
                }
                Some(_) => {
                    let attr = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                    let value = unescape(raw);
                    self.pos += 1;
                    self.builder.leaf(&attr, &value);
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.read_name()?;
                        if close != tag {
                            return Err(
                                self.err(format!("mismatched close tag </{close}> for <{tag}>"))
                            );
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in close tag"));
                        }
                        self.pos += 1;
                        self.builder.end();
                        self.depth -= 1;
                        return Ok(());
                    }
                    self.parse_element()?;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 text"))?;
                    let text = unescape(raw);
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        self.builder.text(trimmed);
                    }
                }
                None => return Err(self.err(format!("unterminated element <{tag}>"))),
            }
        }
    }
}

fn find(bytes: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    bytes[from..].windows(n.len()).position(|w| w == n).map(|i| from + i)
}

/// Replace the five predefined XML entities.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let (rep, consumed) = if rest.starts_with("&amp;") {
            ('&', 5)
        } else if rest.starts_with("&lt;") {
            ('<', 4)
        } else if rest.starts_with("&gt;") {
            ('>', 4)
        } else if rest.starts_with("&quot;") {
            ('"', 6)
        } else if rest.starts_with("&apos;") {
            ('\'', 6)
        } else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        out.push(rep);
        rest = &rest[consumed..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_with_text() {
        let d = parse_document(
            "b.xml",
            "<books><book><isbn>111</isbn><title>XML</title></book></books>",
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 4);
        let isbn = d.node_by_dewey(&"1.1.1".parse().unwrap()).unwrap();
        assert_eq!(d.node_tag(isbn), "isbn");
        assert_eq!(d.value(isbn), Some("111"));
    }

    #[test]
    fn attributes_become_leading_subelements() {
        let d =
            parse_document("b.xml", r#"<book isbn="111-11"><title>X</title></book>"#, 1).unwrap();
        let kids: Vec<&str> =
            d.children(d.root().unwrap()).iter().map(|n| d.node_tag(*n)).collect();
        assert_eq!(kids, vec!["isbn", "title"]);
        let isbn = d.node_by_dewey(&"1.1".parse().unwrap()).unwrap();
        assert_eq!(d.value(isbn), Some("111-11"));
    }

    #[test]
    fn self_closing_and_comments_and_prolog() {
        let d = parse_document(
            "t",
            "<?xml version=\"1.0\"?><!-- hi --><a><b/><!-- inner --><c>x</c></a>",
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.node_tag(d.node_by_dewey(&"1.1".parse().unwrap()).unwrap()), "b");
    }

    #[test]
    fn entity_unescaping() {
        let d = parse_document("t", "<a>x &amp; y &lt;z&gt;</a>", 1).unwrap();
        assert_eq!(d.value(d.root().unwrap()), Some("x & y <z>"));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let d = parse_document("t", "<a>\n  <b>x</b>\n</a>", 1).unwrap();
        assert_eq!(d.node(d.root().unwrap()).text, None);
    }

    #[test]
    fn mismatched_close_tag_is_an_error() {
        let e = parse_document("t", "<a><b>x</a></b>", 1).unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn truncated_document_is_an_error() {
        assert!(parse_document("t", "<a><b>x</b>", 1).is_err());
        assert!(parse_document("t", "", 1).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_document("t", "<a/>junk", 1).is_err());
    }

    #[test]
    fn round_trip_through_serializer() {
        let src = "<books><book><isbn>111</isbn><title>XML and search</title></book></books>";
        let d = parse_document("t", src, 1).unwrap();
        assert_eq!(crate::write::serialize_subtree(&d, d.root().unwrap()), src);
    }
}
