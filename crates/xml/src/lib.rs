#![warn(missing_docs)]
//! # vxv-xml — XML data model substrate
//!
//! The storage layer underneath *Efficient Keyword Search over Virtual XML
//! Views* (Shao et al., VLDB 2007): Dewey-identified arena documents, a
//! parser/serializer pair for the paper's XML subset, and the base-data
//! [`Corpus`] that the top-k materialization step (and only that step)
//! reads from.
//!
//! ```
//! use vxv_xml::{parse_document, serialize_subtree};
//! let doc = parse_document("books.xml", "<books><book><isbn>1</isbn></book></books>", 1).unwrap();
//! let book = doc.node_by_dewey(&"1.1".parse().unwrap()).unwrap();
//! assert_eq!(serialize_subtree(&doc, book), "<book><isbn>1</isbn></book>");
//! ```

pub mod dewey;
pub mod diskstore;
pub mod doc;
pub mod parse;
pub mod source;
pub mod storage;
pub mod value;
pub mod write;

pub use dewey::DeweyId;
pub use diskstore::{DiskStore, DiskStoreStats, StoreError};
pub use doc::{Document, DocumentBuilder, Node, NodeId, TagId};
pub use parse::{parse_document, ParseError};
pub use source::{DocumentSource, SourceError};
pub use storage::Corpus;
pub use write::{serialize_pretty, serialize_subtree, serialize_with_offsets};
