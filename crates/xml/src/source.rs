//! [`DocumentSource`] — pluggable base-data storage for top-k
//! materialization.
//!
//! The search pipeline touches base documents in exactly one place: when
//! the top-k hits are expanded into XML. This trait is that seam. The
//! in-memory [`Corpus`] and the disk-backed [`DiskStore`] both implement
//! it, and an engine generic over `DocumentSource` runs unchanged (and
//! produces byte-identical hits) against either — or against any other
//! backend an embedder supplies (a remote blob store, a cache tier, …).
//!
//! Implementations must be `Send + Sync`: engines and prepared views
//! *own* their source (shared via `Arc`), live in servers, thread pools
//! and async tasks, and every search materializes through the same
//! source concurrently. Owned containers forward the impl — `Arc<S>`,
//! `Box<S>`, and plain `&S` are all sources whenever `S` is.

use crate::dewey::DeweyId;
use crate::diskstore::{DiskStore, StoreError};
use crate::storage::Corpus;
use crate::write::serialize_subtree;
use std::fmt;

/// A base-data read failed for a reason other than the element being
/// absent (I/O error, corrupt storage, …). Absence is not an error: it
/// is the `Ok(None)` case of [`DocumentSource::subtree_xml`].
#[derive(Debug)]
pub struct SourceError {
    message: String,
}

impl SourceError {
    /// Wrap a backend failure description.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError { message: message.into() }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "document source error: {}", self.message)
    }
}

impl std::error::Error for SourceError {}

/// Base-data storage that can materialize one element subtree at a time.
pub trait DocumentSource: Send + Sync {
    /// The serialized XML of the subtree rooted at `dewey`; `Ok(None)` if
    /// the element is not in storage, `Err` if the read itself failed.
    /// Each `Ok(Some(_))` counts as one base-data fetch.
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError>;

    /// Monotone count of base-data fetches served so far.
    fn fetch_count(&self) -> u64;

    /// A short label for diagnostics (e.g. `"corpus"`, `"disk"`).
    fn kind(&self) -> &'static str {
        "source"
    }
}

impl DocumentSource for Corpus {
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        Ok(self.fetch_subtree(dewey).map(|(doc, node)| serialize_subtree(doc, node)))
    }

    fn fetch_count(&self) -> u64 {
        Corpus::fetch_count(self)
    }

    fn kind(&self) -> &'static str {
        "corpus"
    }
}

impl DocumentSource for DiskStore {
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        match self.read_subtree_xml(dewey) {
            Ok(xml) => Ok(Some(xml)),
            Err(StoreError::Unknown(_)) => Ok(None),
            Err(e) => Err(SourceError::new(e.to_string())),
        }
    }

    fn fetch_count(&self) -> u64 {
        self.stats().range_reads
    }

    fn kind(&self) -> &'static str {
        "disk"
    }
}

/// Forwarding impl so `&S` works wherever an owned source is expected.
impl<S: DocumentSource + ?Sized> DocumentSource for &S {
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        (**self).subtree_xml(dewey)
    }

    fn fetch_count(&self) -> u64 {
        (**self).fetch_count()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// Shared-ownership forwarding: the service tier hands one source to
/// many engines/catalogs via `Arc`.
impl<S: DocumentSource + ?Sized> DocumentSource for std::sync::Arc<S> {
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        (**self).subtree_xml(dewey)
    }

    fn fetch_count(&self) -> u64 {
        (**self).fetch_count()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// Owned forwarding for boxed (possibly type-erased) sources.
impl<S: DocumentSource + ?Sized> DocumentSource for Box<S> {
    fn subtree_xml(&self, dewey: &DeweyId) -> Result<Option<String>, SourceError> {
        (**self).subtree_xml(dewey)
    }

    fn fetch_count(&self) -> u64 {
        (**self).fetch_count()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_and_disk_store_materialize_identically() {
        let mut c = Corpus::new();
        c.add_parsed("b.xml", "<books><book><isbn>1</isbn><title>XML</title></book></books>")
            .unwrap();
        let dir = std::env::temp_dir().join(format!("vxv-source-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::persist(&c, &dir).unwrap();

        let id: DeweyId = "1.1".parse().unwrap();
        let from_corpus = DocumentSource::subtree_xml(&c, &id).unwrap().unwrap();
        let from_disk = DocumentSource::subtree_xml(&store, &id).unwrap().unwrap();
        assert_eq!(from_corpus, from_disk);
        assert_eq!(from_corpus, "<book><isbn>1</isbn><title>XML</title></book>");

        // Both backends count the fetch.
        assert_eq!(DocumentSource::fetch_count(&c), 1);
        assert_eq!(DocumentSource::fetch_count(&store), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_elements_are_none_on_both_backends() {
        let mut c = Corpus::new();
        c.add_parsed("b.xml", "<r><e>x</e></r>").unwrap();
        let dir = std::env::temp_dir().join(format!("vxv-source-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::persist(&c, &dir).unwrap();
        let id: DeweyId = "9.1".parse().unwrap();
        assert!(DocumentSource::subtree_xml(&c, &id).unwrap().is_none());
        assert!(DocumentSource::subtree_xml(&store, &id).unwrap().is_none());
        // Misses are not fetches on either backend.
        assert_eq!(DocumentSource::fetch_count(&c), 0);
        assert_eq!(DocumentSource::fetch_count(&store), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
