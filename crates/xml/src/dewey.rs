//! Dewey identifiers (hierarchical element numbering).
//!
//! A Dewey ID encodes the position of an element in a document: the ID of an
//! element contains the ID of its parent as a prefix (paper §3.2, Fig. 4a).
//! Ordering Dewey IDs lexicographically by component — with a proper prefix
//! sorting before its extensions — yields document order, which is the
//! property the single-pass PDT merge algorithm relies on.

use std::fmt;

/// A hierarchical Dewey identifier such as `1.2.3`.
///
/// The first component identifies the document root (documents loaded into
/// the same corpus get distinct root ordinals, mirroring the paper's
/// examples where book elements live under `1.*` and reviews under `2.*`).
/// Each further component is the 1-based ordinal of a child under its
/// parent.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeweyId(Vec<u32>);

impl DeweyId {
    /// The root ID for a document with the given root ordinal.
    pub fn root(ordinal: u32) -> Self {
        DeweyId(vec![ordinal])
    }

    /// Builds an ID directly from components. Empty component lists are
    /// permitted and denote the virtual "super-root" above all documents.
    pub fn from_components(components: Vec<u32>) -> Self {
        DeweyId(components)
    }

    /// The components of this ID, outermost first.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Number of components; equals 1 + depth below the document root.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-component super-root ID.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The ID of the `ordinal`-th (1-based) child of this element.
    pub fn child(&self, ordinal: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(ordinal);
        DeweyId(v)
    }

    /// The parent ID, or `None` for a root / super-root ID.
    pub fn parent(&self) -> Option<Self> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(DeweyId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The prefix of this ID with `len` components.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> Self {
        assert!(len <= self.0.len(), "prefix longer than id");
        DeweyId(self.0[..len].to_vec())
    }

    /// True iff `self` is a (non-strict) prefix of `other`, i.e. `self`
    /// identifies `other` or one of its ancestors.
    pub fn is_prefix_of(&self, other: &DeweyId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// True iff `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        other.0.len() > self.0.len() && self.is_prefix_of(other)
    }

    /// True iff `self` is the parent of `other`.
    pub fn is_parent_of(&self, other: &DeweyId) -> bool {
        other.0.len() == self.0.len() + 1 && self.is_prefix_of(other)
    }

    /// The smallest ID that is strictly greater than every descendant of
    /// `self`; `[a, b, c]` maps to `[a, b, c + 1]`. Used for subtree range
    /// scans over sorted posting lists.
    ///
    /// # Panics
    /// Panics on the super-root ID.
    pub fn subtree_upper_bound(&self) -> Self {
        let mut v = self.0.clone();
        let last = v.last_mut().expect("super-root has no subtree bound");
        *last += 1;
        DeweyId(v)
    }

    /// Length of the longest common prefix with `other`, in components.
    pub fn common_prefix_len(&self, other: &DeweyId) -> usize {
        self.0.iter().zip(other.0.iter()).take_while(|(a, b)| a == b).count()
    }
}

impl fmt::Display for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeweyId({self})")
    }
}

impl std::str::FromStr for DeweyId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(DeweyId(Vec::new()));
        }
        s.split('.').map(|c| c.parse::<u32>()).collect::<Result<Vec<_>, _>>().map(DeweyId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> DeweyId {
        s.parse().unwrap()
    }

    #[test]
    fn document_order_is_lexicographic_with_prefix_first() {
        let mut ids = [id("1.2"), id("1.1.1"), id("1"), id("1.10"), id("1.2.1"), id("1.1")];
        ids.sort();
        let rendered: Vec<String> = ids.iter().map(|d| d.to_string()).collect();
        assert_eq!(rendered, vec!["1", "1.1", "1.1.1", "1.2", "1.2.1", "1.10"]);
    }

    #[test]
    fn prefix_relations() {
        assert!(id("1.2").is_prefix_of(&id("1.2")));
        assert!(id("1.2").is_prefix_of(&id("1.2.3")));
        assert!(id("1.2").is_ancestor_of(&id("1.2.3.4")));
        assert!(!id("1.2").is_ancestor_of(&id("1.2")));
        assert!(!id("1.2").is_prefix_of(&id("1.20")));
        assert!(id("1.2").is_parent_of(&id("1.2.7")));
        assert!(!id("1.2").is_parent_of(&id("1.2.7.1")));
    }

    #[test]
    fn parent_and_child() {
        assert_eq!(id("1.2.3").parent(), Some(id("1.2")));
        assert_eq!(id("1").parent(), None);
        assert_eq!(id("1.2").child(3), id("1.2.3"));
        assert_eq!(DeweyId::root(4), id("4"));
    }

    #[test]
    fn subtree_upper_bound_covers_exactly_the_subtree() {
        let d = id("1.2");
        let hi = d.subtree_upper_bound();
        assert_eq!(hi, id("1.3"));
        assert!(id("1.2.99") < hi);
        assert!(id("1.2") < hi);
        assert!((id("1.3") >= hi));
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(id("1.2.3").prefix(2), id("1.2"));
        assert_eq!(id("1.2.3").prefix(0), DeweyId::from_components(vec![]));
    }

    #[test]
    fn common_prefix_len() {
        assert_eq!(id("1.2.3").common_prefix_len(&id("1.2.9")), 2);
        assert_eq!(id("1.2").common_prefix_len(&id("3.4")), 0);
        assert_eq!(id("1.2").common_prefix_len(&id("1.2")), 2);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["1", "1.2.3", "7.1.19.2"] {
            assert_eq!(id(s).to_string(), s);
        }
    }
}
