//! Atomic value comparison semantics shared by the query evaluator, the
//! path-index predicate probes, and the QPT leaf predicates.
//!
//! XQuery general comparisons on untyped data compare numerically when both
//! operands parse as numbers, otherwise by string. Keeping one definition
//! here guarantees that index-side predicate evaluation (used while
//! building PDTs) agrees exactly with evaluator-side predicate evaluation
//! (used by the Baseline system), which Theorem 4.1's equivalence needs.

use std::cmp::Ordering;

/// Compare two atomic values: numerically if both parse as `f64`
/// (NaN never does), otherwise lexicographically as strings.
pub fn compare_atomic(a: &str, b: &str) -> Ordering {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.cmp(b),
    }
}

/// Equality under [`compare_atomic`].
pub fn atomic_eq(a: &str, b: &str) -> bool {
    compare_atomic(a, b) == Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_when_both_numeric() {
        assert_eq!(compare_atomic("1995", "2004"), Ordering::Less);
        assert_eq!(compare_atomic("10", "9"), Ordering::Greater);
        assert_eq!(compare_atomic("07", "7"), Ordering::Equal);
        assert_eq!(compare_atomic(" 3.5 ", "3.50"), Ordering::Equal);
    }

    #[test]
    fn string_comparison_otherwise() {
        assert_eq!(compare_atomic("10", "9a"), Ordering::Less); // "10" < "9a" as strings
        assert_eq!(compare_atomic("apple", "banana"), Ordering::Less);
        assert!(atomic_eq("Jane", "Jane"));
        assert!(!atomic_eq("Jane", "jane"));
    }
}
