//! Disk-backed document storage.
//!
//! The paper's experiments run against a database whose base documents
//! live in (disk) document storage; only the indices are cheap to consult.
//! An in-memory corpus would flatten exactly the cost structure the paper
//! measures — "avoid accessing the base data" is only a win when base
//! data access costs something — so the experiment harness persists every
//! document to a file and routes each system's base-data accesses through
//! this store:
//!
//! * the Efficient pipeline reads only the top-k hit subtrees (positioned
//!   range reads via the per-element offset map);
//! * Baseline and Proj must read and parse whole documents;
//! * GTP issues one small read per join/predicate value.
//!
//! All reads are counted, so experiments can report access volumes next
//! to wall-clock times.

use crate::dewey::DeweyId;
use crate::doc::Document;
use crate::parse::{parse_document, ParseError};
use crate::storage::Corpus;
use crate::write::serialize_with_offsets;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-document storage map: element Dewey ID → (offset, length) in the
/// serialized file. This is storage metadata (Quark keeps the same), not
/// base data.
#[derive(Debug, Default)]
struct DocCatalog {
    path: PathBuf,
    root_ordinal: u32,
    offsets: BTreeMap<DeweyId, (u64, u32)>,
}

/// Read-access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStoreStats {
    /// Positioned subtree / value reads.
    pub range_reads: u64,
    /// Whole-document reads.
    pub full_reads: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written (Baseline's view materialization).
    pub bytes_written: u64,
    /// Simulated I/O time accrued by the cost model.
    pub simulated_io: std::time::Duration,
}

/// A simulated storage device, for experiments.
///
/// The paper's testbed (2007: data and ~2 GB of indices on a spinning
/// disk, 2 GB RAM) made base-data access genuinely expensive; on a modern
/// page-cached filesystem it is nearly free, which would erase exactly
/// the cost the paper's design avoids. When a cost model is installed,
/// every store access *blocks* for the time the modelled device would
/// take: a positioning latency per discontiguous read, plus transfer time
/// at the sequential rate. Reads within `seq_window` bytes after the
/// previous read on the same file count as sequential (the head reads
/// through the gap; no positioning cost).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Positioning (seek/rotation) latency per discontiguous access.
    pub read_latency: std::time::Duration,
    /// Sequential transfer rate, bytes per second.
    pub bytes_per_sec: f64,
    /// Forward gap still treated as one sequential pass.
    pub seq_window: u64,
    /// Buffer-pool page size; pages already read this session cost
    /// nothing again (0 disables the buffer pool).
    pub page_bytes: u64,
}

impl CostModel {
    /// Constants matching the paper's 2007-era testbed disk:
    /// ~8 ms positioning, ~60 MB/s sequential transfer, 8 KB pages
    /// cached in a buffer pool.
    pub fn disk_2007() -> Self {
        CostModel {
            read_latency: std::time::Duration::from_micros(8000),
            bytes_per_sec: 60.0 * 1024.0 * 1024.0,
            seq_window: 256 * 1024,
            page_bytes: 8 * 1024,
        }
    }
}

/// A directory of serialized documents with positioned-read access.
///
/// `Sync`: counters are atomic and the cost-model bookkeeping sits behind
/// mutexes, so one store can serve concurrent searches from multiple
/// threads (each access is still charged exactly once).
#[derive(Debug, Default)]
pub struct DiskStore {
    docs: BTreeMap<String, DocCatalog>,
    range_reads: AtomicU64,
    full_reads: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    /// Simulated I/O accrued, in nanoseconds.
    simulated_io_ns: AtomicU64,
    cost_model: Option<CostModel>,
    /// Last byte position touched per document root ordinal (for the
    /// sequential-window heuristic of the cost model).
    head_pos: Mutex<std::collections::HashMap<u32, u64>>,
    /// Buffer pool: (ordinal, page) pairs already paid for.
    pool: Mutex<std::collections::HashSet<(u32, u64)>>,
}

/// File name of the persisted store catalog inside a store directory.
pub const CATALOG_FILE: &str = "store.vxc";

const CATALOG_MAGIC: &str = "VXVSTOR1";

impl DiskStore {
    /// Persist every document of `corpus` into `dir` (created if
    /// needed), together with a catalog file so the store can later be
    /// [`Self::open`]ed cold — without re-parsing any document.
    pub fn persist(corpus: &Corpus, dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        let mut store = DiskStore::default();
        for (i, doc) in corpus.docs().enumerate() {
            let (xml, offsets) = serialize_with_offsets(doc);
            let file_name = format!("doc{:04}.xml", i);
            let path = dir.join(file_name);
            std::fs::write(&path, xml.as_bytes())?;
            let root_ordinal = doc.root().map(|r| doc.node(r).dewey.components()[0]).unwrap_or(0);
            store.docs.insert(
                doc.name().to_string(),
                DocCatalog {
                    path,
                    root_ordinal,
                    offsets: offsets.into_iter().map(|(d, o, l)| (d, (o, l))).collect(),
                },
            );
        }
        store.write_catalog(dir)?;
        Ok(store)
    }

    /// Persist an **ingested segment**'s documents into an existing store
    /// directory and extend the catalog in place. Returns the segment
    /// file namespace it allocated: files are written as
    /// `seg{NNNN}-doc{NNNN}.xml` under the smallest namespace no catalog
    /// entry uses yet, so successive ingests can never clobber each
    /// other's documents (or the base `doc{NNNN}.xml` files
    /// [`Self::persist`] writes) — even after an index-level compaction
    /// shrank the *segment count*, the file namespaces stay monotone.
    ///
    /// The whole batch is validated first (document names and root
    /// ordinals must be new to the store, and the batch internally
    /// consistent); nothing is written and the catalog is unchanged on a
    /// rejected batch.
    pub fn append_segment(&mut self, corpus: &Corpus, dir: &Path) -> io::Result<u64> {
        std::fs::create_dir_all(dir)?;
        // Validate the entire batch before touching disk or the catalog.
        let mut batch_ordinals = std::collections::HashSet::new();
        for doc in corpus.docs() {
            if self.docs.contains_key(doc.name()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("document '{}' is already in the store", doc.name()),
                ));
            }
            let root_ordinal = doc.root().map(|r| doc.node(r).dewey.components()[0]).unwrap_or(0);
            let duplicate = !batch_ordinals.insert(root_ordinal)
                || self.docs.values().any(|c| c.root_ordinal == root_ordinal);
            if duplicate {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("root ordinal {root_ordinal} is already in the store"),
                ));
            }
        }
        let segment = self.next_segment_namespace();
        for (i, doc) in corpus.docs().enumerate() {
            let (xml, offsets) = serialize_with_offsets(doc);
            let file_name = format!("seg{segment:04}-doc{i:04}.xml");
            let path = dir.join(file_name);
            std::fs::write(&path, xml.as_bytes())?;
            let root_ordinal = doc.root().map(|r| doc.node(r).dewey.components()[0]).unwrap_or(0);
            self.docs.insert(
                doc.name().to_string(),
                DocCatalog {
                    path,
                    root_ordinal,
                    offsets: offsets.into_iter().map(|(d, o, l)| (d, (o, l))).collect(),
                },
            );
        }
        self.write_catalog(dir)?;
        Ok(segment)
    }

    /// The smallest `seg{NNNN}-` file namespace no cataloged document
    /// uses (namespaces are parsed from the catalog's file names, so
    /// they survive reopen and outlive index-level compaction).
    fn next_segment_namespace(&self) -> u64 {
        self.docs
            .values()
            .filter_map(|c| {
                let name = c.path.file_name()?.to_str()?;
                let digits = name.strip_prefix("seg")?.split('-').next()?;
                digits.parse::<u64>().ok()
            })
            .max()
            .map(|m| m + 1)
            .unwrap_or(1)
    }

    /// Re-open a store previously written by [`Self::persist`] from its
    /// catalog alone: document files are located but neither read nor
    /// parsed (a cold open costs one catalog read, not a corpus walk).
    pub fn open(dir: &Path) -> Result<DiskStore, StoreError> {
        let text = std::fs::read_to_string(dir.join(CATALOG_FILE)).map_err(StoreError::Io)?;
        let mut lines = text.lines();
        if lines.next() != Some(CATALOG_MAGIC) {
            return Err(StoreError::corrupt(CATALOG_FILE));
        }
        let mut store = DiskStore::default();
        let mut current: Option<(String, DocCatalog)> = None;
        for line in lines {
            let mut fields = line.split('\t');
            match fields.next() {
                Some("doc") => {
                    if let Some((name, cat)) = current.take() {
                        store.docs.insert(name, cat);
                    }
                    let (Some(name), Some(file), Some(ord)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(StoreError::corrupt(CATALOG_FILE));
                    };
                    let root_ordinal =
                        ord.parse().map_err(|_| StoreError::corrupt(CATALOG_FILE))?;
                    current = Some((
                        name.to_string(),
                        DocCatalog { path: dir.join(file), root_ordinal, offsets: BTreeMap::new() },
                    ));
                }
                Some("off") => {
                    let Some((_, cat)) = current.as_mut() else {
                        return Err(StoreError::corrupt(CATALOG_FILE));
                    };
                    let (Some(dewey), Some(off), Some(len)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(StoreError::corrupt(CATALOG_FILE));
                    };
                    let dewey: DeweyId =
                        dewey.parse().map_err(|_| StoreError::corrupt(CATALOG_FILE))?;
                    let off = off.parse().map_err(|_| StoreError::corrupt(CATALOG_FILE))?;
                    let len = len.parse().map_err(|_| StoreError::corrupt(CATALOG_FILE))?;
                    cat.offsets.insert(dewey, (off, len));
                }
                _ => return Err(StoreError::corrupt(CATALOG_FILE)),
            }
        }
        if let Some((name, cat)) = current.take() {
            store.docs.insert(name, cat);
        }
        Ok(store)
    }

    /// Write the store catalog (document names, file names, root
    /// ordinals, and per-element offset maps) into `dir`.
    fn write_catalog(&self, dir: &Path) -> io::Result<()> {
        let mut out = String::from(CATALOG_MAGIC);
        out.push('\n');
        for (name, cat) in &self.docs {
            let file = cat.path.file_name().map(|f| f.to_string_lossy()).unwrap_or_default();
            out.push_str(&format!("doc\t{name}\t{file}\t{}\n", cat.root_ordinal));
            for (dewey, (off, len)) in &cat.offsets {
                out.push_str(&format!("off\t{dewey}\t{off}\t{len}\n"));
            }
        }
        std::fs::write(dir.join(CATALOG_FILE), out)
    }

    /// Install (or clear) the simulated device cost model.
    pub fn set_cost_model(&mut self, model: Option<CostModel>) {
        self.cost_model = model;
    }

    /// Builder form of [`Self::set_cost_model`].
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Charge a read of `len` bytes at `offset` within `file` against the
    /// cost model (blocking for the simulated duration), and update the
    /// head position.
    #[allow(clippy::manual_checked_ops)]
    fn charge_read(&self, file: u32, offset: u64, len: u64) {
        let Some(m) = &self.cost_model else { return };
        // Buffer pool: pages paid for once this session are memory hits.
        if m.page_bytes > 0 {
            let first = offset / m.page_bytes;
            let last = (offset + len.max(1) - 1) / m.page_bytes;
            let mut pool = self.pool.lock().unwrap();
            let mut uncached = 0u64;
            for p in first..=last {
                if pool.insert((file, p)) {
                    uncached += 1;
                }
            }
            if uncached == 0 {
                return;
            }
            drop(pool);
            // Pay for the uncached pages (devices read whole pages).
            let mut heads = self.head_pos.lock().unwrap();
            let head = heads.entry(file).or_insert(u64::MAX);
            let sequential = *head != u64::MAX && offset >= *head && offset - *head <= m.seq_window;
            let mut d = std::time::Duration::from_secs_f64(
                (uncached * m.page_bytes) as f64 / m.bytes_per_sec,
            );
            if !sequential {
                d += m.read_latency;
            }
            *head = offset + len;
            drop(heads);
            self.block_for(d);
            return;
        }
        let mut heads = self.head_pos.lock().unwrap();
        let head = heads.entry(file).or_insert(u64::MAX);
        let sequential = *head != u64::MAX && offset >= *head && offset - *head <= m.seq_window;
        let transfer_bytes = if sequential { offset - *head + len } else { len };
        let mut d = std::time::Duration::from_secs_f64(transfer_bytes as f64 / m.bytes_per_sec);
        if !sequential {
            d += m.read_latency;
        }
        *head = offset + len;
        drop(heads);
        self.block_for(d);
    }

    /// Charge a sequential write of `len` bytes (Baseline's materialized
    /// view goes back into document storage).
    pub fn charge_write(&self, len: u64) {
        self.bytes_written.fetch_add(len, Ordering::Relaxed);
        let Some(m) = &self.cost_model else { return };
        let d = m.read_latency + std::time::Duration::from_secs_f64(len as f64 / m.bytes_per_sec);
        self.block_for(d);
    }

    fn block_for(&self, d: std::time::Duration) {
        self.simulated_io_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        // Spin for accuracy at microsecond scales; sleep for long waits.
        if d > std::time::Duration::from_millis(2) {
            std::thread::sleep(d);
        } else {
            let t0 = std::time::Instant::now();
            while t0.elapsed() < d {
                std::hint::spin_loop();
            }
        }
    }

    /// Document names in the store.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(|s| s.as_str())
    }

    /// Read and parse a whole document (what Baseline and Proj must do).
    pub fn read_document(&self, name: &str) -> Result<Document, StoreError> {
        let cat = self.docs.get(name).ok_or_else(|| StoreError::unknown(name))?;
        let bytes = std::fs::read(&cat.path).map_err(StoreError::Io)?;
        self.charge_read(cat.root_ordinal, 0, bytes.len() as u64);
        self.full_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let text = String::from_utf8(bytes).map_err(|_| StoreError::corrupt(name))?;
        parse_document(name, &text, cat.root_ordinal).map_err(StoreError::Parse)
    }

    /// Read the full corpus back (Baseline's "access everything" path).
    pub fn read_all(&self) -> Result<Corpus, StoreError> {
        let mut corpus = Corpus::new();
        for name in self.docs.keys() {
            corpus.add(self.read_document(name)?);
        }
        Ok(corpus)
    }

    /// Positioned read of one element's serialized subtree (the Efficient
    /// pipeline's top-k materialization; one small read per hit element).
    pub fn read_subtree_xml(&self, dewey: &DeweyId) -> Result<String, StoreError> {
        let (cat, off, len) = self.locate(dewey)?;
        self.charge_read(cat.root_ordinal, off, len as u64);
        let mut f = File::open(&cat.path).map_err(StoreError::Io)?;
        f.seek(SeekFrom::Start(off)).map_err(StoreError::Io)?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf).map_err(StoreError::Io)?;
        self.range_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        String::from_utf8(buf).map_err(|_| StoreError::corrupt(&cat.path.display().to_string()))
    }

    /// Positioned read of one element's direct text value (what GTP does
    /// per join key / predicate check).
    pub fn read_value(&self, dewey: &DeweyId) -> Result<Option<String>, StoreError> {
        let xml = self.read_subtree_xml(dewey)?;
        // `<tag>value</tag>` — direct text runs from the first '>' to the
        // first '<' after it. Elements with child elements have no direct
        // value in this data model.
        let Some(gt) = xml.find('>') else { return Ok(None) };
        let rest = &xml[gt + 1..];
        let Some(lt) = rest.find('<') else { return Ok(None) };
        if rest[lt..].starts_with("</") && lt > 0 {
            Ok(Some(rest[..lt].to_string()))
        } else {
            Ok(None)
        }
    }

    /// Byte length of an element's serialization (storage metadata).
    pub fn subtree_len(&self, dewey: &DeweyId) -> Option<u32> {
        self.locate(dewey).ok().map(|(_, _, len)| len)
    }

    fn locate(&self, dewey: &DeweyId) -> Result<(&DocCatalog, u64, u32), StoreError> {
        let ord = dewey.components().first().copied().unwrap_or(0);
        let cat = self
            .docs
            .values()
            .find(|c| c.root_ordinal == ord)
            .ok_or_else(|| StoreError::unknown(&format!("ordinal {ord}")))?;
        let (off, len) = cat
            .offsets
            .get(dewey)
            .copied()
            .ok_or_else(|| StoreError::unknown(&dewey.to_string()))?;
        Ok((cat, off, len))
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> DiskStoreStats {
        DiskStoreStats {
            range_reads: self.range_reads.load(Ordering::Relaxed),
            full_reads: self.full_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            simulated_io: std::time::Duration::from_nanos(
                self.simulated_io_ns.load(Ordering::Relaxed),
            ),
        }
    }

    /// Reset the access counters (and the simulated head positions).
    pub fn reset_stats(&self) {
        self.range_reads.store(0, Ordering::Relaxed);
        self.full_reads.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.simulated_io_ns.store(0, Ordering::Relaxed);
        self.head_pos.lock().unwrap().clear();
        self.pool.lock().unwrap().clear();
    }
}

/// Errors of the disk store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// The stored bytes no longer parse as XML.
    Parse(ParseError),
    /// The requested document or element is not in the store.
    Unknown(String),
    /// The stored bytes are not valid UTF-8.
    Corrupt(String),
}

impl StoreError {
    fn unknown(what: &str) -> Self {
        StoreError::Unknown(what.to_string())
    }

    fn corrupt(what: &str) -> Self {
        StoreError::Corrupt(what.to_string())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Parse(e) => write!(f, "store parse error: {e}"),
            StoreError::Unknown(w) => write!(f, "not in store: {w}"),
            StoreError::Corrupt(w) => write!(f, "corrupt store entry: {w}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxv-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>111</isbn><title>XML Web</title></book><book><isbn>222</isbn></book></books>",
        )
        .unwrap();
        c.add_parsed("reviews.xml", "<reviews><review><isbn>111</isbn></review></reviews>")
            .unwrap();
        c
    }

    #[test]
    fn round_trips_documents_through_disk() {
        let dir = tmpdir("roundtrip");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        let doc = store.read_document("books.xml").unwrap();
        assert_eq!(doc.len(), c.doc("books.xml").unwrap().len());
        let back = store.read_all().unwrap();
        assert_eq!(back.byte_size(), c.byte_size());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_reads_return_exact_subtrees() {
        let dir = tmpdir("range");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        let xml = store.read_subtree_xml(&"1.1".parse().unwrap()).unwrap();
        assert_eq!(xml, "<book><isbn>111</isbn><title>XML Web</title></book>");
        let xml = store.read_subtree_xml(&"2.1.1".parse().unwrap()).unwrap();
        assert_eq!(xml, "<isbn>111</isbn>");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn value_reads_extract_leaf_text_only() {
        let dir = tmpdir("value");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        assert_eq!(store.read_value(&"1.1.1".parse().unwrap()).unwrap(), Some("111".to_string()));
        // Non-leaf element: no direct value.
        assert_eq!(store.read_value(&"1.1".parse().unwrap()).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn access_counters_track_reads() {
        let dir = tmpdir("stats");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        store.read_document("books.xml").unwrap();
        store.read_subtree_xml(&"1.1".parse().unwrap()).unwrap();
        let s = store.stats();
        assert_eq!(s.full_reads, 1);
        assert_eq!(s.range_reads, 1);
        assert!(s.bytes_read > 0);
        store.reset_stats();
        assert_eq!(store.stats(), DiskStoreStats::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_ids_error() {
        let dir = tmpdir("unknown");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        assert!(store.read_subtree_xml(&"9.1".parse().unwrap()).is_err());
        assert!(store.read_document("zzz.xml").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cold_open_serves_reads_without_reparsing() {
        let dir = tmpdir("coldopen");
        let c = corpus();
        {
            DiskStore::persist(&c, &dir).unwrap();
        }
        // Re-open from the catalog alone.
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.names().count(), 2);
        let xml = store.read_subtree_xml(&"1.1".parse().unwrap()).unwrap();
        assert_eq!(xml, "<book><isbn>111</isbn><title>XML Web</title></book>");
        assert_eq!(store.read_value(&"2.1.1".parse().unwrap()).unwrap(), Some("111".to_string()));
        // Offset maps round-trip exactly.
        let doc = c.doc("books.xml").unwrap();
        for n in doc.iter() {
            let node = doc.node(n);
            assert_eq!(store.subtree_len(&node.dewey), Some(node.byte_len));
        }
        // Counters start cold.
        assert_eq!(store.stats().full_reads, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appended_segments_survive_a_cold_reopen() {
        let dir = tmpdir("append");
        let c = corpus();
        let mut store = DiskStore::persist(&c, &dir).unwrap();
        // Ingest a late document under a fresh ordinal, segment-namespaced.
        let mut late = Corpus::new();
        late.add(
            crate::parse::parse_document("late.xml", "<late><e>new data</e></late>", 7).unwrap(),
        );
        let ns = store.append_segment(&late, &dir).unwrap();
        assert_eq!(ns, 1);
        assert_eq!(store.names().count(), 3);
        assert_eq!(store.read_subtree_xml(&"7.1".parse().unwrap()).unwrap(), "<e>new data</e>");
        // Per-segment file namespace: the base docs keep their files.
        assert!(dir.join("seg0001-doc0000.xml").exists());
        assert!(dir.join("doc0000.xml").exists());
        // The rewritten catalog serves a cold reopen with everything.
        let cold = DiskStore::open(&dir).unwrap();
        assert_eq!(cold.names().count(), 3);
        assert_eq!(cold.read_subtree_xml(&"7.1".parse().unwrap()).unwrap(), "<e>new data</e>");
        assert_eq!(
            cold.read_subtree_xml(&"1.1".parse().unwrap()).unwrap(),
            "<book><isbn>111</isbn><title>XML Web</title></book>"
        );
        // Duplicate names and ordinals are rejected, not clobbered.
        assert!(store.append_segment(&late, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_file_namespaces_stay_monotone_across_reopens() {
        // The namespace comes from cataloged file names, not from any
        // index-level segment count — so compaction (which rewrites only
        // indices.vxi) can never make a later ingest reuse a namespace
        // and clobber an earlier ingest's files.
        let dir = tmpdir("monotone");
        let c = corpus();
        let mut store = DiskStore::persist(&c, &dir).unwrap();
        let mut a = Corpus::new();
        a.add(crate::parse::parse_document("a.xml", "<r><e>first</e></r>", 7).unwrap());
        assert_eq!(store.append_segment(&a, &dir).unwrap(), 1);
        // Reopen (as the CLI does per invocation) and ingest again: the
        // fresh handle must pick namespace 2, not re-derive 1.
        let mut reopened = DiskStore::open(&dir).unwrap();
        let mut b = Corpus::new();
        b.add(crate::parse::parse_document("b.xml", "<r><e>second</e></r>", 8).unwrap());
        assert_eq!(reopened.append_segment(&b, &dir).unwrap(), 2);
        assert!(dir.join("seg0001-doc0000.xml").exists());
        assert!(dir.join("seg0002-doc0000.xml").exists());
        assert_eq!(reopened.read_subtree_xml(&"7.1".parse().unwrap()).unwrap(), "<e>first</e>");
        assert_eq!(reopened.read_subtree_xml(&"8.1".parse().unwrap()).unwrap(), "<e>second</e>");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_append_batches_change_nothing() {
        let dir = tmpdir("atomic-append");
        let c = corpus();
        let mut store = DiskStore::persist(&c, &dir).unwrap();
        let catalog_before = std::fs::read_to_string(dir.join(CATALOG_FILE)).unwrap();
        // Batch of [fresh doc, doc whose ordinal collides with the store]:
        // validation must reject it before any file or catalog mutation.
        let mut bad = Corpus::new();
        bad.add(crate::parse::parse_document("fresh.xml", "<r><e>ok</e></r>", 9).unwrap());
        bad.add(crate::parse::parse_document("clash.xml", "<r><e>dup</e></r>", 1).unwrap());
        assert!(store.append_segment(&bad, &dir).is_err());
        assert_eq!(store.names().count(), 2, "in-memory catalog unchanged");
        assert!(!dir.join("seg0001-doc0000.xml").exists(), "no orphan files");
        assert_eq!(
            std::fs::read_to_string(dir.join(CATALOG_FILE)).unwrap(),
            catalog_before,
            "on-disk catalog unchanged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_catalogs() {
        let dir = tmpdir("badcat");
        let c = corpus();
        DiskStore::persist(&c, &dir).unwrap();
        std::fs::write(dir.join(CATALOG_FILE), "not a catalog\n").unwrap();
        assert!(matches!(DiskStore::open(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_lengths_match_node_metadata() {
        let dir = tmpdir("lens");
        let c = corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        let doc = c.doc("books.xml").unwrap();
        for n in doc.iter() {
            let node = doc.node(n);
            assert_eq!(store.subtree_len(&node.dewey), Some(node.byte_len));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod cost_model_tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxv-cost-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn big_corpus() -> Corpus {
        let mut xml = String::from("<r>");
        for i in 0..200 {
            xml.push_str(&format!("<e><v>{i}</v><t>padding text for element {i}</t></e>"));
        }
        xml.push_str("</r>");
        let mut c = Corpus::new();
        c.add_parsed("d.xml", &xml).unwrap();
        c
    }

    fn model() -> CostModel {
        CostModel {
            read_latency: std::time::Duration::from_micros(200),
            bytes_per_sec: 64.0 * 1024.0 * 1024.0,
            seq_window: 4096,
            // Small pages so individual elements span distinct pages in
            // these tests.
            page_bytes: 64,
        }
    }

    #[test]
    fn simulated_io_accrues_and_blocks() {
        let dir = tmpdir("accrue");
        let c = big_corpus();
        let store = DiskStore::persist(&c, &dir).unwrap().with_cost_model(model());
        let t0 = std::time::Instant::now();
        store.read_document("d.xml").unwrap();
        let wall = t0.elapsed();
        let sim = store.stats().simulated_io;
        assert!(sim > std::time::Duration::ZERO);
        assert!(wall >= sim, "reads must block for at least the simulated time");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffer_pool_makes_repeat_reads_free() {
        let dir = tmpdir("pool");
        let c = big_corpus();
        let store = DiskStore::persist(&c, &dir).unwrap().with_cost_model(model());
        let id: DeweyId = "1.50".parse().unwrap();
        store.read_subtree_xml(&id).unwrap();
        let first = store.stats().simulated_io;
        assert!(first > std::time::Duration::ZERO);
        store.read_subtree_xml(&id).unwrap();
        let second = store.stats().simulated_io;
        assert_eq!(first, second, "second read of the same pages must be a pool hit");
        // reset_stats clears the pool, so the next read pays again.
        store.reset_stats();
        store.read_subtree_xml(&id).unwrap();
        assert!(store.stats().simulated_io > std::time::Duration::ZERO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_reads_skip_positioning_latency() {
        let dir = tmpdir("seq");
        let c = big_corpus();
        // Sequential forward reads of consecutive elements: first pays the
        // seek, the rest ride the window.
        let store = DiskStore::persist(&c, &dir).unwrap().with_cost_model(model());
        for i in 1..=20u32 {
            let id = DeweyId::from_components(vec![1, i]);
            store.read_subtree_xml(&id).unwrap();
        }
        let seq_time = store.stats().simulated_io;
        // Scattered backwards reads of the same count pay a seek each.
        let store2 = DiskStore::persist(&c, &tmpdir("scatter")).unwrap().with_cost_model(model());
        for i in (180..200u32).rev() {
            let id = DeweyId::from_components(vec![1, i]);
            store2.read_subtree_xml(&id).unwrap();
        }
        let scatter_time = store2.stats().simulated_io;
        assert!(
            scatter_time > seq_time * 3,
            "scattered {scatter_time:?} vs sequential {seq_time:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_are_charged() {
        let dir = tmpdir("write");
        let c = big_corpus();
        let store = DiskStore::persist(&c, &dir).unwrap().with_cost_model(model());
        store.charge_write(100_000);
        let s = store.stats();
        assert_eq!(s.bytes_written, 100_000);
        assert!(s.simulated_io >= std::time::Duration::from_micros(200));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_cost_model_means_no_simulated_io() {
        let dir = tmpdir("nomodel");
        let c = big_corpus();
        let store = DiskStore::persist(&c, &dir).unwrap();
        store.read_document("d.xml").unwrap();
        assert_eq!(store.stats().simulated_io, std::time::Duration::ZERO);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
