//! Document storage: the base-data store of Fig. 3.
//!
//! A [`Corpus`] holds the named base documents. During normal query
//! processing only the indices are consulted; the corpus itself is touched
//! exclusively by the final materialization step (fetching the full content
//! of top-k results) and by the Baseline/Proj comparison systems, which is
//! exactly the access discipline the paper's architecture prescribes.

use crate::dewey::DeweyId;
use crate::doc::{Document, NodeId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named collection of XML documents with distinct Dewey root ordinals.
///
/// `Sync`: the fetch counter is atomic, so one corpus (and any engine
/// borrowing it) can serve concurrent searches from multiple threads.
#[derive(Debug, Default)]
pub struct Corpus {
    docs: BTreeMap<String, Document>,
    /// Counts every subtree fetch, so experiments can verify that the
    /// Efficient pipeline touches base data only for top-k results.
    fetches: AtomicU64,
}

impl Clone for Corpus {
    fn clone(&self) -> Self {
        Corpus {
            docs: self.docs.clone(),
            fetches: AtomicU64::new(self.fetches.load(Ordering::Relaxed)),
        }
    }
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a document. Its name must be unique within the corpus and its
    /// root ordinal must not collide with an existing document's.
    ///
    /// # Panics
    /// Panics on duplicate names or root ordinals.
    pub fn add(&mut self, doc: Document) {
        if let Some(root) = doc.root() {
            let ord = doc.node(root).dewey.components()[0];
            for d in self.docs.values() {
                if let Some(r) = d.root() {
                    assert_ne!(
                        d.node(r).dewey.components()[0],
                        ord,
                        "root ordinal {ord} already used by {}",
                        d.name()
                    );
                }
            }
        }
        let name = doc.name().to_string();
        let prev = self.docs.insert(name.clone(), doc);
        assert!(prev.is_none(), "duplicate document name {name}");
    }

    /// Parse and add a document, assigning the next free root ordinal.
    pub fn add_parsed(&mut self, name: &str, xml: &str) -> Result<(), crate::parse::ParseError> {
        let ordinal = self.next_root_ordinal();
        let doc = crate::parse::parse_document(name, xml, ordinal)?;
        self.add(doc);
        Ok(())
    }

    /// The next unused Dewey root ordinal.
    pub fn next_root_ordinal(&self) -> u32 {
        self.docs
            .values()
            .filter_map(|d| d.root().map(|r| d.node(r).dewey.components()[0]))
            .max()
            .map(|m| m + 1)
            .unwrap_or(1)
    }

    /// Look up a document by name (`fn:doc(name)`).
    pub fn doc(&self, name: &str) -> Option<&Document> {
        self.docs.get(name)
    }

    /// Iterate over all documents.
    pub fn docs(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }

    /// Resolve a Dewey ID to its owning document by root ordinal.
    pub fn doc_of_dewey(&self, id: &DeweyId) -> Option<&Document> {
        let ord = *id.components().first()?;
        self.docs
            .values()
            .find(|d| d.root().map(|r| d.node(r).dewey.components()[0] == ord).unwrap_or(false))
    }

    /// Fetch the full content of the element with the given Dewey ID from
    /// base storage (counted; used only for top-k materialization).
    pub fn fetch_subtree(&self, id: &DeweyId) -> Option<(&Document, NodeId)> {
        let doc = self.doc_of_dewey(id)?;
        let node = doc.node_by_dewey(id)?;
        // Count only served fetches, matching the DiskStore (which pays no
        // range read for a missing element).
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Some((doc, node))
    }

    /// Number of base-data subtree fetches performed so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Reset the fetch counter (used between experiment runs).
    pub fn reset_fetch_count(&self) {
        self.fetches.store(0, Ordering::Relaxed);
    }

    /// Total serialized size of all documents, in bytes.
    pub fn byte_size(&self) -> u64 {
        self.docs.values().map(|d| d.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed("books.xml", "<books><book><isbn>1</isbn></book></books>").unwrap();
        c.add_parsed("reviews.xml", "<reviews><review><isbn>1</isbn></review></reviews>").unwrap();
        c
    }

    #[test]
    fn documents_get_distinct_root_ordinals() {
        let c = corpus();
        let b = c.doc("books.xml").unwrap();
        let r = c.doc("reviews.xml").unwrap();
        assert_eq!(b.node(b.root().unwrap()).dewey.to_string(), "1");
        assert_eq!(r.node(r.root().unwrap()).dewey.to_string(), "2");
    }

    #[test]
    fn dewey_resolves_to_owning_document() {
        let c = corpus();
        let d = c.doc_of_dewey(&"2.1.1".parse().unwrap()).unwrap();
        assert_eq!(d.name(), "reviews.xml");
        assert!(c.doc_of_dewey(&"9.1".parse().unwrap()).is_none());
    }

    #[test]
    fn fetches_are_counted() {
        let c = corpus();
        assert_eq!(c.fetch_count(), 0);
        let (_, n) = c.fetch_subtree(&"1.1".parse().unwrap()).unwrap();
        assert_eq!(c.doc("books.xml").unwrap().node_tag(n), "book");
        assert_eq!(c.fetch_count(), 1);
        c.reset_fetch_count();
        assert_eq!(c.fetch_count(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate document name")]
    fn duplicate_names_rejected() {
        let mut c = corpus();
        c.add_parsed("books.xml", "<x/>").unwrap();
    }
}
