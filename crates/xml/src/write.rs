//! Serialization of documents and subtrees back to XML text.
//!
//! The byte lengths recorded on nodes correspond exactly to the output of
//! [`serialize_subtree`], which keeps `len(e)` (paper Appendix C) a
//! well-defined, testable quantity.

use crate::doc::{Document, NodeId};

/// Serialize the subtree rooted at `id` to a compact XML string
/// (no insignificant whitespace, matching the recorded byte lengths).
pub fn serialize_subtree(doc: &Document, id: NodeId) -> String {
    let mut out = String::with_capacity(doc.node(id).byte_len as usize);
    write_node(doc, id, &mut out);
    out
}

/// Serialize a whole document and record, for every element, the byte
/// offset and length of its serialization — the storage map a disk-backed
/// document store needs for direct subtree reads.
pub fn serialize_with_offsets(doc: &Document) -> (String, Vec<(crate::DeweyId, u64, u32)>) {
    let Some(root) = doc.root() else { return (String::new(), Vec::new()) };
    let mut out = String::with_capacity(doc.node(root).byte_len as usize);
    let mut offsets = Vec::with_capacity(doc.len());
    fn rec(
        doc: &Document,
        id: NodeId,
        out: &mut String,
        offsets: &mut Vec<(crate::DeweyId, u64, u32)>,
    ) {
        let start = out.len() as u64;
        let node = doc.node(id);
        let tag = doc.tag_name(node.tag);
        out.push('<');
        out.push_str(tag);
        out.push('>');
        if let Some(t) = &node.text {
            out.push_str(t);
        }
        for c in &node.children {
            rec(doc, *c, out, offsets);
        }
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
        offsets.push((node.dewey.clone(), start, (out.len() as u64 - start) as u32));
    }
    rec(doc, root, &mut out, &mut offsets);
    offsets.sort_by(|a, b| a.0.cmp(&b.0));
    (out, offsets)
}

/// Serialize with two-space indentation, for human-readable output.
pub fn serialize_pretty(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_pretty(doc, id, 0, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    let node = doc.node(id);
    let tag = doc.tag_name(node.tag);
    out.push('<');
    out.push_str(tag);
    out.push('>');
    if let Some(t) = &node.text {
        out.push_str(t);
    }
    for c in &node.children {
        write_node(doc, *c, out);
    }
    out.push('<');
    out.push('/');
    out.push_str(tag);
    out.push('>');
}

fn write_pretty(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
    let node = doc.node(id);
    let tag = doc.tag_name(node.tag);
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(tag);
    out.push('>');
    if let Some(t) = &node.text {
        out.push_str(t);
    }
    if node.children.is_empty() {
        out.push_str(&format!("</{tag}>\n"));
    } else {
        out.push('\n');
        for c in &node.children {
            write_pretty(doc, *c, depth + 1, out);
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("</{tag}>\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::DocumentBuilder;

    #[test]
    fn serialized_length_matches_recorded_byte_len() {
        let mut b = DocumentBuilder::new("t", 1);
        b.begin("books");
        b.begin("book");
        b.leaf("isbn", "111-11");
        b.leaf("title", "XML Web Services");
        b.end();
        b.end();
        let d = b.finish();
        for n in d.iter() {
            let s = serialize_subtree(&d, n);
            assert_eq!(s.len() as u32, d.node(n).byte_len, "node {}", d.node(n).dewey);
        }
    }

    #[test]
    fn compact_serialization_round_trips_structure() {
        let mut b = DocumentBuilder::new("t", 1);
        b.begin("a");
        b.leaf("b", "x");
        b.begin("c");
        b.leaf("d", "y");
        b.end();
        b.end();
        let d = b.finish();
        assert_eq!(serialize_subtree(&d, d.root().unwrap()), "<a><b>x</b><c><d>y</d></c></a>");
    }

    #[test]
    fn pretty_serialization_indents() {
        let mut b = DocumentBuilder::new("t", 1);
        b.begin("a");
        b.leaf("b", "x");
        b.end();
        let d = b.finish();
        assert_eq!(serialize_pretty(&d, d.root().unwrap()), "<a>\n  <b>x</b>\n</a>\n");
    }
}
