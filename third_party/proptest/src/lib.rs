//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this vendored stand-in
//! implements exactly the surface the workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, integer-range
//! and tuple strategies, [`any`], [`Just`], `prop_oneof!`,
//! `proptest::option::of`, `proptest::collection::vec`, the [`proptest!`]
//! macro with `#![proptest_config(..)]`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic random
//! cases (seeded from the test name and case index, so failures reproduce).
//! There is **no shrinking** — a failure reports the case number and the
//! generated inputs' `Debug` where the assertion formats them.

use std::fmt;
use std::rc::Rc;

/// Deterministic splitmix64 generator. One instance per test case.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Seed deterministically from a test name and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h.wrapping_add(case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A failed property assertion (what `prop_assert*` produce).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration. Only `cases` is honored by this stub; the
/// other fields exist for API compatibility with real proptest configs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Accepted, ignored (this stub never shrinks).
    pub max_shrink_iters: u32,
    /// Accepted, ignored (failures are reported via panic only).
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases, max_shrink_iters: 0, failure_persistence: None }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A generator of random values (the stub's take on proptest's trait).
pub trait Strategy {
    /// The generated type.
    type Value: Clone + fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `self` generates leaves; `expand` lifts a
    /// strategy for depth-`d` values to depth-`d+1`. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive { base: self.boxed(), expand: Rc::new(move |inner| expand(inner).boxed()), depth }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Clone + fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { base: self.base.clone(), expand: self.expand.clone(), depth: self.depth }
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.expand)(s);
        }
        s.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Clone + fmt::Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                if span <= 0 {
                    return self.start;
                }
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                if span <= 0 {
                    return *self.start();
                }
                ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident.$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Uniform choice between type-erased alternatives (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T: Clone + fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, min: size.start, max: size.end }
    }

    /// Output of [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.max.saturating_sub(self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop` alias module (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "[proptest stub] {} failed at case {}/{}: {}\n(no shrinking; rerun is deterministic)",
                        stringify!($name), __case, __config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
