//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this vendored stand-in
//! implements the surface the workspace benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then batches of
//! iterations until ~`measurement_time` elapses, reporting mean and
//! median ns/iter (median over per-sample means — robust to one-off
//! stalls). Set `CRITERION_QUICK=1` to run each benchmark for a single
//! batch (useful in CI where only compilation is being checked).
//!
//! When `CRITERION_JSON=<path>` is set, each benchmark additionally
//! appends one JSON line `{"id": "...", "value": <median_ns>, "unit":
//! "ns"}` to that file — the machine-readable feed the repo's
//! `bench_gate` binary consolidates into `BENCH_PR.json` and compares
//! against the checked-in regression baseline.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Drives the timed closure.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `batch` times back to back.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Append one metric line to the `CRITERION_JSON` file, if configured.
/// Exposed so benches can record auxiliary counters (unit `"count"`)
/// next to the timings.
pub fn report_metric(id: &str, value: f64, unit: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    // Cargo runs bench binaries with cwd = the *package* dir, so a
    // relative path may point at a directory that doesn't exist there;
    // create it rather than dropping the metric, and never fail
    // silently — a lost line means a gate comparing against nothing.
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            let _ =
                writeln!(f, "{{\"id\": \"{escaped}\", \"value\": {value}, \"unit\": \"{unit}\"}}");
        }
        Err(e) => eprintln!("criterion: cannot append metric {id} to CRITERION_JSON={path}: {e}"),
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up + calibration run.
    let mut b = Bencher { batch: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(if quick() { 0 } else { 200 });
    let samples = if quick() { 1 } else { sample_size.max(1) };
    let per_sample = budget / samples as u32;
    let batch = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { batch, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
        sample_ns.push(b.elapsed.as_nanos() as f64 / batch.max(1) as f64);
    }
    let ns = total.as_nanos() as f64 / iters.max(1) as f64;
    sample_ns.sort_by(f64::total_cmp);
    let median = sample_ns[sample_ns.len() / 2];
    println!("bench {label:<50} {ns:>14.1} ns/iter (median {median:.1}, {iters} iters)");
    report_metric(label, median, "ns");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.min(20);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _parent: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.0, 10, &mut f);
        self
    }
}

/// Collect benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
