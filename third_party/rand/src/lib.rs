//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this vendored stand-in
//! implements the seeded-generator surface the corpus generator uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng`'s `gen`,
//! `gen_bool`, and `gen_range`. The generator is splitmix64 — **not** the
//! real `StdRng` stream — but it is deterministic per seed, which is all
//! the synthetic-corpus code requires.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types drawable via [`Rng::gen`] (the "standard distribution").
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy {
    #[doc(hidden)]
    fn to_i128(self) -> i128;
    #[doc(hidden)]
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(hi > lo, "gen_range: empty range");
        T::from_i128(lo + (rng.next_u64() as i128).rem_euclid(hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(hi >= lo, "gen_range: empty range");
        T::from_i128(lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1))
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)] // matches the real rand API
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
