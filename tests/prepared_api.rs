//! Contract tests for the prepared-view request/response API:
//!
//! * a [`PreparedView`] reused across many searches returns byte-identical
//!   results to the legacy one-shot path, while paying the view analysis
//!   (path-index probes) exactly once;
//! * the engine generic over [`vxv_xml::DocumentSource`] produces
//!   identical hits from the in-memory [`Corpus`] and the disk-backed
//!   [`DiskStore`] backends.

use std::sync::Arc;
use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::{Corpus, DiskStore};

fn corpus() -> Corpus {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
           <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
           <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
           <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
         </books>",
    )
    .unwrap();
    c.add_parsed(
        "reviews.xml",
        "<reviews>\
           <review><isbn>111</isbn><content>all about XML search engines</content></review>\
           <review><isbn>111</isbn><content>easy to read</content></review>\
           <review><isbn>222</isbn><content>thorough search coverage</content></review>\
           <review><isbn>333</isbn><content>XML search classics</content></review>\
         </reviews>",
    )
    .unwrap();
    c
}

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

#[test]
#[allow(deprecated)]
fn repeated_prepared_searches_match_one_shot_byte_for_byte() {
    let engine = ViewSearchEngine::new(corpus());
    let prepared = engine.prepare(VIEW).unwrap();

    for (keywords, mode) in [
        (vec!["XML", "search"], KeywordMode::Conjunctive),
        (vec!["intelligence", "xml"], KeywordMode::Disjunctive),
        (vec!["search"], KeywordMode::Conjunctive),
        (vec!["qqqmissing"], KeywordMode::Conjunctive),
    ] {
        let legacy = engine.search(VIEW, &keywords, 10, mode).unwrap();
        // Run the same request several times against the one prepared view.
        for _ in 0..3 {
            let out = prepared.search(&SearchRequest::new(&keywords).top_k(10).mode(mode)).unwrap();
            assert_eq!(out.view_size, legacy.view_size);
            assert_eq!(out.matching, legacy.matching);
            assert_eq!(out.idf, legacy.idf);
            assert_eq!(out.hits.len(), legacy.hits.len());
            for (a, b) in out.hits.iter().zip(&legacy.hits) {
                assert_eq!(a.rank, b.rank);
                assert_eq!(a.score, b.score);
                assert_eq!(a.tf, b.tf);
                assert_eq!(a.byte_len, b.byte_len);
                assert_eq!(a.xml, b.xml, "keywords {keywords:?}");
            }
        }
    }
}

#[test]
fn view_analysis_happens_once_per_prepare() {
    let engine = ViewSearchEngine::new(corpus());

    engine.path_index().reset_stats();
    let prepared = engine.prepare(VIEW).unwrap();
    let probes_after_prepare = engine.path_index().stats().probes;
    assert!(probes_after_prepare > 0, "prepare must plan the index probes");
    // The index counter tracks one scan per expanded data path, so it is
    // at least the plan's logical one-per-QPT-node probe count.
    assert!(probes_after_prepare >= prepared.probe_count() as u64);

    // Searching — any number of times, with any keywords — issues no
    // further path-index probes: the probe lists are part of the plan.
    for keywords in [vec!["XML", "search"], vec!["intelligence"], vec!["search"]] {
        prepared.search(&SearchRequest::new(&keywords)).unwrap();
    }
    assert_eq!(
        engine.path_index().stats().probes,
        probes_after_prepare,
        "searches must reuse the prepared probe lists"
    );

    // The legacy one-shot path pays the analysis on every call.
    #[allow(deprecated)]
    {
        engine.search(VIEW, &["XML"], 10, KeywordMode::Conjunctive).unwrap();
        assert_eq!(engine.path_index().stats().probes, 2 * probes_after_prepare);
    }
}

#[test]
fn corpus_and_disk_store_backends_produce_identical_hits() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = std::env::temp_dir().join(format!("vxv-prepared-src-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());

    let request = SearchRequest::new(params.keywords()).top_k(params.top_k);

    let mem_engine = ViewSearchEngine::new(corpus);
    let mem = mem_engine.prepare(&params.view()).unwrap().search(&request).unwrap();

    let disk_engine = mem_engine.with_source::<DiskStore>(Arc::clone(&store));
    let disk = disk_engine.prepare(&params.view()).unwrap().search(&request).unwrap();

    assert_eq!(mem.view_size, disk.view_size);
    assert_eq!(mem.matching, disk.matching);
    assert_eq!(mem.idf, disk.idf);
    assert_eq!(mem.hits.len(), disk.hits.len());
    assert!(!mem.hits.is_empty(), "the default experiment point must match something");
    for (a, b) in mem.hits.iter().zip(&disk.hits) {
        assert_eq!(a.score, b.score);
        assert_eq!(a.tf, b.tf);
        assert_eq!(a.byte_len, b.byte_len);
        assert_eq!(a.xml, b.xml);
    }
    // Each backend counted exactly the fetches it served.
    assert_eq!(mem.fetches, disk.fetches);
    assert_eq!(store.stats().range_reads, disk.fetches);
    assert_eq!(store.stats().full_reads, 0, "disk backend must never scan whole documents");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn one_prepared_view_serves_concurrent_requests_across_backends() {
    let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = std::env::temp_dir().join(format!("vxv-prepared-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());

    let engine = ViewSearchEngine::new(corpus).with_source::<DiskStore>(store);
    let prepared = engine.prepare(&params.view()).unwrap();
    let request = SearchRequest::new(params.keywords()).top_k(3);
    let baseline = prepared.search(&request).unwrap();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (prepared, request) = (&prepared, &request);
                s.spawn(move || prepared.search(request).unwrap())
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.matching, baseline.matching);
            assert_eq!(out.hits.len(), baseline.hits.len());
            for (a, b) in out.hits.iter().zip(&baseline.hits) {
                assert_eq!(a.score, b.score);
                assert_eq!(a.xml, b.xml);
            }
        }
    });

    std::fs::remove_dir_all(&dir).unwrap();
}
