//! End-to-end invariants of the Efficient pipeline, including the
//! disk-backed configuration: base data is touched only for top-k
//! materialization, results are identical with and without the disk
//! store, and index probe counts stay query-proportional.

use std::sync::Arc;
use vxv_core::{generate_qpts, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::DiskStore;
use vxv_xquery::parse_query;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("vxv-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn disk_backed_and_in_memory_results_are_identical() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = Arc::new(generate(&params.generator_config()));
    let dir = tmpdir("eq");
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());

    let request = SearchRequest::new(params.keywords());
    let mem_engine = ViewSearchEngine::new(Arc::clone(&corpus));
    let mem = mem_engine.prepare(&params.view()).unwrap().search(&request).unwrap();
    let disk_engine = mem_engine.with_source::<DiskStore>(Arc::clone(&store));
    let disk = disk_engine.prepare(&params.view()).unwrap().search(&request).unwrap();

    assert_eq!(mem.view_size, disk.view_size);
    assert_eq!(mem.hits.len(), disk.hits.len());
    for (a, b) in mem.hits.iter().zip(&disk.hits) {
        assert_eq!(a.score, b.score);
        assert_eq!(a.xml, b.xml);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn base_data_reads_happen_only_for_top_k() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = Arc::new(generate(&params.generator_config()));
    let dir = tmpdir("topk");
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());
    let engine = ViewSearchEngine::new(corpus).with_source::<DiskStore>(Arc::clone(&store));
    let prepared = engine.prepare(&params.view()).unwrap();

    store.reset_stats();
    let out = prepared.search(&SearchRequest::new(params.keywords()).top_k(3)).unwrap();
    let stats = store.stats();
    // No whole-document reads, ever.
    assert_eq!(stats.full_reads, 0, "the pipeline must not scan base documents");
    // Only the hits' content is ranged in; the amount read is tied to the
    // hits, not the corpus.
    assert_eq!(stats.range_reads, out.fetches);
    let hit_bytes: u64 = out.hits.iter().map(|h| h.xml.len() as u64).sum();
    assert!(
        stats.bytes_read <= 2 * hit_bytes + 4096,
        "read {} bytes for {} bytes of hits",
        stats.bytes_read,
        hit_bytes
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_hits_means_zero_base_reads() {
    let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let corpus = Arc::new(generate(&params.generator_config()));
    let dir = tmpdir("zero");
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());
    let engine = ViewSearchEngine::new(corpus).with_source::<DiskStore>(Arc::clone(&store));
    let prepared = engine.prepare(&params.view()).unwrap();
    store.reset_stats();
    let out = prepared.search(&SearchRequest::new(["qqqnonexistent"])).unwrap();
    assert!(out.hits.is_empty());
    assert_eq!(store.stats().range_reads, 0);
    assert_eq!(store.stats().full_reads, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn probe_counts_are_query_proportional_not_data_proportional() {
    let small = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let large = ExperimentParams { data_bytes: 256 * 1024, ..ExperimentParams::default() };
    let probes = |p: &ExperimentParams| {
        let corpus = generate(&p.generator_config());
        let engine = ViewSearchEngine::new(corpus);
        engine.path_index().reset_stats();
        let prepared = engine.prepare(&p.view()).unwrap();
        prepared.search(&SearchRequest::new(p.keywords())).unwrap();
        engine.path_index().stats().probes
    };
    let a = probes(&small);
    let b = probes(&large);
    assert_eq!(a, b, "probe count must depend on the query, not the data");
}

#[test]
fn view_size_scales_with_data_but_pdts_stay_proportionally_small() {
    let params = ExperimentParams { data_bytes: 128 * 1024, ..ExperimentParams::default() };
    let corpus = Arc::new(generate(&params.generator_config()));
    let engine = ViewSearchEngine::new(Arc::clone(&corpus));
    let out = engine
        .prepare(&params.view())
        .unwrap()
        .search(&SearchRequest::new(params.keywords()))
        .unwrap();
    assert!(out.view_size > 0);
    let pdt_bytes: u64 = out.pdt_stats.iter().map(|(_, _, b)| *b).sum();
    assert!(pdt_bytes < corpus.byte_size() / 4);
    // Every PDT reported per document the view references.
    assert_eq!(out.pdt_stats.len(), 2);
}

#[test]
fn all_table1_views_run_end_to_end_on_one_corpus() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    for joins in 0..=4 {
        for nesting in 1..=4 {
            let view = vxv_inex::build_view(joins, nesting);
            let q = parse_query(&view).unwrap();
            let qpts = generate_qpts(&q).unwrap();
            assert!(!qpts.is_empty());
            let out = engine
                .prepare(&view)
                .and_then(|v| v.search(&SearchRequest::new(["data"]).top_k(5)))
                .unwrap_or_else(|e| panic!("joins={joins} nesting={nesting}: {e}"));
            assert!(out.view_size > 0, "joins={joins} nesting={nesting}");
        }
    }
}
