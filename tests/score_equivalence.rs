//! Theorem 4.1 as an executable test: keyword search over the *virtual*
//! view (Efficient pipeline, index-only PDTs) returns exactly the same
//! results — same view size, same idf, same per-hit tf vectors, byte
//! lengths, scores, ranking, and materialized XML — as searching the
//! fully *materialized* view (Baseline).
//!
//! Runs over every Table-1 view shape on generated INEX-like corpora,
//! with both conjunctive and disjunctive semantics and every keyword
//! selectivity class.

use std::sync::Arc;
use vxv_baselines::BaselineEngine;
use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams, Selectivity};

fn assert_equivalent(params: &ExperimentParams, keywords: &[&str], mode: KeywordMode) {
    let corpus = Arc::new(generate(&params.generator_config()));
    let view = params.view();

    let engine = ViewSearchEngine::new(Arc::clone(&corpus));
    let efficient = engine
        .prepare(&view)
        .and_then(|v| v.search(&SearchRequest::new(keywords).top_k(params.top_k).mode(mode)))
        .unwrap_or_else(|e| panic!("efficient failed on {view}: {e}"));
    let baseline = BaselineEngine::new(&corpus)
        .search(&view, keywords, params.top_k, mode)
        .unwrap_or_else(|e| panic!("baseline failed on {view}: {e}"));

    let ctx = format!(
        "joins={} nesting={} mode={mode:?} keywords={keywords:?}",
        params.num_joins, params.nesting
    );
    assert_eq!(efficient.view_size, baseline.view_size, "|V(D)| differs: {ctx}");
    assert_eq!(efficient.matching, baseline.matching, "match count differs: {ctx}");
    assert_eq!(efficient.idf, baseline.idf, "idf differs: {ctx}");
    assert_eq!(efficient.hits.len(), baseline.hits.len(), "hit count differs: {ctx}");
    for (e, b) in efficient.hits.iter().zip(&baseline.hits) {
        assert_eq!(e.rank, b.rank, "{ctx}");
        assert_eq!(e.tf, b.tf, "tf differs at rank {}: {ctx}", e.rank);
        assert_eq!(e.byte_len, b.byte_len, "byte_len differs at rank {}: {ctx}", e.rank);
        assert_eq!(e.score, b.score, "score differs at rank {}: {ctx}", e.rank);
        assert_eq!(e.xml, b.xml, "materialized XML differs at rank {}: {ctx}", e.rank);
    }
}

fn small(params: ExperimentParams) -> ExperimentParams {
    ExperimentParams { data_bytes: 72 * 1024, top_k: 8, ..params }
}

#[test]
fn default_view_conjunctive() {
    let p = small(ExperimentParams::default());
    assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
}

#[test]
fn default_view_disjunctive() {
    let p = small(ExperimentParams::default());
    assert_equivalent(&p, &p.keywords(), KeywordMode::Disjunctive);
}

#[test]
fn every_join_count_matches() {
    for joins in 0..=4 {
        let p = small(ExperimentParams { num_joins: joins, ..ExperimentParams::default() });
        assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
    }
}

#[test]
fn every_nesting_level_matches() {
    for nesting in 1..=4 {
        let p = small(ExperimentParams { nesting, ..ExperimentParams::default() });
        assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
    }
}

#[test]
fn every_selectivity_class_matches() {
    for sel in [Selectivity::Low, Selectivity::Medium, Selectivity::High] {
        for n in [1, 3, 5] {
            let p = small(ExperimentParams {
                selectivity: sel,
                num_keywords: n,
                ..ExperimentParams::default()
            });
            assert_equivalent(&p, &p.keywords(), KeywordMode::Disjunctive);
        }
    }
}

#[test]
fn join_selectivity_sweep_matches() {
    for js in [1.0, 0.5, 0.2, 0.1] {
        let p = small(ExperimentParams { join_selectivity: js, ..ExperimentParams::default() });
        assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
    }
}

#[test]
fn element_size_sweep_matches() {
    for s in [1, 3, 5] {
        let p = small(ExperimentParams { elem_size: s, ..ExperimentParams::default() });
        assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
    }
}

#[test]
fn different_seeds_match() {
    for seed in [7, 99, 12345] {
        let p = small(ExperimentParams { seed, ..ExperimentParams::default() });
        assert_equivalent(&p, &p.keywords(), KeywordMode::Conjunctive);
    }
}

#[test]
fn rare_keywords_with_empty_results_match() {
    let p = small(ExperimentParams::default());
    // A keyword that never occurs: both must agree on emptiness.
    assert_equivalent(&p, &["zzzznonexistent"], KeywordMode::Conjunctive);
    assert_equivalent(&p, &["moore", "zzzznonexistent"], KeywordMode::Disjunctive);
}

#[test]
fn hand_written_view_with_predicates_matches() {
    let corpus = Arc::new({
        let p = small(ExperimentParams::default());
        generate(&p.generator_config())
    });
    let view = "for $art in fn:doc(inex.xml)/books//article[fm] \
                where $art/fm/yr > 2000 and $art/fm/yr < 2004 \
                return <res> { $art/fm/tl } { $art/fm/kwd } </res>";
    let engine = ViewSearchEngine::new(Arc::clone(&corpus));
    let eff = engine
        .prepare(view)
        .unwrap()
        .search(&SearchRequest::new(["data", "model"]).mode(KeywordMode::Disjunctive))
        .unwrap();
    let base = BaselineEngine::new(&corpus)
        .search(view, &["data", "model"], 10, KeywordMode::Disjunctive)
        .unwrap();
    assert_eq!(eff.view_size, base.view_size);
    assert_eq!(eff.hits.len(), base.hits.len());
    for (e, b) in eff.hits.iter().zip(&base.hits) {
        assert_eq!((e.score, &e.xml), (b.score, &b.xml));
    }
}
