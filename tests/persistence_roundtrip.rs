//! Round-trip invariant of index persistence: build indices over an
//! INEX-style corpus, persist them next to a `DiskStore`, re-open
//! everything cold, and assert the cold engine answers searches
//! identically to the in-memory-built one — including the probe work
//! counters — without ever re-tokenizing or re-walking base documents.

use std::sync::Arc;
use vxv_core::{IndexBundle, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::DiskStore;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("vxv-persist-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn cold_open_answers_searches_identically_to_warm_engine() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = tmpdir("eq");

    // Warm path: indices built from the corpus, base data on disk.
    let warm_store = DiskStore::persist(&corpus, &dir).unwrap();
    IndexBundle::build(&corpus).save(&dir).unwrap();
    let warm_engine = ViewSearchEngine::new(corpus).with_source::<DiskStore>(Arc::new(warm_store));
    let warm_view = warm_engine.prepare(&params.view()).unwrap();

    // Cold path: store catalog + indices from disk, no corpus anywhere.
    let cold_store = DiskStore::open(&dir).unwrap();
    let cold_bundle = IndexBundle::load(&dir).unwrap();
    let cold_engine = ViewSearchEngine::open(cold_store, cold_bundle);
    assert!(cold_engine.corpus().is_none(), "cold engine has no corpus");
    let cold_view = cold_engine.prepare(&params.view()).unwrap();

    let request = SearchRequest::new(params.keywords());
    warm_engine.path_index().reset_stats();
    warm_engine.inverted_index().reset_stats();
    cold_engine.path_index().reset_stats();
    cold_engine.inverted_index().reset_stats();

    let warm = warm_view.search(&request).unwrap();
    let cold = cold_view.search(&request).unwrap();

    assert_eq!(warm.view_size, cold.view_size);
    assert_eq!(warm.matching, cold.matching);
    assert_eq!(warm.idf, cold.idf);
    assert_eq!(warm.hits.len(), cold.hits.len());
    for (a, b) in warm.hits.iter().zip(&cold.hits) {
        assert_eq!(a.score, b.score);
        assert_eq!(a.tf, b.tf);
        assert_eq!(a.xml, b.xml, "materialized hit XML must be byte-identical");
    }
    assert_eq!(warm.pdt_stats.len(), cold.pdt_stats.len());
    for ((an, asweep, abytes), (bn, bsweep, bbytes)) in warm.pdt_stats.iter().zip(&cold.pdt_stats) {
        assert_eq!(an, bn);
        assert_eq!(asweep, bsweep, "sweep counters for {an}");
        assert_eq!(abytes, bbytes, "PDT bytes for {an}");
    }

    // The probe work is identical index access for index access.
    assert_eq!(
        warm_engine.path_index().stats(),
        cold_engine.path_index().stats(),
        "path-index probe counters"
    );
    assert_eq!(
        warm_engine.inverted_index().stats(),
        cold_engine.inverted_index().stats(),
        "inverted-index probe counters"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_open_touches_base_documents_only_for_top_k() {
    let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = tmpdir("lazy");
    DiskStore::persist(&corpus, &dir).unwrap();
    IndexBundle::build(&corpus).save(&dir).unwrap();
    drop(corpus);

    let store = Arc::new(DiskStore::open(&dir).unwrap());
    let bundle = IndexBundle::load(&dir).unwrap();
    let engine = ViewSearchEngine::open(Arc::clone(&store), bundle);
    let view = engine.prepare(&params.view()).unwrap();
    store.reset_stats();

    let out = view.search(&SearchRequest::new(params.keywords()).top_k(2)).unwrap();
    let stats = store.stats();
    assert_eq!(stats.full_reads, 0, "cold engine must never scan a base document");
    assert_eq!(stats.range_reads, out.fetches, "only top-k subtrees are ranged in");

    // Plans and searches work repeatedly off the loaded state.
    let again = view.search(&SearchRequest::new(params.keywords()).top_k(2)).unwrap();
    assert_eq!(out.matching, again.matching);
    let plan = view.plan(&params.keywords());
    assert!(!plan.qpts.is_empty());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ingested_segments_round_trip_through_the_v2_bundle() {
    // The store-level ingestion flow (`vxv ingest`): append documents to
    // a persisted store as a new segment, extend the bundle, reopen cold
    // — the multi-segment engine answers over old and new docs alike.
    use vxv_index::IndexSegment;

    let params = ExperimentParams { data_bytes: 32 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = tmpdir("ingest");
    let mut store = DiskStore::persist(&corpus, &dir).unwrap();
    let mut bundle =
        IndexBundle::build(&corpus).save(&dir).map(|_| IndexBundle::load(&dir).unwrap()).unwrap();

    // Ingest one late document under a fresh ordinal as segment #2.
    let next = bundle.max_root_ordinal().unwrap() + 1;
    let mut late = vxv_xml::Corpus::new();
    late.add(
        vxv_xml::parse_document(
            "late.xml",
            "<books><article><title>segmented xml ingestion</title></article></books>",
            next,
        )
        .unwrap(),
    );
    store.append_segment(&late, &dir).unwrap();
    bundle.segments.push(IndexSegment::build(&late));
    bundle.save(&dir).unwrap();

    // Cold reopen sees both segments and serves both generations of docs.
    let cold =
        ViewSearchEngine::open(DiskStore::open(&dir).unwrap(), IndexBundle::load(&dir).unwrap());
    assert_eq!(cold.segments().len(), 2);
    assert_eq!(cold.stats().documents, 6, "5 INEX docs + 1 ingested");
    let out = cold
        .search_once(
            "for $a in fn:doc(late.xml)/books//article return <h> { $a/title } </h>",
            &SearchRequest::new(["segmented"]),
        )
        .unwrap();
    assert_eq!(out.hits.len(), 1);
    assert!(out.hits[0].xml.contains("segmented xml ingestion"), "{}", out.hits[0].xml);
    let old = cold.search_once(&params.view(), &SearchRequest::new(params.keywords())).unwrap();
    assert!(old.view_size > 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_documents_still_error_on_a_cold_engine() {
    let params = ExperimentParams { data_bytes: 32 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = tmpdir("unknown");
    DiskStore::persist(&corpus, &dir).unwrap();
    IndexBundle::build(&corpus).save(&dir).unwrap();

    let store = DiskStore::open(&dir).unwrap();
    let bundle = IndexBundle::load(&dir).unwrap();
    let engine = ViewSearchEngine::open(store, bundle);
    let err = engine.prepare("for $x in fn:doc(zzz.xml)/a return $x").unwrap_err();
    assert!(matches!(err, vxv_core::EngineError::UnknownDocument(_)), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}
