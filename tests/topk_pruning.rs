//! The score-bounded top-k pruning contract, property-tested:
//!
//! 1. **Byte-identity** — a pruned search (`SearchRequest::prune(true)`,
//!    the default) answers byte-identically to the exact reference path
//!    (`prune(false)`): same hits (score bits, tf vectors, byte
//!    lengths, XML), same `view_size`/`matching`/`idf` bits, same fetch
//!    counts — across random corpora, `top_k ∈ {1, 5, |results|}`,
//!    conjunctive/disjunctive modes, and multi-segment splits.
//! 2. **Abort semantics** — pruning must not change deadline/cancel
//!    behavior: a bounded request either completes byte-identically or
//!    aborts with the same typed error family as the exact path; a
//!    pre-fired cancel token always aborts typed.
//! 3. **Counters** — skipped candidates and pruned blocks are reported
//!    per search and accumulate into `EngineStats::pruning`; the exact
//!    path reports zeros.

use proptest::prelude::*;
use std::time::Duration;
use vxv_core::{
    CancelToken, EngineError, KeywordMode, SearchRequest, SearchResponse, ViewSearchEngine,
};
use vxv_xml::Corpus;

const WORDS: &[&str] = &["xml", "search", "data", "easy", "thorough", "views"];

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

#[derive(Clone, Debug)]
struct BookSpec {
    isbn: Option<u8>,
    year: Option<u16>,
    title_words: Vec<usize>,
}

#[derive(Clone, Debug)]
struct ReviewSpec {
    isbn: Option<u8>,
    content_words: Vec<usize>,
}

fn book_strategy() -> impl Strategy<Value = BookSpec> {
    (
        proptest::option::of(0u8..6),
        proptest::option::of(1990u16..2006),
        prop::collection::vec(0..WORDS.len(), 0..6),
    )
        .prop_map(|(isbn, year, title_words)| BookSpec { isbn, year, title_words })
}

fn review_strategy() -> impl Strategy<Value = ReviewSpec> {
    (proptest::option::of(0u8..6), prop::collection::vec(0..WORDS.len(), 0..8))
        .prop_map(|(isbn, content_words)| ReviewSpec { isbn, content_words })
}

fn words(ids: &[usize]) -> String {
    ids.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ")
}

fn books_xml(books: &[BookSpec]) -> String {
    let mut x = String::from("<books>");
    for b in books {
        x.push_str("<book>");
        if let Some(i) = b.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !b.title_words.is_empty() {
            x.push_str(&format!("<title>{}</title>", words(&b.title_words)));
        }
        if let Some(y) = b.year {
            x.push_str(&format!("<year>{y}</year>"));
        }
        x.push_str("</book>");
    }
    x.push_str("</books>");
    x
}

fn reviews_xml(reviews: &[ReviewSpec]) -> String {
    let mut x = String::from("<reviews>");
    for r in reviews {
        x.push_str("<review>");
        if let Some(i) = r.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !r.content_words.is_empty() {
            x.push_str(&format!("<content>{}</content>", words(&r.content_words)));
        }
        x.push_str("</review>");
    }
    x.push_str("</reviews>");
    x
}

/// Build one engine over the documents, split into `1 + |cuts|`
/// segments (group 0 seeds, later groups arrive by ingestion).
fn build_engine(docs: &[(String, String)], cuts: &[usize]) -> ViewSearchEngine<Corpus> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % docs.len()).filter(|c| *c > 0).collect();
    points.sort();
    points.dedup();
    let mut groups: Vec<&[(String, String)]> = Vec::new();
    let mut prev = 0;
    for p in points {
        groups.push(&docs[prev..p]);
        prev = p;
    }
    groups.push(&docs[prev..]);
    let mut base = Corpus::new();
    for (name, xml) in groups[0] {
        base.add_parsed(name, xml).unwrap();
    }
    let engine = ViewSearchEngine::new(base);
    for group in &groups[1..] {
        engine.ingest(group.iter().map(|(n, x)| (n.clone(), x.clone()))).unwrap();
    }
    engine
}

fn docs(books: &[BookSpec], reviews: &[ReviewSpec]) -> Vec<(String, String)> {
    vec![
        ("books.xml".to_string(), books_xml(books)),
        ("reviews.xml".to_string(), reviews_xml(reviews)),
        // Extra documents shape shared dictionaries and posting lists
        // without entering the view.
        (
            "noise.xml".to_string(),
            "<books><book><title>xml data views</title></book></books>".to_string(),
        ),
        ("other.xml".to_string(), "<r><e>search thorough</e></r>".to_string()),
    ]
}

/// Full byte-identity across everything a response reports.
fn assert_identical(exact: &SearchResponse, pruned: &SearchResponse) {
    assert_eq!(exact.view_size, pruned.view_size, "view_size");
    assert_eq!(exact.matching, pruned.matching, "matching");
    assert_eq!(exact.idf.len(), pruned.idf.len(), "idf len");
    for (x, y) in exact.idf.iter().zip(&pruned.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(exact.fetches, pruned.fetches, "fetches");
    assert_eq!(exact.hits.len(), pruned.hits.len(), "hit count");
    for (x, y) in exact.hits.iter().zip(&pruned.hits) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
    // The structural sweep is untouched by pruning.
    assert_eq!(exact.pdt_stats.len(), pruned.pdt_stats.len());
    for ((da, sa, ba), (db, sb, bb)) in exact.pdt_stats.iter().zip(&pruned.pdt_stats) {
        assert_eq!(da, db, "pdt doc order");
        assert_eq!(sa, sb, "sweep counters for {da}");
        assert_eq!(ba, bb, "pdt bytes for {da}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruned_answers_are_byte_identical_to_exact(
        books in prop::collection::vec(book_strategy(), 1..7),
        reviews in prop::collection::vec(review_strategy(), 0..8),
        cuts in prop::collection::vec(0usize..4, 0..3),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        disjunctive in any::<bool>(),
    ) {
        let engine = build_engine(&docs(&books, &reviews), &cuts);
        let view = engine.prepare(VIEW).unwrap();
        let keywords: Vec<&str> = kw.iter().map(|w| WORDS[*w]).collect();
        let mode = if disjunctive { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };

        // k = |results| comes from a probe run; then the sweep covers
        // under-full, partial, and full top-k cuts.
        let probe = view
            .search(&SearchRequest::new(&keywords).mode(mode).top_k(usize::MAX).materialize(false))
            .unwrap();
        for k in [1usize, 5, probe.matching.max(1)] {
            let base = SearchRequest::new(&keywords).mode(mode).top_k(k);
            let exact = view.search(&base.clone().prune(false)).unwrap();
            let pruned = view.search(&base).unwrap();
            assert_identical(&exact, &pruned);
            prop_assert_eq!(exact.pruning, vxv_core::PruneStats::default(),
                "the exact path must report zero prune work");
            prop_assert_eq!(
                pruned.pruning.candidates_skipped > 0,
                pruned.pruning.early_terminations > 0,
                "skips and early termination come together: {:?}", pruned.pruning
            );
        }
    }

    #[test]
    fn pruning_does_not_change_abort_semantics(
        books in prop::collection::vec(book_strategy(), 1..6),
        reviews in prop::collection::vec(review_strategy(), 0..6),
        budget_us in prop_oneof![Just(0u64), 1u64..300, Just(1_000_000u64)],
        kw in 0..WORDS.len(),
        pre_cancelled in any::<bool>(),
    ) {
        let engine = build_engine(&docs(&books, &reviews), &[]);
        let view = engine.prepare(VIEW).unwrap();
        let keywords = [WORDS[kw]];
        let reference = view.search(&SearchRequest::new(keywords).prune(false)).unwrap();

        let token = CancelToken::new();
        if pre_cancelled {
            token.cancel();
        }
        let request = SearchRequest::new(keywords)
            .deadline(Duration::from_micros(budget_us))
            .cancel_token(token);
        match view.search(&request) {
            // Completed in budget: must be the exact answer, bit for bit.
            Ok(out) => {
                prop_assert!(!pre_cancelled, "a pre-fired token must abort");
                assert_identical(&reference, &out);
            }
            // Aborted: typed, with partial timings — never truncated.
            Err(EngineError::DeadlineExceeded { .. }) => {
                prop_assert!(!pre_cancelled, "cancellation outranks the deadline only when fired");
            }
            Err(EngineError::Cancelled { .. }) => prop_assert!(pre_cancelled),
            Err(e) => prop_assert!(false, "unexpected error family: {e}"),
        }
    }
}

#[test]
fn prune_counters_accumulate_into_engine_stats() {
    let mut c = Corpus::new();
    // One dominant book and many lightweight ones: k=1 must prune.
    let mut books = String::from("<books>");
    books.push_str(
        "<book><isbn>0</isbn><title>xml xml xml xml xml xml</title><year>2000</year></book>",
    );
    for i in 1..40 {
        books.push_str(&format!(
            "<book><isbn>{i}</isbn><title>xml plus lots of words here to dilute the score \
             density of this long title {i}</title><year>2000</year></book>"
        ));
    }
    books.push_str("</books>");
    c.add_parsed("books.xml", &books).unwrap();
    let engine = ViewSearchEngine::new(c);
    let view = engine
        .prepare("for $b in fn:doc(books.xml)/books//book where $b/year > 1995 return <h> { $b/title } </h>")
        .unwrap();

    engine.reset_stats();
    assert_eq!(engine.stats().pruning, vxv_core::PruneStats::default());

    let exact = view.search(&SearchRequest::new(["xml"]).top_k(1).prune(false)).unwrap();
    assert_eq!(
        engine.stats().pruning,
        vxv_core::PruneStats::default(),
        "exact path records nothing"
    );

    let pruned = view.search(&SearchRequest::new(["xml"]).top_k(1)).unwrap();
    assert_identical(&exact, &pruned);
    assert!(
        pruned.pruning.candidates_skipped > 0,
        "the dominated candidates must be skipped: {:?}",
        pruned.pruning
    );
    assert_eq!(pruned.pruning.early_terminations, 1);
    assert_eq!(engine.stats().pruning, pruned.pruning, "per-search counters accumulate");

    // A second search doubles the tallies; reset clears them.
    view.search(&SearchRequest::new(["xml"]).top_k(1)).unwrap();
    assert_eq!(engine.stats().pruning, pruned.pruning + pruned.pruning);
    engine.reset_stats();
    assert_eq!(engine.stats().pruning, vxv_core::PruneStats::default());
}

#[test]
fn hit_streams_rank_identically_under_pruning() {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        &books_xml(&[
            BookSpec { isbn: Some(1), year: Some(2000), title_words: vec![0, 0, 1] },
            BookSpec { isbn: Some(2), year: Some(2001), title_words: vec![0] },
            BookSpec { isbn: Some(3), year: Some(2002), title_words: vec![0, 2, 3] },
        ]),
    )
    .unwrap();
    c.add_parsed(
        "reviews.xml",
        &reviews_xml(&[ReviewSpec { isbn: Some(1), content_words: vec![0, 1, 1] }]),
    )
    .unwrap();
    let engine = ViewSearchEngine::new(c);
    let view = engine.prepare(VIEW).unwrap();
    let eager = view.search(&SearchRequest::new(["xml"]).top_k(2)).unwrap();
    let streamed: Vec<_> =
        view.hits(&SearchRequest::new(["xml"]).top_k(2)).unwrap().map(|h| h.unwrap()).collect();
    assert_eq!(eager.hits.len(), streamed.len());
    for (a, b) in eager.hits.iter().zip(&streamed) {
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.xml, b.xml);
    }
}
