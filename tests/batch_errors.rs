//! `ViewCatalog::search_batch` failure isolation: every entry's result
//! is **typed and per-request**. A bad view name, a zero-budget
//! deadline, or a quota-starved tenant must land in *that entry's* slot
//! — and the healthy siblings must come back byte-identical to running
//! them sequentially.

use std::sync::Arc;
use std::time::Duration;
use vxv_core::tenant::{TenantId, TenantQuotas};
use vxv_core::{EngineError, NamedRequest, SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_xml::Corpus;

fn corpus() -> Corpus {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
           <book><title>xml keyword search</title><year>2004</year></book>\
           <book><title>xml databases</title><year>2005</year></book>\
           <book><title>query planning</title><year>2001</year></book>\
         </books>",
    )
    .unwrap();
    c
}

const VIEW: &str = "for $b in fn:doc(books.xml)/books/book return <hit> { $b/title } </hit>";

#[test]
fn batch_errors_are_per_request_and_do_not_poison_siblings() {
    let catalog = Arc::new(ViewCatalog::new(ViewSearchEngine::new(corpus())));
    catalog.register("books", VIEW).unwrap();
    let starved = TenantId::new("starved");
    catalog.register_for(&starved, "books", VIEW).unwrap();
    catalog.set_tenant_quotas(&starved, TenantQuotas { max_concurrent: 0, ..Default::default() });

    let batch = vec![
        // 0: healthy
        NamedRequest::new("books", SearchRequest::new(["xml"])),
        // 1: unknown view
        NamedRequest::new("missing", SearchRequest::new(["xml"])),
        // 2: zero budget — trips its deadline before any phase runs
        NamedRequest::new("books", SearchRequest::new(["xml"]).deadline(Duration::ZERO)),
        // 3: tenant with max_concurrent=0 — shed at admission
        NamedRequest::for_tenant(starved.clone(), "books", SearchRequest::new(["xml"])),
        // 4: healthy again, after every failure mode
        NamedRequest::new("books", SearchRequest::new(["query", "planning"])),
    ];
    let results = catalog.search_batch(&batch);
    assert_eq!(results.len(), 5);

    assert!(matches!(results[1], Err(EngineError::ViewNotFound(_))), "{:?}", results[1]);
    assert!(matches!(results[2], Err(EngineError::DeadlineExceeded { .. })), "{:?}", results[2]);
    assert!(
        matches!(results[3], Err(EngineError::Overloaded { retry_after }) if retry_after > Duration::ZERO),
        "{:?}",
        results[3]
    );

    // The healthy entries are byte-identical to sequential execution.
    for (i, request) in [(0usize, &batch[0]), (4, &batch[4])] {
        let got = results[i].as_ref().unwrap_or_else(|e| panic!("entry {i} poisoned: {e}"));
        let want = catalog.search(&request.view, &request.request).unwrap();
        assert_eq!(got.matching, want.matching);
        assert_eq!(got.view_size, want.view_size);
        assert_eq!(got.idf, want.idf);
        assert_eq!(got.hits.len(), want.hits.len());
        for (x, y) in got.hits.iter().zip(&want.hits) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits, entry {i}");
            assert_eq!(x.tf, y.tf);
            assert_eq!(x.xml, y.xml);
        }
    }

    // Counters tell the same story: the starved tenant shed exactly its
    // own entry; the public tenant completed its two and tripped one
    // deadline.
    let starved_stats = catalog.tenants().tenant(&starved).stats();
    assert_eq!((starved_stats.shed, starved_stats.admitted), (1, 0));
    let public = catalog.tenants().tenant(&TenantId::public()).stats();
    assert_eq!(public.deadline_exceeded, 1);
    assert!(public.completed >= 2);
}

/// A batch where *every* entry fails still returns one typed error per
/// slot (no early abort, no panic).
#[test]
fn all_failing_batch_returns_full_typed_results() {
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus()));
    catalog.register("books", VIEW).unwrap();
    let batch = vec![
        NamedRequest::new("ghost", SearchRequest::new(["xml"])),
        NamedRequest::new("books", SearchRequest::new(["xml"]).deadline(Duration::ZERO)),
        NamedRequest::new("phantom", SearchRequest::new(["xml"])),
    ];
    let results = catalog.search_batch(&batch);
    assert_eq!(results.len(), 3);
    assert!(matches!(results[0], Err(EngineError::ViewNotFound(_))));
    assert!(matches!(results[1], Err(EngineError::DeadlineExceeded { .. })));
    assert!(matches!(results[2], Err(EngineError::ViewNotFound(_))));
}
