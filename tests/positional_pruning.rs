//! The positional query language on the pruned path, property-tested:
//!
//! 1. **Byte-identity** — a pruned search (`prune(true)`, the default)
//!    over any mix of word / phrase / proximity / prefix terms, with or
//!    without boosts, answers byte-identically to the exact reference
//!    path (`prune(false)`): same hits (score bits, tf vectors, byte
//!    lengths, XML), same `view_size`/`matching`/`idf` bits — across
//!    random corpora, top-k cuts, modes, and multi-segment splits.
//! 2. **Semantics** — phrases match only consecutive in-order runs,
//!    proximity windows widen monotonically, prefixes union their
//!    dictionary range, boosts reweight slots (×1.0 is bit-identical
//!    to unboosted).
//! 3. **Compatibility** — a pre-v5 bundle (no stored positions)
//!    answers word and prefix requests normally and fails phrase /
//!    proximity requests with the typed
//!    [`EngineError::PositionsUnavailable`] — never a silent zero.

use proptest::prelude::*;
use std::sync::Arc;
use vxv_core::{
    EngineError, KeywordMode, QueryTerm, SearchRequest, SearchResponse, ViewSearchEngine,
};
use vxv_xml::{Corpus, DiskStore};

/// Overlapping stems on purpose: "se" and "da" each expand to two
/// dictionary words, so prefix terms exercise real range unions.
const WORDS: &[&str] = &["xml", "search", "seam", "data", "dawn", "easy", "views"];
const PREFIXES: &[&str] = &["se", "da", "xml", "vi"];
const FACTORS: &[f64] = &[1.0, 0.5, 2.5, 3.25];

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

#[derive(Clone, Debug)]
enum TermSpec {
    Word(usize),
    Phrase(Vec<usize>),
    Near(u32, Vec<usize>),
    Prefix(usize),
}

fn term_strategy() -> impl Strategy<Value = (TermSpec, Option<usize>)> {
    let spec = prop_oneof![
        (0..WORDS.len()).prop_map(TermSpec::Word),
        prop::collection::vec(0..WORDS.len(), 2..4).prop_map(TermSpec::Phrase),
        (0u32..4, prop::collection::vec(0..WORDS.len(), 2..4))
            .prop_map(|(w, ids)| TermSpec::Near(w, ids)),
        (0..PREFIXES.len()).prop_map(TermSpec::Prefix),
    ];
    (spec, proptest::option::of(0..FACTORS.len()))
}

fn build_request(terms: &[(TermSpec, Option<usize>)]) -> SearchRequest {
    let mut req = SearchRequest::new(std::iter::empty::<&str>());
    for (spec, boost) in terms {
        req = match spec {
            TermSpec::Word(i) => req.term(QueryTerm::Word(WORDS[*i].to_string())),
            TermSpec::Phrase(ids) => req.phrase(ids.iter().map(|i| WORDS[*i])),
            TermSpec::Near(w, ids) => req.near(*w, ids.iter().map(|i| WORDS[*i])),
            TermSpec::Prefix(p) => req.prefix(PREFIXES[*p]),
        };
        if let Some(b) = boost {
            req = req.boost(FACTORS[*b]);
        }
    }
    req
}

#[derive(Clone, Debug)]
struct BookSpec {
    isbn: Option<u8>,
    year: Option<u16>,
    title_words: Vec<usize>,
}

#[derive(Clone, Debug)]
struct ReviewSpec {
    isbn: Option<u8>,
    content_words: Vec<usize>,
}

fn book_strategy() -> impl Strategy<Value = BookSpec> {
    (
        proptest::option::of(0u8..6),
        proptest::option::of(1990u16..2006),
        prop::collection::vec(0..WORDS.len(), 0..8),
    )
        .prop_map(|(isbn, year, title_words)| BookSpec { isbn, year, title_words })
}

fn review_strategy() -> impl Strategy<Value = ReviewSpec> {
    (proptest::option::of(0u8..6), prop::collection::vec(0..WORDS.len(), 0..10))
        .prop_map(|(isbn, content_words)| ReviewSpec { isbn, content_words })
}

fn words(ids: &[usize]) -> String {
    ids.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ")
}

fn books_xml(books: &[BookSpec]) -> String {
    let mut x = String::from("<books>");
    for b in books {
        x.push_str("<book>");
        if let Some(i) = b.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !b.title_words.is_empty() {
            x.push_str(&format!("<title>{}</title>", words(&b.title_words)));
        }
        if let Some(y) = b.year {
            x.push_str(&format!("<year>{y}</year>"));
        }
        x.push_str("</book>");
    }
    x.push_str("</books>");
    x
}

fn reviews_xml(reviews: &[ReviewSpec]) -> String {
    let mut x = String::from("<reviews>");
    for r in reviews {
        x.push_str("<review>");
        if let Some(i) = r.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !r.content_words.is_empty() {
            x.push_str(&format!("<content>{}</content>", words(&r.content_words)));
        }
        x.push_str("</review>");
    }
    x.push_str("</reviews>");
    x
}

fn build_engine(docs: &[(String, String)], cuts: &[usize]) -> ViewSearchEngine<Corpus> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % docs.len()).filter(|c| *c > 0).collect();
    points.sort();
    points.dedup();
    let mut groups: Vec<&[(String, String)]> = Vec::new();
    let mut prev = 0;
    for p in points {
        groups.push(&docs[prev..p]);
        prev = p;
    }
    groups.push(&docs[prev..]);
    let mut base = Corpus::new();
    for (name, xml) in groups[0] {
        base.add_parsed(name, xml).unwrap();
    }
    let engine = ViewSearchEngine::new(base);
    for group in &groups[1..] {
        engine.ingest(group.iter().map(|(n, x)| (n.clone(), x.clone()))).unwrap();
    }
    engine
}

fn docs(books: &[BookSpec], reviews: &[ReviewSpec]) -> Vec<(String, String)> {
    vec![
        ("books.xml".to_string(), books_xml(books)),
        ("reviews.xml".to_string(), reviews_xml(reviews)),
        // Extra documents shape shared dictionaries and posting lists
        // without entering the view.
        (
            "noise.xml".to_string(),
            "<books><book><title>xml search data seam dawn</title></book></books>".to_string(),
        ),
        ("other.xml".to_string(), "<r><e>search easy views</e></r>".to_string()),
    ]
}

/// Full byte-identity across everything a response reports.
fn assert_identical(exact: &SearchResponse, pruned: &SearchResponse) {
    assert_eq!(exact.view_size, pruned.view_size, "view_size");
    assert_eq!(exact.matching, pruned.matching, "matching");
    assert_eq!(exact.idf.len(), pruned.idf.len(), "idf len");
    for (x, y) in exact.idf.iter().zip(&pruned.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(exact.fetches, pruned.fetches, "fetches");
    assert_eq!(exact.hits.len(), pruned.hits.len(), "hit count");
    for (x, y) in exact.hits.iter().zip(&pruned.hits) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn positional_pruned_answers_are_byte_identical_to_exact(
        books in prop::collection::vec(book_strategy(), 1..7),
        reviews in prop::collection::vec(review_strategy(), 0..8),
        cuts in prop::collection::vec(0usize..4, 0..3),
        terms in prop::collection::vec(term_strategy(), 1..4),
        disjunctive in any::<bool>(),
    ) {
        let engine = build_engine(&docs(&books, &reviews), &cuts);
        let view = engine.prepare(VIEW).unwrap();
        let mode = if disjunctive { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };

        let probe = view
            .search(&build_request(&terms).mode(mode).top_k(usize::MAX).materialize(false))
            .unwrap();
        for k in [1usize, 5, probe.matching.max(1)] {
            let base = build_request(&terms).mode(mode).top_k(k);
            let exact = view.search(&base.clone().prune(false)).unwrap();
            let pruned = view.search(&base).unwrap();
            assert_identical(&exact, &pruned);
            prop_assert_eq!(exact.pruning, vxv_core::PruneStats::default(),
                "the exact path must report zero prune work");
        }
    }

    #[test]
    fn unit_boosts_answer_bit_identically_to_unboosted(
        books in prop::collection::vec(book_strategy(), 1..6),
        reviews in prop::collection::vec(review_strategy(), 0..6),
        terms in prop::collection::vec(term_strategy().prop_map(|(s, _)| (s, None)), 1..4),
    ) {
        let engine = build_engine(&docs(&books, &reviews), &[]);
        let view = engine.prepare(VIEW).unwrap();
        let plain = view.search(&build_request(&terms).top_k(5)).unwrap();
        // The same request with an explicit ×1.0 on every slot switches
        // to the boosted scoring expression; ×1.0 is exact in IEEE
        // arithmetic, so the answers must agree bit for bit.
        let mut req = build_request(&terms);
        for _ in &terms {
            req = req.boost(1.0);
        }
        prop_assert!(!req.boosts().is_empty(), "boosted scoring is active");
        let boosted = view.search(&req.top_k(5)).unwrap();
        assert_identical(&plain, &boosted);
    }
}

/// A small deterministic corpus where phrase, proximity, and bag
/// semantics all disagree: "xml search" is adjacent in book 1 only,
/// within distance 2 in book 3, and co-present in all three.
fn positional_corpus() -> ViewSearchEngine<Corpus> {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
         <book><isbn>1</isbn><title>xml search easy</title><year>2000</year></book>\
         <book><isbn>2</isbn><title>search data data xml</title><year>2001</year></book>\
         <book><isbn>3</isbn><title>xml data search</title><year>2002</year></book>\
         </books>",
    )
    .unwrap();
    c.add_parsed(
        "reviews.xml",
        "<reviews><review><isbn>1</isbn><content>data</content></review></reviews>",
    )
    .unwrap();
    ViewSearchEngine::new(c)
}

#[test]
fn phrases_match_only_consecutive_runs() {
    let engine = positional_corpus();
    let view = engine.prepare(VIEW).unwrap();

    let bag = view.search(&SearchRequest::new(["xml", "search"])).unwrap();
    assert_eq!(bag.matching, 3, "both words co-occur in every book");

    let phrase = view
        .search(&SearchRequest::new(std::iter::empty::<&str>()).phrase(["xml", "search"]))
        .unwrap();
    assert_eq!(phrase.matching, 1, "only book 1 has the words adjacent in order");
    assert_eq!(phrase.hits[0].tf, vec![1]);
    assert!(phrase.hits[0].xml.contains("xml search easy"));

    // Order matters: "search xml" starts no run anywhere.
    let reversed = view
        .search(&SearchRequest::new(std::iter::empty::<&str>()).phrase(["search", "xml"]))
        .unwrap();
    assert_eq!(reversed.matching, 0);
}

#[test]
fn proximity_windows_widen_monotonically() {
    let engine = positional_corpus();
    let view = engine.prepare(VIEW).unwrap();
    let near = |w: u32| {
        view.search(&SearchRequest::new(std::iter::empty::<&str>()).near(w, ["xml", "search"]))
            .unwrap()
            .matching
    };
    assert_eq!(near(0), 0, "distinct words never share an ordinal");
    assert_eq!(near(1), 1, "book 1: adjacent");
    assert_eq!(near(2), 2, "book 3 joins: distance 2");
    assert_eq!(near(3), 3, "book 2 joins: distance 3");
    assert_eq!(near(10), 3, "wider windows add nothing");
}

#[test]
fn prefix_terms_union_their_dictionary_range() {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
         <book><isbn>1</isbn><title>search</title><year>2000</year></book>\
         <book><isbn>2</isbn><title>seam seam</title><year>2001</year></book>\
         <book><isbn>3</isbn><title>xml</title><year>2002</year></book>\
         </books>",
    )
    .unwrap();
    c.add_parsed("reviews.xml", "<reviews></reviews>").unwrap();
    let engine = ViewSearchEngine::new(c);
    let view = engine.prepare(VIEW).unwrap();

    let out = view.search(&SearchRequest::new(std::iter::empty::<&str>()).prefix("se")).unwrap();
    assert_eq!(out.matching, 2, "\"se*\" covers search and seam");
    assert_eq!(out.hits[0].tf, vec![2], "seam seam outscores one search");
    assert!(out.hits[0].xml.contains("seam"));

    let none = view.search(&SearchRequest::new(std::iter::empty::<&str>()).prefix("zz")).unwrap();
    assert_eq!(none.matching, 0, "an empty dictionary range matches nothing");
}

#[test]
fn boosts_reweight_the_ranking() {
    // Two books with equal-length titles so score density depends only
    // on tf·idf: both slots have idf = 2 (each matches one of two
    // elements), so unboosted tf decides — two "data" beat one phrase.
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
         <book><isbn>1</isbn><title>xml search aaaa</title><year>2000</year></book>\
         <book><isbn>2</isbn><title>data data aaaaa</title><year>2001</year></book>\
         </books>",
    )
    .unwrap();
    c.add_parsed("reviews.xml", "<reviews></reviews>").unwrap();
    let engine = ViewSearchEngine::new(c);
    let view = engine.prepare(VIEW).unwrap();

    let base =
        || SearchRequest::new(["data"]).phrase(["xml", "search"]).mode(KeywordMode::Disjunctive);
    let plain = view.search(&base()).unwrap();
    assert!(plain.hits[0].xml.contains("data data"), "unboosted: tf of data wins");

    // Boosting the phrase slot (the last appended term) 50× flips the
    // order; identically on the exact reference path.
    let boosted = view.search(&base().boost(50.0)).unwrap();
    assert!(boosted.hits[0].xml.contains("xml search"), "boosted: the phrase slot wins");
    let exact = view.search(&base().boost(50.0).prune(false)).unwrap();
    assert_identical(&exact, &boosted);
}

#[test]
fn invalid_terms_fail_typed_before_any_index_work() {
    let engine = positional_corpus();
    let view = engine.prepare(VIEW).unwrap();
    let empty_prefix = SearchRequest::new(std::iter::empty::<&str>()).prefix("");
    assert!(matches!(view.search(&empty_prefix), Err(EngineError::InvalidTerm(_))));
    let bad_boost = SearchRequest::new(["xml"]).boost(-2.0);
    assert!(matches!(view.search(&bad_boost), Err(EngineError::InvalidTerm(_))));
    let nothing = SearchRequest::new(std::iter::empty::<&str>());
    assert!(matches!(view.search(&nothing), Err(EngineError::EmptyQuery)));
}

/// Open an engine over the checked-in v4 fixture bundle (built before
/// positions existed): the store is reconstructed from the corpora the
/// fixture was generated from; the index bytes are the frozen fixture.
fn v4_engine(dir: &std::path::Path) -> ViewSearchEngine<DiskStore> {
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
             <book><isbn>222</isbn><title>AI</title></book></books>",
        )
        .unwrap();
    corpus
        .add_parsed(
            "reviews.xml",
            "<reviews><review><isbn>111</isbn><content>all about xml</content></review></reviews>",
        )
        .unwrap();
    corpus.add(
        vxv_xml::parse_document("extra.xml", "<extra><e>late xml doc</e></extra>", 9).unwrap(),
    );
    let store = DiskStore::persist(&corpus, dir).unwrap();
    std::fs::copy(
        concat!(env!("CARGO_MANIFEST_DIR"), "/crates/index/tests/fixtures/v4/indices.vxi"),
        dir.join("indices.vxi"),
    )
    .unwrap();
    let bundle = vxv_core::IndexBundle::load(dir).unwrap();
    ViewSearchEngine::open(Arc::new(store), bundle)
}

#[test]
fn pre_v5_bundles_answer_words_and_fail_positional_typed() {
    let dir = std::env::temp_dir().join(format!("vxv-pos-v4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let engine = v4_engine(&dir);
    let view = engine.prepare(VIEW).unwrap();

    // Bag-of-words and prefix terms never touch positions: both answer.
    let bag = view.search(&SearchRequest::new(["xml"])).unwrap();
    assert_eq!(bag.matching, 1);
    let pre = view.search(&SearchRequest::new(std::iter::empty::<&str>()).prefix("xm")).unwrap();
    assert_eq!(pre.matching, 1);

    // Phrase and proximity terms need stored positions: typed failure,
    // on both the pruned and the exact path.
    for req in [
        SearchRequest::new(std::iter::empty::<&str>()).phrase(["xml", "search"]),
        SearchRequest::new(std::iter::empty::<&str>()).near(2, ["xml", "search"]),
    ] {
        assert!(matches!(view.search(&req.clone()), Err(EngineError::PositionsUnavailable)));
        assert!(matches!(view.search(&req.prune(false)), Err(EngineError::PositionsUnavailable)));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
