//! The catalog under concurrency: N threads × M named views sharing one
//! `Arc`'d engine must (a) return responses byte-identical to a
//! single-threaded `search_once` on the same requests, and (b) pay the
//! view analysis exactly once per registered view — asserted through the
//! path index's probe counters, which only move when `PrepareLists`
//! actually probes.

use vxv_core::{
    CancelToken, HitStream, NamedRequest, SearchRequest, ViewCatalog, ViewSearchEngine,
};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::{Corpus, DiskStore};

const N_THREADS: usize = 8;
const ROUNDS: usize = 4;

fn views() -> Vec<(&'static str, String)> {
    vec![
        ("flat", vxv_inex::build_view(0, 1)),
        ("nested", vxv_inex::build_view(0, 3)),
        ("joined", vxv_inex::build_view(2, 1)),
        ("deep-joined", vxv_inex::build_view(2, 3)),
    ]
}

fn requests() -> Vec<SearchRequest> {
    vec![
        SearchRequest::new(["data"]).top_k(5),
        SearchRequest::new(["data", "model"]).mode(vxv_core::KeywordMode::Disjunctive).top_k(3),
        SearchRequest::new(["information", "system"]).top_k(10),
    ]
}

fn assert_identical(a: &vxv_core::SearchResponse, b: &vxv_core::SearchResponse, ctx: &str) {
    assert_eq!(a.view_size, b.view_size, "{ctx}");
    assert_eq!(a.matching, b.matching, "{ctx}");
    assert_eq!(a.idf, b.idf, "{ctx}");
    assert_eq!(a.hits.len(), b.hits.len(), "{ctx}");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.rank, y.rank, "{ctx}");
        assert_eq!(x.score, y.score, "{ctx}");
        assert_eq!(x.tf, y.tf, "{ctx}");
        assert_eq!(x.byte_len, y.byte_len, "{ctx}");
        assert_eq!(x.xml, y.xml, "byte-identical hit XML: {ctx}");
    }
}

#[test]
fn n_threads_times_m_views_match_search_once_and_prepare_once() {
    let params = ExperimentParams { data_bytes: 96 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    let catalog = ViewCatalog::new(engine.clone());

    // Single-threaded ground truth, computed through the one-shot path
    // (its own prepare, its own search — fully independent of the
    // catalog's prepared state).
    let mut baselines: Vec<Vec<vxv_core::SearchResponse>> = Vec::new();
    for (_, text) in &views() {
        baselines.push(requests().iter().map(|r| engine.search_once(text, r).unwrap()).collect());
    }

    for (name, text) in &views() {
        catalog.register(*name, text).unwrap();
    }
    assert_eq!(catalog.stats().prepares, views().len() as u64);
    let probes_after_register = engine.path_index().stats().probes;

    std::thread::scope(|s| {
        for _ in 0..N_THREADS {
            let catalog = &catalog;
            let baselines = &baselines;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    for (vi, (name, _)) in views().iter().enumerate() {
                        for (ri, request) in requests().iter().enumerate() {
                            let out = catalog.search(name, request).unwrap();
                            assert_identical(
                                &out,
                                &baselines[vi][ri],
                                &format!("view {name} request {ri}"),
                            );
                        }
                    }
                }
            });
        }
    });

    // Serving N × M × rounds searches re-planned nothing: the path index
    // was not probed again after registration.
    assert_eq!(
        engine.path_index().stats().probes,
        probes_after_register,
        "prepare must run once per registered view, never per search"
    );
    let stats = catalog.stats();
    assert_eq!(stats.prepares, views().len() as u64);
    assert_eq!(
        stats.hits,
        (N_THREADS * ROUNDS * views().len() * requests().len()) as u64,
        "every concurrent search resolved through the shared catalog"
    );
}

#[test]
fn concurrent_batches_match_sequential_search() {
    let params = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
    for (name, text) in &views() {
        catalog.register(*name, text).unwrap();
    }

    let batch: Vec<NamedRequest> = views()
        .iter()
        .flat_map(|(name, _)| requests().into_iter().map(|r| NamedRequest::new(*name, r)))
        .collect();
    let sequential: Vec<_> =
        batch.iter().map(|r| catalog.search(&r.view, &r.request).unwrap()).collect();

    for _ in 0..3 {
        let results = catalog.search_batch(&batch);
        assert_eq!(results.len(), batch.len());
        for ((req, result), baseline) in batch.iter().zip(&results).zip(&sequential) {
            let out = result.as_ref().unwrap_or_else(|e| panic!("{}: {e}", req.view));
            assert_identical(out, baseline, &req.view);
        }
    }
}

#[test]
fn adhoc_lru_prepares_once_under_concurrent_identical_texts() {
    let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
    let text = vxv_inex::build_view(1, 2);
    let request = SearchRequest::new(["data"]).top_k(3);
    let baseline = catalog.search_adhoc(&text, &request).unwrap();

    std::thread::scope(|s| {
        for _ in 0..N_THREADS {
            let (catalog, text, request, baseline) = (&catalog, &text, &request, &baseline);
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    let out = catalog.search_adhoc(text, request).unwrap();
                    assert_identical(&out, baseline, "adhoc");
                }
            });
        }
    });
    assert_eq!(catalog.stats().prepares, 1, "identical ad-hoc texts share one prepare");
}

#[test]
fn service_types_are_send_sync_and_static() {
    fn assert_service_grade<T: Send + Sync + 'static>() {}
    assert_service_grade::<ViewSearchEngine<Corpus>>();
    assert_service_grade::<ViewSearchEngine<DiskStore>>();
    assert_service_grade::<vxv_core::PreparedView<Corpus>>();
    assert_service_grade::<vxv_core::PreparedView<DiskStore>>();
    assert_service_grade::<ViewCatalog<Corpus>>();
    assert_service_grade::<ViewCatalog<DiskStore>>();
    assert_service_grade::<HitStream<Corpus>>();
    assert_service_grade::<HitStream<DiskStore>>();
    assert_service_grade::<CancelToken>();
    assert_service_grade::<NamedRequest>();
}

#[test]
fn catalog_moves_into_a_thread_and_outlives_its_creator_scope() {
    // The ownership redesign in one test: build everything in a scope,
    // move the catalog (owning engine + indices + corpus) into a thread.
    let catalog = {
        let mut corpus = Corpus::new();
        corpus.add_parsed("d.xml", "<r><e><v>xml data</v></e><e><v>other</v></e></r>").unwrap();
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
        catalog.register("all", "for $e in fn:doc(d.xml)/r/e return $e/v").unwrap();
        catalog
    };
    let handle = std::thread::spawn(move || {
        catalog.search("all", &SearchRequest::new(["xml"])).unwrap().matching
    });
    assert_eq!(handle.join().unwrap(), 1);
}
