//! Kill-at-any-write-boundary recovery: an engine whose process died
//! with the WAL truncated at **any** byte boundary reopens
//! byte-identical — hits, score bits, work counters — to a no-crash
//! engine that performed exactly the acknowledged writes.
//!
//! The sweep test cuts a real WAL at every byte offset and recovers
//! each image; the property test throws randomized append histories and
//! cut points at the same contract. Both compare through the full
//! [`SearchResponse`] (bit-exact scores, tf vectors, XML, fetch and
//! sweep counters) — "roughly the same documents" is not the claim.

use proptest::prelude::*;
use vxv_core::{SearchRequest, SearchResponse, ViewSearchEngine, WriteConfig};
use vxv_xml::Corpus;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const BASE_BOOKS: &str = "<books><book><isbn>1</isbn><title>xml search</title>\
     <year>2001</year></book></books>";

const BASE_VIEW: &str =
    "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 return <h> { $b/title } </h>";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vxv-recovery-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_engine() -> ViewSearchEngine<Corpus> {
    let mut corpus = Corpus::new();
    corpus.add_parsed("books.xml", BASE_BOOKS).unwrap();
    ViewSearchEngine::new(corpus)
}

/// The per-document view a recovered append must answer through.
fn doc_view(name: &str) -> String {
    format!("for $b in fn:doc({name})/books//book return <h> {{ $b/title }} </h>")
}

/// Byte-identity across everything a response reports.
fn assert_identical(a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    assert_eq!(a.idf.len(), b.idf.len(), "idf len");
    for (x, y) in a.idf.iter().zip(&b.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(a.fetches, b.fetches, "fetches");
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
    assert_eq!(a.pdt_stats.len(), b.pdt_stats.len());
    for ((da, sa, ba), (db, sb, bb)) in a.pdt_stats.iter().zip(&b.pdt_stats) {
        assert_eq!(da, db, "pdt doc order");
        assert_eq!(sa, sb, "sweep counters for {da}");
        assert_eq!(ba, bb, "pdt bytes for {da}");
    }
}

/// Compare the recovered engine against a no-crash engine that ran the
/// same acknowledged batches: base view, every appended doc's view,
/// document counts, replay accounting.
fn assert_recovered_matches(
    recovered: &ViewSearchEngine<Corpus>,
    batches: &[Vec<(String, String)>],
    acknowledged: usize,
    context: &str,
) {
    let reference = base_engine();
    let ref_dir = fresh_dir("reference");
    reference
        .enable_writes(ref_dir.join(vxv_index::wal::WAL_FILE), WriteConfig::default())
        .unwrap();
    for batch in &batches[..acknowledged] {
        reference.append(batch.iter().cloned()).unwrap();
    }

    let docs: usize = batches[..acknowledged].iter().map(Vec::len).sum();
    assert_eq!(recovered.stats().documents, 1 + docs, "{context}: document count");
    assert_eq!(reference.stats().documents, 1 + docs, "{context}: reference documents");
    assert_eq!(
        recovered.stats().writes.replay_records,
        acknowledged as u64,
        "{context}: replay accounting"
    );

    let request = SearchRequest::new(["xml", "search"]).top_k(10);
    assert_identical(
        &recovered.search_once(BASE_VIEW, &request).unwrap(),
        &reference.search_once(BASE_VIEW, &request).unwrap(),
    );
    for batch in &batches[..acknowledged] {
        for (name, _) in batch {
            let view = doc_view(name);
            assert_identical(
                &recovered.search_once(&view, &request).unwrap(),
                &reference.search_once(&view, &request).unwrap(),
            );
        }
    }
    // Documents past the acknowledged point never resurrect.
    for batch in &batches[acknowledged..] {
        for (name, _) in batch {
            assert!(
                recovered.search_once(&doc_view(name), &request).is_err(),
                "{context}: unacknowledged {name} resurrected"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Run all `batches` through a durable engine and return the WAL image
/// plus the acknowledged byte boundary after each batch (index 0 is the
/// empty log).
fn written_wal(batches: &[Vec<(String, String)>], dir: &Path) -> (Vec<u8>, Vec<u64>) {
    let engine = base_engine();
    let wal_path = dir.join(vxv_index::wal::WAL_FILE);
    engine.enable_writes(&wal_path, WriteConfig::default()).unwrap();
    let mut boundaries = vec![vxv_index::wal::WAL_MAGIC.len() as u64];
    for batch in batches {
        engine.append(batch.iter().cloned()).unwrap();
        boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
    }
    drop(engine);
    let bytes = std::fs::read(&wal_path).unwrap();
    assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());
    (bytes, boundaries)
}

#[test]
fn every_byte_truncation_recovers_to_the_acknowledged_engine() {
    let batches: Vec<Vec<(String, String)>> = vec![
        vec![(
            "late0.xml".to_string(),
            "<books><book><title>xml alpha</title></book></books>".to_string(),
        )],
        vec![
            (
                "late1.xml".to_string(),
                "<books><book><title>search beta</title></book></books>".to_string(),
            ),
            (
                "late2.xml".to_string(),
                "<books><book><title>xml search gamma</title></book></books>".to_string(),
            ),
        ],
        vec![(
            "late3.xml".to_string(),
            "<books><book><title>delta</title></book></books>".to_string(),
        )],
    ];
    let dir = fresh_dir("sweep");
    let (bytes, boundaries) = written_wal(&batches, &dir);
    let wal_path = dir.join(vxv_index::wal::WAL_FILE);

    for cut in 0..=bytes.len() {
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let recovered = base_engine();
        let report = recovered
            .enable_writes(&wal_path, WriteConfig::default())
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery must never fail, got {e}"));

        let acknowledged = boundaries[1..].iter().filter(|&&b| b <= cut as u64).count();
        assert_eq!(report.records as usize, acknowledged, "cut at {cut}");
        let on_boundary = cut == 0 || boundaries.contains(&(cut as u64));
        assert_eq!(
            report.truncated_tail.is_none(),
            on_boundary,
            "cut at {cut}: torn tail reported iff mid-record"
        );
        assert_recovered_matches(&recovered, &batches, acknowledged, &format!("cut at {cut}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_continues_accepting_durable_appends() {
    // Crash mid-record, recover, append more, crash cleanly, recover
    // again: the second recovery sees old + new acknowledged writes.
    let batches: Vec<Vec<(String, String)>> = vec![
        vec![(
            "late0.xml".to_string(),
            "<books><book><title>xml alpha</title></book></books>".to_string(),
        )],
        vec![(
            "late1.xml".to_string(),
            "<books><book><title>xml beta</title></book></books>".to_string(),
        )],
    ];
    let dir = fresh_dir("continue");
    let (bytes, boundaries) = written_wal(&batches, &dir);
    let wal_path = dir.join(vxv_index::wal::WAL_FILE);

    // Tear the second record.
    std::fs::write(&wal_path, &bytes[..boundaries[1] as usize + 3]).unwrap();
    let recovered = base_engine();
    let report = recovered.enable_writes(&wal_path, WriteConfig::default()).unwrap();
    assert_eq!(report.records, 1);
    assert!(report.truncated_tail.is_some());
    recovered
        .append([(
            "late9.xml".to_string(),
            "<books><book><title>xml nine</title></book></books>".to_string(),
        )])
        .unwrap();
    drop(recovered);

    let again = base_engine();
    let report = again.enable_writes(&wal_path, WriteConfig::default()).unwrap();
    assert_eq!(report.records, 2, "first batch + post-recovery append");
    assert!(report.truncated_tail.is_none(), "reopen truncated the torn tail physically");
    let request = SearchRequest::new(["xml"]).top_k(10);
    let hit = again.search_once(&doc_view("late9.xml"), &request).unwrap();
    assert_eq!(hit.hits.len(), 1);
    assert!(again.search_once(&doc_view("late1.xml"), &request).is_err(), "torn batch stays dead");
    std::fs::remove_dir_all(&dir).unwrap();
}

const WORDS: &[&str] = &["xml", "search", "data", "views"];

fn doc_xml(word_ids: &[usize]) -> String {
    let words = word_ids.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ");
    format!("<books><book><title>{words}</title><year>2003</year></book></books>")
}

proptest! {
    // Each case builds many engines; default-config case counts come
    // from PROPTEST_CASES (CI pins it), capped here for local runs.
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::default().cases.min(24),
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_histories_recover_at_random_cuts(
        specs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0..WORDS.len(), 1..4), 1..3),
            1..4,
        ),
        cut_seed in any::<u32>(),
    ) {
        let mut next_doc = 0;
        let batches: Vec<Vec<(String, String)>> = specs
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|word_ids| {
                        let name = format!("late{next_doc}.xml");
                        next_doc += 1;
                        (name, doc_xml(word_ids))
                    })
                    .collect()
            })
            .collect();

        let dir = fresh_dir("prop");
        let (bytes, boundaries) = written_wal(&batches, &dir);
        let wal_path = dir.join(vxv_index::wal::WAL_FILE);

        let cut = cut_seed as usize % (bytes.len() + 1);
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let recovered = base_engine();
        let report = recovered.enable_writes(&wal_path, WriteConfig::default()).unwrap();
        let acknowledged = boundaries[1..].iter().filter(|&&b| b <= cut as u64).count();
        prop_assert_eq!(report.records as usize, acknowledged);
        assert_recovered_matches(&recovered, &batches, acknowledged, &format!("cut at {cut}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
