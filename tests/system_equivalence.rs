//! Cross-system structural equivalence: the GTP+TermJoin comparison
//! system answers the same QPT-matching problem as the index-only sweep,
//! so on any corpus both must construct identical PDTs (element sets,
//! values, tf annotations) — and both must equal the oracle built
//! straight from Definitions 1–3.

use vxv_baselines::GtpEngine;
use vxv_core::generate::{generate_pdt, DocMeta};
use vxv_core::generate_qpts;
use vxv_core::oracle::oracle_pdt;
use vxv_index::{InvertedIndex, PathIndex};
use vxv_inex::{generate, ExperimentParams};
use vxv_xquery::parse_query;

#[test]
fn gtp_and_efficient_build_identical_pdts_on_generated_data() {
    for (joins, nesting) in [(1usize, 2usize), (2, 2), (0, 1), (4, 3)] {
        let params = ExperimentParams {
            data_bytes: 64 * 1024,
            num_joins: joins,
            nesting,
            ..ExperimentParams::default()
        };
        let corpus = generate(&params.generator_config());
        let query = parse_query(&params.view()).unwrap();
        let qpts = generate_qpts(&query).unwrap();
        let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();

        let path_index = PathIndex::build(&corpus);
        let inverted = InvertedIndex::build(&corpus);
        let gtp = GtpEngine::new(&corpus);

        for qpt in &qpts {
            let doc = corpus.doc(&qpt.doc_name).unwrap();
            let root = doc.root().unwrap();
            let meta = DocMeta {
                name: qpt.doc_name.clone(),
                root_tag: doc.node_tag(root).to_string(),
                root_ordinal: doc.node(root).dewey.components()[0],
                segment: 0,
            };
            let (efficient, _) = generate_pdt(qpt, &path_index, &inverted, &keywords, &meta);
            let (via_gtp, _, _) = gtp.build_pdt(qpt, &keywords);
            let oracle = oracle_pdt(doc, qpt, &inverted, &keywords);

            let ctx = format!("joins={joins} nesting={nesting} doc={}", qpt.doc_name);
            let eff_keys: Vec<String> = efficient.info.keys().map(|d| d.to_string()).collect();
            let gtp_keys: Vec<String> = via_gtp.info.keys().map(|d| d.to_string()).collect();
            let ora_keys: Vec<String> = oracle.info.keys().map(|d| d.to_string()).collect();
            assert_eq!(eff_keys, ora_keys, "efficient vs oracle: {ctx}");
            assert_eq!(gtp_keys, ora_keys, "gtp vs oracle: {ctx}");
            for (dewey, want) in &oracle.info {
                assert_eq!(
                    efficient.node_info(dewey).unwrap(),
                    want,
                    "efficient info at {dewey}: {ctx}"
                );
                assert_eq!(via_gtp.node_info(dewey).unwrap(), want, "gtp info at {dewey}: {ctx}");
                let en = efficient.doc.node_by_dewey(dewey).unwrap();
                let gn = via_gtp.doc.node_by_dewey(dewey).unwrap();
                assert_eq!(
                    efficient.doc.value(en),
                    via_gtp.doc.value(gn),
                    "value at {dewey}: {ctx}"
                );
            }
        }
    }
}

#[test]
fn pdts_are_much_smaller_than_the_data() {
    let params = ExperimentParams { data_bytes: 256 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();
    let path_index = PathIndex::build(&corpus);
    let inverted = InvertedIndex::build(&corpus);
    let mut total_pdt = 0u64;
    for qpt in &qpts {
        let doc = corpus.doc(&qpt.doc_name).unwrap();
        let root = doc.root().unwrap();
        let meta = DocMeta {
            name: qpt.doc_name.clone(),
            root_tag: doc.node_tag(root).to_string(),
            root_ordinal: doc.node(root).dewey.components()[0],
            segment: 0,
        };
        let (pdt, _) = generate_pdt(qpt, &path_index, &inverted, &keywords, &meta);
        total_pdt += pdt.byte_size();
    }
    let corpus_bytes = corpus.byte_size();
    assert!(
        total_pdt * 4 < corpus_bytes,
        "PDTs ({total_pdt}B) should be well under a quarter of the data ({corpus_bytes}B)"
    );
}
