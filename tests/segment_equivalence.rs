//! The segmented-engine contract, property-tested:
//!
//! 1. **Split equivalence** — a corpus split into `k` random segments
//!    (base corpus + ingested batches) answers every search with a
//!    [`vxv_core::SearchResponse`] byte-identical to the single-segment
//!    engine over the same documents: hits (scores compared bit-exactly,
//!    tf vectors, byte lengths, XML), `view_size`, `matching`, `idf`,
//!    fetch counts and per-document sweep counters.
//! 2. **Snapshot isolation** — views prepared before an ingest keep
//!    answering from their snapshot, byte-identically, while ingests
//!    land concurrently.
//! 3. **Compaction invariance** — merging segments (engine-level
//!    size-tiered compaction) never changes any response, for old
//!    snapshots and fresh prepares alike.

use proptest::prelude::*;
use vxv_core::{KeywordMode, SearchRequest, SearchResponse, ViewSearchEngine};
use vxv_xml::Corpus;

const WORDS: &[&str] = &["xml", "search", "data", "easy", "thorough", "views"];

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

#[derive(Clone, Debug)]
struct BookSpec {
    isbn: Option<u8>,
    year: Option<u16>,
    title_words: Vec<usize>,
}

#[derive(Clone, Debug)]
struct ReviewSpec {
    isbn: Option<u8>,
    content_words: Vec<usize>,
}

fn book_strategy() -> impl Strategy<Value = BookSpec> {
    (
        proptest::option::of(0u8..6),
        proptest::option::of(1990u16..2006),
        prop::collection::vec(0..WORDS.len(), 0..4),
    )
        .prop_map(|(isbn, year, title_words)| BookSpec { isbn, year, title_words })
}

fn review_strategy() -> impl Strategy<Value = ReviewSpec> {
    (proptest::option::of(0u8..6), prop::collection::vec(0..WORDS.len(), 0..5))
        .prop_map(|(isbn, content_words)| ReviewSpec { isbn, content_words })
}

fn words(ids: &[usize]) -> String {
    ids.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ")
}

fn books_xml(books: &[BookSpec]) -> String {
    let mut x = String::from("<books>");
    for b in books {
        x.push_str("<book>");
        if let Some(i) = b.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !b.title_words.is_empty() {
            x.push_str(&format!("<title>{}</title>", words(&b.title_words)));
        }
        if let Some(y) = b.year {
            x.push_str(&format!("<year>{y}</year>"));
        }
        x.push_str("</book>");
    }
    x.push_str("</books>");
    x
}

fn reviews_xml(reviews: &[ReviewSpec]) -> String {
    let mut x = String::from("<reviews>");
    for r in reviews {
        x.push_str("<review>");
        if let Some(i) = r.isbn {
            x.push_str(&format!("<isbn>{i}</isbn>"));
        }
        if !r.content_words.is_empty() {
            x.push_str(&format!("<content>{}</content>", words(&r.content_words)));
        }
        x.push_str("</review>");
    }
    x.push_str("</reviews>");
    x
}

/// Build the single-segment reference engine plus a k-segment engine
/// over the same (name, xml) documents, split at `cuts`.
fn build_engines(
    docs: &[(String, String)],
    cuts: &[usize],
) -> (ViewSearchEngine<Corpus>, ViewSearchEngine<Corpus>) {
    let mut single_corpus = Corpus::new();
    for (name, xml) in docs {
        single_corpus.add_parsed(name, xml).unwrap();
    }
    let single = ViewSearchEngine::new(single_corpus);

    // Partition into contiguous groups at the (sorted, deduped, in-range)
    // cut points; group 0 seeds the engine, each later group is one
    // ingest batch = one segment.
    let mut points: Vec<usize> = cuts.iter().map(|c| c % docs.len()).filter(|c| *c > 0).collect();
    points.sort();
    points.dedup();
    let mut groups: Vec<&[(String, String)]> = Vec::new();
    let mut prev = 0;
    for p in points {
        groups.push(&docs[prev..p]);
        prev = p;
    }
    groups.push(&docs[prev..]);

    let mut base = Corpus::new();
    for (name, xml) in groups[0] {
        base.add_parsed(name, xml).unwrap();
    }
    let segmented = ViewSearchEngine::new(base);
    for group in &groups[1..] {
        segmented.ingest(group.iter().map(|(n, x)| (n.clone(), x.clone()))).unwrap();
    }
    assert_eq!(segmented.segments().len(), groups.len());
    (single, segmented)
}

/// Byte-identity across everything a response reports (scores compared
/// bit-exactly — "equivalent up to rounding" is not the claim).
fn assert_identical(a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    assert_eq!(a.idf.len(), b.idf.len(), "idf len");
    for (x, y) in a.idf.iter().zip(&b.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(a.fetches, b.fetches, "fetches");
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
    // Per-document sweep counters sum to the same work either way.
    assert_eq!(a.pdt_stats.len(), b.pdt_stats.len());
    for ((da, sa, ba), (db, sb, bb)) in a.pdt_stats.iter().zip(&b.pdt_stats) {
        assert_eq!(da, db, "pdt doc order");
        assert_eq!(sa, sb, "sweep counters for {da}");
        assert_eq!(ba, bb, "pdt bytes for {da}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn k_segment_split_is_byte_identical_to_single_segment(
        books in prop::collection::vec(book_strategy(), 1..6),
        reviews in prop::collection::vec(review_strategy(), 0..6),
        noise_words in prop::collection::vec(0..WORDS.len(), 0..6),
        cuts in prop::collection::vec(0usize..4, 0..3),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        disjunctive in any::<bool>(),
    ) {
        // Four documents: two the view projects, two that only shape the
        // shared dictionaries (path/value rows, posting lists).
        let docs = vec![
            ("books.xml".to_string(), books_xml(&books)),
            ("reviews.xml".to_string(), reviews_xml(&reviews)),
            ("noise.xml".to_string(),
             format!("<books><book><title>{}</title></book></books>", words(&noise_words))),
            ("other.xml".to_string(), "<reviews><review><isbn>1</isbn></review></reviews>".to_string()),
        ];
        let (single, segmented) = build_engines(&docs, &cuts);

        let keywords: Vec<&str> = kw.iter().map(|w| WORDS[*w]).collect();
        let mode = if disjunctive { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };
        let request = SearchRequest::new(&keywords).top_k(5).mode(mode);

        let a = single.search_once(VIEW, &request).unwrap();
        let b = segmented.search_once(VIEW, &request).unwrap();
        assert_identical(&a, &b);

        // The segmented engine's aggregate catalog covers everything.
        let stats = segmented.stats();
        prop_assert_eq!(stats.documents, docs.len());
        prop_assert_eq!(stats.segments, segmented.segments().len());
    }

    #[test]
    fn compaction_preserves_every_response(
        books in prop::collection::vec(book_strategy(), 1..5),
        reviews in prop::collection::vec(review_strategy(), 0..5),
        cuts in prop::collection::vec(0usize..4, 1..3),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
    ) {
        let docs = vec![
            ("books.xml".to_string(), books_xml(&books)),
            ("reviews.xml".to_string(), reviews_xml(&reviews)),
            ("noise.xml".to_string(), "<books><book><title>xml data</title></book></books>".to_string()),
            ("other.xml".to_string(), "<r><e>views</e></r>".to_string()),
        ];
        let (_, segmented) = build_engines(&docs, &cuts);
        let keywords: Vec<&str> = kw.iter().map(|w| WORDS[*w]).collect();
        let request = SearchRequest::new(&keywords).top_k(5);

        let snapshot_view = segmented.prepare(VIEW).unwrap();
        let before = snapshot_view.search(&request).unwrap();

        let mut rounds = 0;
        while segmented.compact().merges > 0 {
            rounds += 1;
            prop_assert!(rounds < 16, "compaction must settle");
        }

        // Old snapshot still answers identically…
        assert_identical(&before, &snapshot_view.search(&request).unwrap());
        // …and so does a fresh prepare over the compacted set.
        assert_identical(&before, &segmented.search_once(VIEW, &request).unwrap());
    }
}

#[test]
fn ingest_while_searching_is_snapshot_isolated() {
    let mut base = Corpus::new();
    base.add_parsed(
        "books.xml",
        &books_xml(&[BookSpec { isbn: Some(1), year: Some(2004), title_words: vec![0, 1] }]),
    )
    .unwrap();
    base.add_parsed(
        "reviews.xml",
        &reviews_xml(&[ReviewSpec { isbn: Some(1), content_words: vec![0, 2] }]),
    )
    .unwrap();
    let engine = ViewSearchEngine::new(base);
    let view = engine.prepare(VIEW).unwrap();
    let request = SearchRequest::new(["xml"]).top_k(5);
    let baseline = view.search(&request).unwrap();

    std::thread::scope(|scope| {
        // Readers hammer the prepared view while the writer ingests new
        // segments; every response must stay byte-identical to the
        // pre-ingest baseline (the view's snapshot can't see new docs,
        // and must never tear).
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..25 {
                    assert_identical(&baseline, &view.search(&request).unwrap());
                }
            });
        }
        scope.spawn(|| {
            for i in 0..10 {
                engine
                    .ingest([(
                        format!("late{i}.xml"),
                        format!("<books><book><title>xml late {i}</title><year>2005</year></book></books>"),
                    )])
                    .unwrap();
            }
        });
    });

    // The ingests all landed: a fresh prepare of a view over an ingested
    // doc finds it, and the old snapshot still answers identically.
    assert_eq!(engine.segments().len(), 11);
    assert_identical(&baseline, &view.search(&request).unwrap());
    let fresh = engine
        .search_once(
            "for $b in fn:doc(late3.xml)/books//book return <h> { $b/title } </h>",
            &SearchRequest::new(["late"]),
        )
        .unwrap();
    assert_eq!(fresh.hits.len(), 1);
    assert!(fresh.hits[0].xml.contains("xml late 3"));
}

/// A live engine (write path + background compactor) over `books.xml` /
/// `reviews.xml`, compacting aggressively so the lifecycle tests below
/// actually race against it.
fn live_engine(tag: &str) -> (ViewSearchEngine<Corpus>, std::path::PathBuf) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vxv-compactor-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut base = Corpus::new();
    base.add_parsed(
        "books.xml",
        &books_xml(&[BookSpec { isbn: Some(1), year: Some(2004), title_words: vec![0, 1] }]),
    )
    .unwrap();
    base.add_parsed(
        "reviews.xml",
        &reviews_xml(&[ReviewSpec { isbn: Some(1), content_words: vec![0, 2] }]),
    )
    .unwrap();
    let engine = ViewSearchEngine::new(base);
    engine
        .enable_writes(
            dir.join(vxv_index::wal::WAL_FILE),
            vxv_core::WriteConfig {
                // Seal every append into its own segment so the
                // compactor always has tiers to fold...
                memtable_max_bytes: 1,
                // ...and runs hot enough to overlap the test body.
                compact_interval: Some(std::time::Duration::from_millis(1)),
                ..vxv_core::WriteConfig::default()
            },
        )
        .unwrap();
    (engine, dir)
}

#[test]
fn background_compactor_shuts_down_cleanly_on_drop() {
    // Pass/fail here is "does drop return": a compactor that self-joins
    // or never wakes hangs this test rather than failing an assert.
    for round in 0..5 {
        let (engine, dir) = live_engine("drop");
        for i in 0..6 {
            engine
                .ingest([(
                    format!("late{i}.xml"),
                    format!("<books><book><title>xml {i}</title></book></books>"),
                )])
                .unwrap();
        }
        // Drop the engine and every clone at once — including from a
        // moment where the compactor is mid-round.
        let clone = engine.clone();
        drop(engine);
        drop(clone);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = round;
    }
}

#[test]
fn background_compaction_never_deadlocks_under_active_searches() {
    let (engine, dir) = live_engine("race");
    let view = engine.prepare(VIEW).unwrap();
    let request = SearchRequest::new(["xml"]).top_k(5);
    let baseline = view.search(&request).unwrap();

    std::thread::scope(|scope| {
        // Readers: prepared-view searches and fresh prepares, racing
        // the compactor's segment-set swaps.
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..40 {
                    assert_identical(&baseline, &view.search(&request).unwrap());
                    let fresh = engine.search_once(VIEW, &request).unwrap();
                    assert_eq!(fresh.view_size, baseline.view_size);
                }
            });
        }
        // Writer: durable appends, each sealing a new segment for the
        // compactor to chew on.
        scope.spawn(|| {
            for i in 0..25 {
                engine
                    .append([(
                        format!("late{i}.xml"),
                        format!("<books><book><title>xml late {i}</title><year>2005</year></book></books>"),
                    )])
                    .unwrap();
            }
        });
    });

    // The compactor demonstrably ran, every appended doc is findable,
    // and the snapshot stayed byte-stable throughout.
    assert_identical(&baseline, &view.search(&request).unwrap());
    for _ in 0..200 {
        if engine.stats().writes.compactions > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(engine.stats().writes.compactions > 0, "compactor never merged anything");
    let fresh = engine
        .search_once(
            "for $b in fn:doc(late19.xml)/books//book return <h> { $b/title } </h>",
            &SearchRequest::new(["late"]),
        )
        .unwrap();
    assert_eq!(fresh.hits.len(), 1);
    drop(view);
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ingest_while_compacting_keeps_old_snapshots_byte_identical() {
    let (engine, dir) = live_engine("snapshot");
    let view = engine.prepare(VIEW).unwrap();
    let request = SearchRequest::new(["xml"]).top_k(5);
    let baseline = view.search(&request).unwrap();

    // Interleave appends with explicit compaction rounds on top of the
    // background cadence; the pre-write snapshot must never move.
    for i in 0..12 {
        engine
            .append([(
                format!("late{i}.xml"),
                format!("<books><book><title>xml wave {i}</title></book></books>"),
            )])
            .unwrap();
        if i % 3 == 0 {
            let _ = engine.compact();
        }
        assert_identical(&baseline, &view.search(&request).unwrap());
    }
    // Settle compaction fully; the snapshot still answers identically,
    // and a fresh prepare sees all 12 appends.
    while engine.compact().merges > 0 {}
    assert_identical(&baseline, &view.search(&request).unwrap());
    assert_eq!(engine.stats().documents, 2 + 12);
    drop(view);
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multi_segment_search_works_cold_from_disk() {
    // The v2 bundle round-trips a multi-segment engine's state: persist
    // via the index/bundle layer, reopen cold, answer identically.
    use vxv_core::IndexBundle;
    use vxv_xml::DiskStore;

    let dir = std::env::temp_dir().join(format!("vxv-seg-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut c1 = Corpus::new();
    c1.add_parsed(
        "books.xml",
        "<books><book><isbn>1</isbn><title>xml search</title><year>2000</year></book></books>",
    )
    .unwrap();
    let mut c2 = Corpus::new();
    c2.add(
        vxv_xml::parse_document(
            "reviews.xml",
            "<reviews><review><isbn>1</isbn><content>xml classics</content></review></reviews>",
            2,
        )
        .unwrap(),
    );

    // Two segments on disk, plus both documents in one store.
    let mut store = DiskStore::persist(&c1, &dir).unwrap();
    store.append_segment(&c2, &dir).unwrap();
    let bundle = IndexBundle::from_segments(vec![
        vxv_index::IndexSegment::build(&c1),
        vxv_index::IndexSegment::build(&c2),
    ]);
    bundle.save(&dir).unwrap();

    let cold =
        ViewSearchEngine::open(DiskStore::open(&dir).unwrap(), IndexBundle::load(&dir).unwrap());
    assert_eq!(cold.segments().len(), 2);
    let out = cold.search_once(VIEW, &SearchRequest::new(["xml"])).unwrap();
    assert_eq!(out.hits.len(), 1);
    assert!(out.hits[0].xml.contains("xml search"), "{}", out.hits[0].xml);
    assert!(out.hits[0].xml.contains("xml classics"), "{}", out.hits[0].xml);

    // A warm single-segment engine over the union agrees byte-for-byte.
    let mut all = Corpus::new();
    for d in c1.docs().chain(c2.docs()) {
        all.add(d.clone());
    }
    let warm = ViewSearchEngine::new(all);
    assert_identical(&warm.search_once(VIEW, &SearchRequest::new(["xml"])).unwrap(), &out);
    std::fs::remove_dir_all(&dir).unwrap();
}
