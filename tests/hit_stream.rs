//! The pull-based hit stream: collecting [`vxv_core::HitStream`] must be
//! byte-identical to the eager [`vxv_core::PreparedView::search`] on the
//! same request, while base data is fetched *per pulled hit* — hits never
//! pulled never touch storage.

use std::sync::Arc;
use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::{Corpus, DiskStore, DocumentSource};

fn small_corpus() -> Corpus {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
           <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
           <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
           <book><isbn>333</isbn><title>Databases</title><year>1990</year></book>\
         </books>",
    )
    .unwrap();
    c.add_parsed(
        "reviews.xml",
        "<reviews>\
           <review><isbn>111</isbn><content>all about XML search engines</content></review>\
           <review><isbn>111</isbn><content>easy to read</content></review>\
           <review><isbn>222</isbn><content>thorough search coverage</content></review>\
           <review><isbn>333</isbn><content>XML search classics</content></review>\
         </reviews>",
    )
    .unwrap();
    c
}

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

#[test]
fn collected_stream_is_byte_identical_to_search() {
    let engine = ViewSearchEngine::new(small_corpus());
    let prepared = engine.prepare(VIEW).unwrap();
    for request in [
        SearchRequest::new(["XML", "search"]),
        SearchRequest::new(["intelligence", "xml"]).mode(KeywordMode::Disjunctive),
        SearchRequest::new(["search"]).top_k(1),
        SearchRequest::new(["search"]).materialize(false),
        SearchRequest::new(["qqqmissing"]),
    ] {
        let eager = prepared.search(&request).unwrap();
        let stream = prepared.hits(&request).unwrap();
        assert_eq!(stream.view_size(), eager.view_size);
        assert_eq!(stream.matching(), eager.matching);
        assert_eq!(stream.idf(), &eager.idf[..]);
        assert_eq!(stream.remaining(), eager.hits.len());
        let pulled: Vec<_> = stream.map(|h| h.unwrap()).collect();
        assert_eq!(pulled.len(), eager.hits.len());
        for (a, b) in pulled.iter().zip(&eager.hits) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.score, b.score);
            assert_eq!(a.tf, b.tf);
            assert_eq!(a.byte_len, b.byte_len);
            assert_eq!(a.xml, b.xml, "streamed hit must be byte-identical");
        }
    }
}

#[test]
fn stream_matches_search_once_on_inex_workload() {
    let params = ExperimentParams { data_bytes: 96 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    let request = SearchRequest::new(params.keywords()).top_k(params.top_k);
    let eager = engine.search_once(&params.view(), &request).unwrap();
    let pulled: Vec<_> = engine
        .prepare(&params.view())
        .unwrap()
        .hits(&request)
        .unwrap()
        .map(|h| h.unwrap())
        .collect();
    assert!(!pulled.is_empty());
    assert_eq!(pulled.len(), eager.hits.len());
    for (a, b) in pulled.iter().zip(&eager.hits) {
        assert_eq!(a.xml, b.xml);
        assert_eq!(a.score, b.score);
    }
}

#[test]
fn base_data_is_fetched_per_pulled_hit() {
    let corpus = Arc::new(small_corpus());
    let engine = ViewSearchEngine::new(Arc::clone(&corpus));
    let prepared = engine.prepare(VIEW).unwrap();
    // Both bookrevs elements match "search"; ask for both.
    let request = SearchRequest::new(["search"]).top_k(2);
    let full = prepared.search(&request).unwrap();
    assert_eq!(full.hits.len(), 2);
    assert!(full.fetches > 0);

    // Creating the stream fetches nothing.
    corpus.reset_fetch_count();
    let mut stream = prepared.hits(&request).unwrap();
    assert_eq!(corpus.fetch_count(), 0, "ranking must not touch base data");

    // Pulling the first hit fetches only that hit's subtrees.
    let first = stream.next().unwrap().unwrap();
    let after_first = corpus.fetch_count();
    assert!(after_first > 0);
    assert!(after_first < full.fetches, "one pulled hit fetches less than all hits");
    assert_eq!(stream.fetches(), after_first);
    assert_eq!(first.xml, full.hits[0].xml);

    // Dropping the stream without pulling the rest leaves them unfetched.
    drop(stream);
    assert_eq!(corpus.fetch_count(), after_first);
}

#[test]
fn stream_works_against_a_disk_store() {
    let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let dir = std::env::temp_dir().join(format!("vxv-stream-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DiskStore::persist(&corpus, &dir).unwrap());
    let engine = ViewSearchEngine::new(corpus).with_source::<DiskStore>(Arc::clone(&store));
    let prepared = engine.prepare(&params.view()).unwrap();
    let request = SearchRequest::new(params.keywords()).top_k(3);

    let eager = prepared.search(&request).unwrap();
    store.reset_stats();
    let pulled: Vec<_> = prepared.hits(&request).unwrap().map(|h| h.unwrap()).collect();
    assert_eq!(store.stats().range_reads, eager.fetches, "same per-hit reads as eager");
    assert_eq!(store.stats().full_reads, 0);
    for (a, b) in pulled.iter().zip(&eager.hits) {
        assert_eq!(a.xml, b.xml);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stream_crosses_threads_mid_iteration() {
    let engine = ViewSearchEngine::new(small_corpus());
    let prepared = engine.prepare(VIEW).unwrap();
    let request = SearchRequest::new(["search"]).top_k(2);
    let eager = prepared.search(&request).unwrap();

    let mut stream = prepared.hits(&request).unwrap();
    let first = stream.next().unwrap().unwrap();
    assert_eq!(first.xml, eager.hits[0].xml);
    // Move the half-drained stream (owning its engine handle) elsewhere.
    let rest =
        std::thread::spawn(move || stream.map(|h| h.unwrap()).map(|h| h.xml).collect::<Vec<_>>())
            .join()
            .unwrap();
    assert_eq!(rest, vec![eager.hits[1].xml.clone()]);
}

#[test]
fn exhausted_stream_stays_exhausted_even_past_its_deadline() {
    // A fully delivered result must never turn into an error after the
    // fact: once the stream returns None, later polls stay None even if
    // the request's deadline has since passed or its token fired.
    let engine = ViewSearchEngine::new(small_corpus());
    let prepared = engine.prepare(VIEW).unwrap();
    let token = vxv_core::CancelToken::new();
    let mut stream = prepared
        .hits(
            &SearchRequest::new(["search"])
                .deadline(std::time::Duration::from_secs(60))
                .cancel_token(token.clone()),
        )
        .unwrap();
    let mut delivered = 0usize;
    for hit in stream.by_ref() {
        hit.unwrap();
        delivered += 1;
    }
    assert!(delivered > 0);
    assert!(stream.next().is_none(), "exhausted");
    token.cancel();
    assert!(stream.next().is_none(), "still exhausted after cancel");
    assert!(stream.next().is_none(), "fused");
}

#[test]
fn empty_query_is_rejected_by_streams_too() {
    let engine = ViewSearchEngine::new(small_corpus());
    let prepared = engine.prepare(VIEW).unwrap();
    let no_keywords: [&str; 0] = [];
    let err = prepared.hits(&SearchRequest::new(no_keywords)).unwrap_err();
    assert!(matches!(err, vxv_core::EngineError::EmptyQuery), "{err}");
}
