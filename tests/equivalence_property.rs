//! Randomized end-to-end equivalence: on arbitrary small book/review
//! corpora (random structure, values and text), the Efficient pipeline
//! and the Baseline return identical ranked results for the paper's
//! running-example view — Theorem 4.1 beyond the INEX workloads.

use proptest::prelude::*;
use std::sync::Arc;
use vxv_baselines::BaselineEngine;
use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_xml::{Corpus, DocumentBuilder};

const WORDS: &[&str] = &["xml", "search", "data", "easy", "thorough"];

#[derive(Clone, Debug)]
struct BookSpec {
    isbn: Option<u8>,
    year: Option<u16>,
    title_words: Vec<usize>,
    in_shelf: bool,
}

#[derive(Clone, Debug)]
struct ReviewSpec {
    isbn: Option<u8>,
    content_words: Vec<usize>,
}

fn book_strategy() -> impl Strategy<Value = BookSpec> {
    (
        proptest::option::of(0u8..6),
        proptest::option::of(1990u16..2006),
        prop::collection::vec(0..WORDS.len(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(isbn, year, title_words, in_shelf)| BookSpec {
            isbn,
            year,
            title_words,
            in_shelf,
        })
}

fn review_strategy() -> impl Strategy<Value = ReviewSpec> {
    (proptest::option::of(0u8..6), prop::collection::vec(0..WORDS.len(), 0..5))
        .prop_map(|(isbn, content_words)| ReviewSpec { isbn, content_words })
}

fn build(books: &[BookSpec], reviews: &[ReviewSpec]) -> Corpus {
    let mut b = DocumentBuilder::new("books.xml", 1);
    b.begin("books");
    for spec in books {
        if spec.in_shelf {
            b.begin("shelf");
        }
        b.begin("book");
        if let Some(i) = spec.isbn {
            b.leaf("isbn", &i.to_string());
        }
        if !spec.title_words.is_empty() {
            let t: Vec<&str> = spec.title_words.iter().map(|w| WORDS[*w]).collect();
            b.leaf("title", &t.join(" "));
        }
        if let Some(y) = spec.year {
            b.leaf("year", &y.to_string());
        }
        b.end();
        if spec.in_shelf {
            b.end();
        }
    }
    b.end();
    let books_doc = b.finish();

    let mut b = DocumentBuilder::new("reviews.xml", 2);
    b.begin("reviews");
    for spec in reviews {
        b.begin("review");
        if let Some(i) = spec.isbn {
            b.leaf("isbn", &i.to_string());
        }
        if !spec.content_words.is_empty() {
            let t: Vec<&str> = spec.content_words.iter().map(|w| WORDS[*w]).collect();
            b.leaf("content", &t.join(" "));
        }
        b.end();
    }
    b.end();
    let reviews_doc = b.finish();

    let mut c = Corpus::new();
    c.add(books_doc);
    c.add(reviews_doc);
    c
}

const VIEW: &str = "for $book in fn:doc(books.xml)/books//book \
     where $book/year > 1995 \
     return <bookrevs> \
       { <book> {$book/title} </book> } \
       { for $rev in fn:doc(reviews.xml)/reviews//review \
         where $rev/isbn = $book/isbn \
         return $rev/content } \
     </bookrevs>";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn efficient_equals_baseline_on_random_corpora(
        books in prop::collection::vec(book_strategy(), 0..8),
        reviews in prop::collection::vec(review_strategy(), 0..8),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        disjunctive in any::<bool>(),
    ) {
        let corpus = Arc::new(build(&books, &reviews));
        let keywords: Vec<&str> = kw.iter().map(|w| WORDS[*w]).collect();
        let mode = if disjunctive { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };

        let engine = ViewSearchEngine::new(Arc::clone(&corpus));
        let eff = engine
            .prepare(VIEW)
            .unwrap()
            .search(&SearchRequest::new(&keywords).top_k(5).mode(mode))
            .unwrap();
        let base = BaselineEngine::new(&corpus).search(VIEW, &keywords, 5, mode).unwrap();

        prop_assert_eq!(eff.view_size, base.view_size, "|V(D)|");
        prop_assert_eq!(eff.matching, base.matching, "matching");
        prop_assert_eq!(&eff.idf, &base.idf, "idf");
        prop_assert_eq!(eff.hits.len(), base.hits.len(), "hit count");
        for (e, b) in eff.hits.iter().zip(&base.hits) {
            prop_assert_eq!(&e.tf, &b.tf, "tf at rank {}", e.rank);
            prop_assert_eq!(e.byte_len, b.byte_len, "byte_len at rank {}", e.rank);
            prop_assert_eq!(e.score, b.score, "score at rank {}", e.rank);
            prop_assert_eq!(&e.xml, &b.xml, "xml at rank {}", e.rank);
        }
    }
}
