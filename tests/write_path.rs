//! The real-time write path's visible contract: an acknowledged append
//! is searchable **before any flush**, score-bounded pruning stays
//! byte-identical to the exact path with a memtable in the segment set,
//! seals fire on the size/age thresholds, batches reject atomically,
//! and every stage is accounted in [`vxv_core::WriteStats`].

use vxv_core::{SearchRequest, SearchResponse, ViewSearchEngine, WriteConfig};
use vxv_xml::Corpus;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vxv-write-path-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A live engine over one base document, with the write path enabled
/// under `config` (compaction left manual unless the config says
/// otherwise).
fn live_engine(dir: &std::path::Path, config: WriteConfig) -> ViewSearchEngine<Corpus> {
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>xml search</title><year>2001</year></book></books>",
        )
        .unwrap();
    let engine = ViewSearchEngine::new(corpus);
    engine.enable_writes(dir.join(vxv_index::wal::WAL_FILE), config).unwrap();
    engine
}

/// Manual-compaction config so tests control every transition.
fn manual() -> WriteConfig {
    WriteConfig { compact_interval: None, ..WriteConfig::default() }
}

fn doc_view(name: &str) -> String {
    format!("for $b in fn:doc({name})/books//book return <h> {{ $b/title }} </h>")
}

fn assert_identical(a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    for (x, y) in a.idf.iter().zip(&b.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
}

#[test]
fn appended_document_is_searchable_before_any_flush() {
    let dir = fresh_dir("visible");
    let engine = live_engine(&dir, manual());
    let report = engine
        .append([(
            "fresh.xml".to_string(),
            "<books><book><title>durability made searchable</title></book></books>".to_string(),
        )])
        .unwrap();
    assert_eq!(report.documents, vec!["fresh.xml".to_string()]);

    // No flush has happened — the hit comes straight from the memtable
    // snapshot segment.
    let w = engine.stats().writes;
    assert!(w.enabled);
    assert_eq!(w.flushes, 0);
    assert_eq!(w.memtable_entries, 1);
    assert_eq!(w.wal_appends, 1);
    assert!(w.wal_bytes > 0);

    let out = engine
        .search_once(&doc_view("fresh.xml"), &SearchRequest::new(["durability"]).top_k(5))
        .unwrap();
    assert_eq!(out.hits.len(), 1);
    assert!(out.hits[0].xml.contains("durability made searchable"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_equals_exact_with_a_memtable_in_the_segment_set() {
    let dir = fresh_dir("pruned");
    let engine = live_engine(&dir, manual());
    for i in 0..4 {
        engine
            .append([(
                format!("late{i}.xml"),
                format!("<books><book><title>xml search extra {i}</title></book></books>"),
            )])
            .unwrap();
    }
    assert_eq!(engine.stats().writes.memtable_entries, 4, "all four still in the memtable");

    let views: Vec<String> =
        (0..4).map(|i| doc_view(&format!("late{i}.xml"))).chain([doc_view("books.xml")]).collect();
    for view in &views {
        for keywords in [&["xml"][..], &["xml", "search"][..], &["extra"][..]] {
            let exact = engine
                .search_once(view, &SearchRequest::new(keywords).top_k(5).prune(false))
                .unwrap();
            let pruned = engine
                .search_once(view, &SearchRequest::new(keywords).top_k(5).prune(true))
                .unwrap();
            assert_identical(&exact, &pruned);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn memtable_seals_on_the_size_threshold() {
    let dir = fresh_dir("size-seal");
    let engine = live_engine(&dir, WriteConfig { memtable_max_bytes: 1, ..manual() });
    for i in 0..3 {
        engine
            .append([(
                format!("late{i}.xml"),
                format!("<books><book><title>sealed {i}</title></book></books>"),
            )])
            .unwrap();
    }
    let w = engine.stats().writes;
    assert_eq!(w.flushes, 3, "every append crosses the 1-byte threshold");
    assert_eq!(w.memtable_entries, 0);
    // Sealed segments stay behind as ordinary segments; everything is
    // still searchable.
    for i in 0..3 {
        let out = engine
            .search_once(&doc_view(&format!("late{i}.xml")), &SearchRequest::new(["sealed"]))
            .unwrap();
        assert_eq!(out.hits.len(), 1, "late{i}.xml");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn memtable_seals_on_the_age_threshold() {
    let dir = fresh_dir("age-seal");
    let engine = live_engine(&dir, WriteConfig { memtable_max_age: Duration::ZERO, ..manual() });
    engine
        .append([(
            "late0.xml".to_string(),
            "<books><book><title>aged out</title></book></books>".to_string(),
        )])
        .unwrap();
    let w = engine.stats().writes;
    assert_eq!(w.flushes, 1, "a zero max-age seals at the first append");
    assert_eq!(w.memtable_entries, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explicit_flush_is_idempotent() {
    let dir = fresh_dir("flush");
    let engine = live_engine(&dir, manual());
    assert!(!engine.flush_memtable(), "empty memtable has nothing to seal");
    engine
        .append([(
            "late0.xml".to_string(),
            "<books><book><title>flush me</title></book></books>".to_string(),
        )])
        .unwrap();
    assert!(engine.flush_memtable());
    assert!(!engine.flush_memtable(), "second flush is a no-op");
    let w = engine.stats().writes;
    assert_eq!(w.flushes, 1);
    assert_eq!(w.memtable_entries, 0);
    let out = engine.search_once(&doc_view("late0.xml"), &SearchRequest::new(["flush"])).unwrap();
    assert_eq!(out.hits.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_bad_batch_rejects_atomically_with_nothing_logged() {
    let dir = fresh_dir("atomic");
    let engine = live_engine(&dir, manual());
    let before = engine.stats();

    // Second document fails to parse: the whole batch must vanish.
    let err = engine
        .append([
            ("good.xml".to_string(), "<books><book><title>ok</title></book></books>".to_string()),
            ("bad.xml".to_string(), "<books><unclosed>".to_string()),
        ])
        .unwrap_err();
    assert!(format!("{err}").contains("bad.xml"), "{err}");

    // Duplicate names reject the same way — including against the base
    // corpus.
    let err = engine.append([("books.xml".to_string(), "<books/>".to_string())]).unwrap_err();
    assert!(format!("{err}").contains("already exists"), "{err}");

    let after = engine.stats();
    assert_eq!(after.documents, before.documents, "nothing became visible");
    assert_eq!(after.writes.wal_appends, 0, "nothing was logged");
    assert_eq!(after.writes.memtable_entries, 0);
    assert!(
        engine.search_once(&doc_view("good.xml"), &SearchRequest::new(["ok"])).is_err(),
        "half-applied batch leaked"
    );

    // The WAL replays empty: a rejected batch is unrecoverable by
    // construction, not by luck.
    let replay = vxv_index::wal::replay(&dir.join(vxv_index::wal::WAL_FILE)).unwrap();
    assert_eq!(replay.records, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn append_without_enable_writes_is_a_typed_error() {
    let mut corpus = Corpus::new();
    corpus.add_parsed("books.xml", "<books/>").unwrap();
    let engine = ViewSearchEngine::new(corpus);
    assert!(!engine.writes_enabled());
    let err = engine.append([("late.xml".to_string(), "<books/>".to_string())]).unwrap_err();
    assert!(format!("{err}").contains("writes not enabled"), "{err}");
    assert!(!engine.stats().writes.enabled);
}

#[test]
fn sealed_segments_compact_while_new_appends_stay_live() {
    let dir = fresh_dir("compact");
    // Tiny size threshold: every append becomes its own sealed segment,
    // which manual compaction then folds together.
    let engine = live_engine(&dir, WriteConfig { memtable_max_bytes: 1, ..manual() });
    for i in 0..4 {
        engine
            .append([(
                format!("late{i}.xml"),
                format!("<books><book><title>xml tier {i}</title></book></books>"),
            )])
            .unwrap();
    }
    let segments_before = engine.segments().len();
    let report = engine.compact();
    assert!(report.merges > 0, "four same-tier seals must merge");
    assert!(engine.segments().len() < segments_before);
    assert!(engine.stats().writes.compactions > 0);

    // Everything — base, sealed, merged — still answers.
    for i in 0..4 {
        let out = engine
            .search_once(&doc_view(&format!("late{i}.xml")), &SearchRequest::new(["tier"]))
            .unwrap();
        assert_eq!(out.hits.len(), 1, "late{i}.xml");
    }
    // And the write path keeps accepting appends after compaction.
    engine
        .append([(
            "late9.xml".to_string(),
            "<books><book><title>post compact</title></book></books>".to_string(),
        )])
        .unwrap();
    let out = engine.search_once(&doc_view("late9.xml"), &SearchRequest::new(["compact"])).unwrap();
    assert_eq!(out.hits.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
