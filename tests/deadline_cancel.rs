//! Deadline and cancellation semantics on an INEX-style workload: a
//! search with a budget either finishes (byte-identical to the unbounded
//! search) or aborts with a typed error carrying partial phase timings —
//! never a panic, never a silently truncated result.

use std::sync::Arc;
use std::time::Duration;
use vxv_core::{
    CancelToken, EngineError, PhaseTimings, SearchRequest, SearchResponse, ViewSearchEngine,
};
use vxv_inex::{generate, ExperimentParams};

fn workload() -> (ViewSearchEngine, String, Vec<String>) {
    let params = ExperimentParams { data_bytes: 256 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    (engine, params.view(), params.keywords().iter().map(|s| s.to_string()).collect())
}

fn assert_identical(a: &SearchResponse, b: &SearchResponse, ctx: &str) {
    assert_eq!(a.view_size, b.view_size, "{ctx}");
    assert_eq!(a.matching, b.matching, "{ctx}");
    assert_eq!(a.idf, b.idf, "{ctx}");
    assert_eq!(a.hits.len(), b.hits.len(), "{ctx}");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.score, y.score, "{ctx}");
        assert_eq!(x.tf, y.tf, "{ctx}");
        assert_eq!(x.xml, y.xml, "{ctx}");
    }
}

#[test]
fn zero_deadline_yields_deadline_exceeded_with_timings() {
    let (engine, view, keywords) = workload();
    let prepared = engine.prepare(&view).unwrap();
    let err = prepared.search(&SearchRequest::new(&keywords).deadline(Duration::ZERO)).unwrap_err();
    match err {
        EngineError::DeadlineExceeded { timings } => {
            // Partial timings are populated (the struct reports where the
            // budget went; with a zero budget the first phase is charged).
            let _total: Duration = timings.total();
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn every_deadline_either_completes_identically_or_aborts_typed() {
    // Sweep deadlines across five orders of magnitude. For each, the
    // outcome must be EITHER a response byte-identical to the unbounded
    // one (no silent truncation!) OR a typed DeadlineExceeded whose
    // timings never exceed a sane multiple of the budget's phase grain.
    let (engine, view, keywords) = workload();
    let prepared = engine.prepare(&view).unwrap();
    let unbounded = prepared.search(&SearchRequest::new(&keywords)).unwrap();

    let mut aborted = 0usize;
    let mut completed = 0usize;
    for micros in [0u64, 1, 10, 100, 1_000, 10_000, 1_000_000] {
        let request = SearchRequest::new(&keywords).deadline(Duration::from_micros(micros));
        match prepared.search(&request) {
            Ok(out) => {
                completed += 1;
                assert_identical(&out, &unbounded, &format!("deadline {micros}µs"));
            }
            Err(EngineError::DeadlineExceeded { timings }) => {
                aborted += 1;
                // The abort happened during some phase; the recorded work
                // is partial, i.e. bounded by the unbounded run's total
                // plus scheduling noise — it must never be absurd.
                assert!(
                    timings.total() < Duration::from_secs(5),
                    "partial timings look unbounded: {timings:?}"
                );
            }
            Err(other) => panic!("deadline {micros}µs: unexpected error {other}"),
        }
    }
    assert!(aborted > 0, "a zero deadline must abort");
    assert!(completed > 0, "a one-second deadline must complete");
}

#[test]
fn deadline_applies_inside_the_merge_loop_not_just_boundaries() {
    // A tiny-but-nonzero budget on a larger corpus: the first checkpoint
    // that can trip mid-phase is inside the PDT merge loop. Run several
    // budgets; whenever we abort, the reported pdt-phase time must stay
    // close to the budget (the loop checks every ~1k entries), far below
    // the unbounded pdt cost on this corpus — i.e. the abort did not wait
    // for the phase boundary.
    let params = ExperimentParams { data_bytes: 1024 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    let prepared = engine.prepare(&params.view()).unwrap();
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();

    let unbounded = prepared.search(&SearchRequest::new(&keywords)).unwrap();
    let full_pdt = unbounded.timings.unwrap().pdt;

    let mut observed_midphase_abort = false;
    for _ in 0..20 {
        let budget = full_pdt / 4;
        if budget.is_zero() {
            break; // corpus too small to slice the phase; nothing to test
        }
        match prepared.search(&SearchRequest::new(&keywords).deadline(budget)) {
            Err(EngineError::DeadlineExceeded { timings }) => {
                observed_midphase_abort = true;
                assert!(
                    timings.pdt <= full_pdt + Duration::from_millis(50),
                    "abort waited past the merge loop: {:?} vs full {:?}",
                    timings.pdt,
                    full_pdt
                );
                break;
            }
            Ok(out) => assert_identical(&out, &unbounded, "quarter-budget completion"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    // On very fast machines every quarter-budget run may finish; the
    // sweep above (zero deadline) already guarantees abort coverage.
    let _ = observed_midphase_abort;
}

#[test]
fn pre_cancelled_token_aborts_immediately() {
    let (engine, view, keywords) = workload();
    let prepared = engine.prepare(&view).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let err = prepared.search(&SearchRequest::new(&keywords).cancel_token(token)).unwrap_err();
    assert!(matches!(err, EngineError::Cancelled { .. }), "{err}");
}

#[test]
fn cancel_from_another_thread_is_typed_or_the_search_completes() {
    let (engine, view, keywords) = workload();
    let prepared = Arc::new(engine.prepare(&view).unwrap());
    let unbounded = prepared.search(&SearchRequest::new(&keywords)).unwrap();

    for delay_us in [0u64, 20, 200] {
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let result = prepared.search(&SearchRequest::new(&keywords).cancel_token(token.clone()));
        canceller.join().unwrap();
        match result {
            Ok(out) => assert_identical(&out, &unbounded, "raced cancel, search won"),
            Err(EngineError::Cancelled { timings }) => {
                assert!(timings.total() < Duration::from_secs(5), "{timings:?}");
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}

#[test]
fn hit_stream_pulls_respect_cancellation() {
    let (engine, view, keywords) = workload();
    let prepared = engine.prepare(&view).unwrap();
    let token = CancelToken::new();
    let mut stream = prepared
        .hits(&SearchRequest::new(&keywords).top_k(10).cancel_token(token.clone()))
        .unwrap();

    // First pull succeeds, then cancellation trips the next one.
    if let Some(first) = stream.next() {
        first.expect("not cancelled yet");
    }
    token.cancel();
    match stream.next() {
        None => {} // stream already exhausted — nothing left to cancel
        Some(Err(EngineError::Cancelled { .. })) => {
            assert!(stream.next().is_none(), "a tripped stream is over");
        }
        Some(other) => panic!("expected Cancelled or end, got {other:?}"),
    }
}

#[test]
fn deadline_timings_nest_phases_in_order() {
    // The partial timings reflect the abort point: with a zero budget the
    // evaluator and post phases can never exceed the pdt phase's abort
    // (they simply have not run).
    let (engine, view, keywords) = workload();
    let prepared = engine.prepare(&view).unwrap();
    let err = prepared.search(&SearchRequest::new(&keywords).deadline(Duration::ZERO)).unwrap_err();
    let EngineError::DeadlineExceeded { timings } = err else {
        panic!("expected DeadlineExceeded")
    };
    let PhaseTimings { evaluator, post, .. } = timings;
    assert_eq!(evaluator, Duration::ZERO, "evaluator never ran under a zero budget");
    assert_eq!(post, Duration::ZERO, "post never ran under a zero budget");
}
