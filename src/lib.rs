#![warn(missing_docs)]
//! # vxv — Efficient Keyword Search over Virtual XML Views
//!
//! Umbrella crate re-exporting the whole pipeline. See [`vxv_core`] for
//! the engine and the `prepare → SearchRequest → SearchResponse` API.

pub use vxv_baselines as baselines;
pub use vxv_core as core;
pub use vxv_index as index;
pub use vxv_inex as inex;
pub use vxv_server as server;
pub use vxv_xml as xml;
pub use vxv_xquery as xquery;
