//! Personalized portal (the paper's first motivating application, §1):
//! one shared content base, many per-user *virtual* views — materializing
//! each user's view would duplicate overlapping content, so every user
//! searches their own unmaterialized slice.
//!
//! We generate an INEX-like publication corpus and give each "user" a
//! view restricted to their interests (a topic keyword filter plus an
//! author they follow). Per-user views are exactly what the catalog's
//! **ad-hoc LRU** is for: a user's first search prepares their view, a
//! returning user hits the cache, and cold users evict whoever has been
//! idle longest.
//!
//! ```sh
//! cargo run --example personalized_portal
//! ```

use vxv_core::{KeywordMode, SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_inex::{author_name, generate, GeneratorConfig};

/// The per-user view: publications after `year_floor` by the followed
/// author, with titles and bodies.
fn user_view(followed_author: &str, year_floor: u32) -> String {
    format!(
        "for $art in fn:doc(inex.xml)/books//article \
         where $art/fm/au = '{followed_author}' and $art/fm/yr > {year_floor} \
         return <item> {{ $art/fm/tl }} {{ $art/bdy }} </item>"
    )
}

fn main() {
    let corpus =
        generate(&GeneratorConfig { target_bytes: 384 * 1024, ..GeneratorConfig::default() });
    // The portal keeps at most 8 signed-in users' views prepared.
    let catalog = ViewCatalog::with_adhoc_capacity(ViewSearchEngine::new(corpus), 8);

    // Two portal users following different authors, different recency —
    // and alice comes back for a second session.
    let users = [
        ("alice", author_name(0), 1995),
        ("bob", author_name(3), 2000),
        ("alice", author_name(0), 1995),
    ];

    let request = SearchRequest::new(["data", "model"]).top_k(3).mode(KeywordMode::Disjunctive);

    for (user, author, year) in users {
        let out =
            catalog.search_adhoc(&user_view(&author, year), &request).expect("view evaluates");
        println!(
            "user {user}: follows {author}, view holds {} items, {} match 'data|model'",
            out.view_size, out.matching
        );
        for hit in &out.hits {
            let preview: String = hit.xml.chars().take(96).collect();
            println!("   #{} score={:.5} {preview}...", hit.rank, hit.score);
        }
        if let Some(t) = out.timings {
            println!(
                "   (pipeline: PDT {:?} / eval {:?} / post {:?}; {} base fetches)",
                t.pdt, t.evaluator, t.post, out.fetches
            );
        }
        println!();
    }

    // Alice's second session reused her prepared view: 2 prepares, 1 hit.
    let stats = catalog.stats();
    println!(
        "portal cache: {} prepares, {} hits, {} misses ({} views resident)",
        stats.prepares, stats.hits, stats.misses, stats.adhoc
    );
}
