//! Personalized portal (the paper's first motivating application, §1):
//! one shared content base, many per-user *virtual* views — materializing
//! each user's view would duplicate overlapping content, so every user
//! searches their own unmaterialized slice.
//!
//! We generate an INEX-like publication corpus and give each "user" a
//! view restricted to their interests (a topic keyword filter plus an
//! author they follow). Each user's view is prepared once when they sign
//! in; their searches then share the prepared analysis.
//!
//! ```sh
//! cargo run --example personalized_portal
//! ```

use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_inex::{author_name, generate, GeneratorConfig};

/// The per-user view: publications after `year_floor` by the followed
/// author, with titles and bodies.
fn user_view(followed_author: &str, year_floor: u32) -> String {
    format!(
        "for $art in fn:doc(inex.xml)/books//article \
         where $art/fm/au = '{followed_author}' and $art/fm/yr > {year_floor} \
         return <item> {{ $art/fm/tl }} {{ $art/bdy }} </item>"
    )
}

fn main() {
    let corpus =
        generate(&GeneratorConfig { target_bytes: 384 * 1024, ..GeneratorConfig::default() });
    let engine = ViewSearchEngine::new(&corpus);

    // Two portal users following different authors, different recency.
    let users = [("alice", author_name(0), 1995), ("bob", author_name(3), 2000)];

    let request = SearchRequest::new(["data", "model"]).top_k(3).mode(KeywordMode::Disjunctive);

    for (user, author, year) in users {
        let view = engine.prepare(&user_view(&author, year)).expect("view prepares");
        let out = view.search(&request).expect("view evaluates");
        println!(
            "user {user}: follows {author}, view holds {} items, {} match 'data|model'",
            out.view_size, out.matching
        );
        for hit in &out.hits {
            let preview: String = hit.xml.chars().take(96).collect();
            println!("   #{} score={:.5} {preview}...", hit.rank, hit.score);
        }
        if let Some(t) = out.timings {
            println!(
                "   (pipeline: PDT {:?} / eval {:?} / post {:?}; {} base fetches)",
                t.pdt, t.evaluator, t.post, out.fetches
            );
        }
        println!();
    }
}
