//! Quickstart: ranked keyword search over a virtual XML view in ~30 lines.
//!
//! The flow is `prepare → SearchRequest → SearchResponse`: the view is
//! analyzed once, then answers any number of keyword searches.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vxv_core::{SearchRequest, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    // 1. Load base documents into the store (indices build automatically).
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            r#"<books>
                 <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
                 <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>
                 <book><isbn>333</isbn><title>Vintage Compilers</title><year>1989</year></book>
               </books>"#,
        )
        .expect("well-formed XML");

    // 2. Prepare a *virtual* view — parsed, analyzed into query pattern
    //    trees, and probe-planned exactly once. Never materialized.
    let engine = ViewSearchEngine::new(&corpus);
    let view = engine
        .prepare(
            "for $b in fn:doc(books.xml)/books/book \
             where $b/year > 1995 \
             return <hit> { $b/title } </hit>",
        )
        .expect("view is in the supported fragment");

    // 3. Search it — as many times as you like; only the top-k results
    //    are ever materialized from base data.
    let out =
        view.search(&SearchRequest::new(["xml", "services"]).top_k(5)).expect("query evaluates");

    println!("view contains {} elements; {} match the keywords", out.view_size, out.matching);
    for hit in &out.hits {
        println!("#{} score={:.4} tf={:?}\n    {}", hit.rank, hit.score, hit.tf, hit.xml);
    }
    if let Some(t) = out.timings {
        println!(
            "phases: PDT {:?}, evaluator {:?}, scoring+materialization {:?}",
            t.pdt, t.evaluator, t.post
        );
    }

    // The same prepared view answers a different request for free.
    let out = view.search(&SearchRequest::new(["intelligence"])).expect("query evaluates");
    println!("'intelligence' matches {} element(s)", out.matching);
}
