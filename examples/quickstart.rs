//! Quickstart: ranked keyword search over a virtual XML view in ~30 lines.
//!
//! The flow is `ViewCatalog::register → SearchRequest → SearchResponse`:
//! the view is analyzed once when it is registered under a name, then the
//! catalog answers any number of keyword searches against it — from any
//! thread, since catalog, engine and prepared views are all owned and
//! `Send + Sync`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vxv_core::{SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    // 1. Load base documents into the store (indices build automatically).
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            r#"<books>
                 <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
                 <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>
                 <book><isbn>333</isbn><title>Vintage Compilers</title><year>1989</year></book>
               </books>"#,
        )
        .expect("well-formed XML");

    // 2. Own the stack: the catalog owns the engine, the engine owns the
    //    indices and the corpus. Register a *virtual* view — parsed,
    //    analyzed into query pattern trees, and probe-planned exactly
    //    once. Never materialized.
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
    catalog
        .register(
            "modern-books",
            "for $b in fn:doc(books.xml)/books/book \
             where $b/year > 1995 \
             return <hit> { $b/title } </hit>",
        )
        .expect("view is in the supported fragment");

    // 3. Search it by name — as many times as you like; only the top-k
    //    results are ever materialized from base data.
    let out = catalog
        .search("modern-books", &SearchRequest::new(["xml", "services"]).top_k(5))
        .expect("query evaluates");

    println!("view contains {} elements; {} match the keywords", out.view_size, out.matching);
    for hit in &out.hits {
        println!("#{} score={:.4} tf={:?}\n    {}", hit.rank, hit.score, hit.tf, hit.xml);
    }
    if let Some(t) = out.timings {
        println!(
            "phases: PDT {:?}, evaluator {:?}, scoring+materialization {:?}",
            t.pdt, t.evaluator, t.post
        );
    }

    // The same registered view answers a different request for free —
    // here as a pull-based stream that materializes one hit at a time.
    let view = catalog.get("modern-books").expect("registered above");
    let stream = view.hits(&SearchRequest::new(["intelligence"])).expect("query evaluates");
    println!("'intelligence' matches {} element(s):", stream.matching());
    for hit in stream {
        let hit = hit.expect("stream pulls cleanly");
        println!("#{} score={:.4} {}", hit.rank, hit.score, hit.xml);
    }

    // The catalog kept score: one prepare, two lookups.
    let stats = catalog.stats();
    println!(
        "catalog: {} prepare(s), {} hit(s), {} miss(es)",
        stats.prepares, stats.hits, stats.misses
    );
}
