//! Quickstart: ranked keyword search over a virtual XML view in ~30 lines.
//!
//! ```sh
//! cargo run -p vxv-bench --example quickstart
//! ```

use vxv_core::{KeywordMode, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    // 1. Load base documents into the store (indices build automatically).
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            r#"<books>
                 <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
                 <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>
                 <book><isbn>333</isbn><title>Vintage Compilers</title><year>1989</year></book>
               </books>"#,
        )
        .expect("well-formed XML");

    // 2. Define a *virtual* view — never materialized.
    let view = "for $b in fn:doc(books.xml)/books/book \
                where $b/year > 1995 \
                return <hit> { $b/title } </hit>";

    // 3. Search the view. Only the top-k results are ever materialized.
    let engine = ViewSearchEngine::new(&corpus);
    let out = engine
        .search(view, &["xml", "services"], 5, KeywordMode::Conjunctive)
        .expect("query evaluates");

    println!("view contains {} elements; {} match the keywords", out.view_size, out.matching);
    for hit in &out.hits {
        println!("#{} score={:.4} tf={:?}\n    {}", hit.rank, hit.score, hit.tf, hit.xml);
    }
    println!(
        "phases: PDT {:?}, evaluator {:?}, scoring+materialization {:?}",
        out.timings.pdt, out.timings.evaluator, out.timings.post
    );
}
