//! The paper's running example (Fig. 1 / Fig. 2): an information
//! integration portal joining a book service with a review service into a
//! virtual aggregation view, then answering the keyword query
//! {"XML", "search"} over it.
//!
//! The interesting property demonstrated here is the one the paper's
//! introduction highlights: *no single book or review contains both
//! keywords* — only the joined view element does — yet the engine finds
//! it using indices alone, without materializing the view.
//!
//! ```sh
//! cargo run --example book_reviews
//! ```

use vxv_core::{SearchRequest, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "books.xml",
            r#"<books>
                 <book><isbn>111-11-1111</isbn><title>XML Web Services</title>
                       <publisher>Prentice Hall</publisher><year>2004</year></book>
                 <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title>
                       <publisher>Prentice Hall</publisher><year>2002</year></book>
               </books>"#,
        )
        .unwrap();
    corpus
        .add_parsed(
            "reviews.xml",
            r#"<reviews>
                 <review><isbn>111-11-1111</isbn><rate>Excellent</rate>
                         <content>all about search engines</content><reviewer>John</reviewer></review>
                 <review><isbn>111-11-1111</isbn><rate>Good</rate>
                         <content>Easy to read and thorough</content><reviewer>Alex</reviewer></review>
                 <review><isbn>222-22-2222</isbn><rate>Good</rate>
                         <content>classic planning material</content><reviewer>Mia</reviewer></review>
               </reviews>"#,
        )
        .unwrap();

    // The aggregation view of Fig. 2: books (year > 1995) with their
    // reviews' content nested beneath them — virtual, defined in XQuery,
    // analyzed once at prepare time.
    let engine = ViewSearchEngine::new(corpus);
    let view = engine
        .prepare(
            "for $book in fn:doc(books.xml)/books//book \
             where $book/year > 1995 \
             return <bookrevs> \
               { <book> {$book/title} </book> } \
               { for $rev in fn:doc(reviews.xml)/reviews//review \
                 where $rev/isbn = $book/isbn \
                 return $rev/content } \
             </bookrevs>",
        )
        .unwrap();

    // Note: 'XML' appears only in the book title, 'search' only in a
    // review. The conjunctive query still matches the joined element.
    let out = view.search(&SearchRequest::new(["XML", "search"])).unwrap();
    println!("ftcontains('XML' & 'search') over the virtual view:");
    for hit in &out.hits {
        println!("  #{} score={:.5}  {}", hit.rank, hit.score, hit.xml);
    }
    assert_eq!(out.hits.len(), 1, "exactly the joined bookrevs element matches");

    // Show the per-document PDT sizes — the pruned projections the engine
    // actually evaluated (Fig. 6(b) in the paper).
    println!("\nPDTs generated (index-only):");
    for (doc, stats, bytes) in &out.pdt_stats {
        println!(
            "  {doc}: {} elements from {} index entries ({} probes), {} bytes",
            stats.emitted, stats.entries, stats.probes, bytes
        );
    }

    // The prepared view also exposes its plan without running anything.
    let plan = view.plan(&["XML", "search"]);
    println!(
        "\nplan: {} QPT(s), keyword posting lists: {:?}",
        plan.qpts.len(),
        plan.keyword_list_lengths
    );
}
