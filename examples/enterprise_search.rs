//! Enterprise search with permission levels (the paper's second
//! motivating application, §1): employees may only search documents at or
//! below their clearance, so each permission level is a *virtual view*
//! over the shared repository — and scores (idf!) are computed over the
//! visible view, not the whole corpus, exactly as the semantics demand.
//!
//! Each clearance level's view is prepared once, up front — the shape a
//! production portal would use, with one long-lived [`vxv_core::PreparedView`]
//! per permission level answering every search at that level.
//!
//! ```sh
//! cargo run --example enterprise_search
//! ```

use vxv_core::{SearchRequest, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "repo.xml",
            r#"<repo>
                 <doc><level>1</level><title>Cafeteria menu update</title>
                      <body>new menu with budget friendly lunch options</body></doc>
                 <doc><level>1</level><title>Parking policy</title>
                      <body>garage access and visitor parking policy</body></doc>
                 <doc><level>2</level><title>Quarterly budget</title>
                      <body>departmental budget allocations and forecast</body></doc>
                 <doc><level>2</level><title>Hiring plan</title>
                      <body>headcount budget for the platform team</body></doc>
                 <doc><level>3</level><title>Acquisition memo</title>
                      <body>confidential budget for the pending acquisition</body></doc>
               </repo>"#,
        )
        .unwrap();

    let engine = ViewSearchEngine::new(&corpus);

    // A clearance-L view exposes documents with level < L+1 (i.e. <= L).
    // Prepare all three views once; each then serves every search issued
    // at that clearance.
    let views: Vec<_> = [1u32, 2, 3]
        .into_iter()
        .map(|clearance| {
            let text = format!(
                "for $d in fn:doc(repo.xml)/repo/doc where $d/level < {} \
                 return <res> {{ $d/title }} {{ $d/body }} </res>",
                clearance + 1
            );
            (clearance, engine.prepare(&text).expect("view prepares"))
        })
        .collect();

    let request = SearchRequest::new(["budget"]);
    for (clearance, view) in &views {
        let out = view.search(&request).unwrap();
        println!(
            "clearance {clearance}: sees {} docs, {} mention 'budget' (idf = {:.3})",
            out.view_size, out.matching, out.idf[0]
        );
        for hit in &out.hits {
            println!("   #{} score={:.5} {}", hit.rank, hit.score, hit.xml);
        }
        println!();
    }

    // The same query scores differently per level: idf is a property of
    // the *view*, so a level-1 user never learns that higher-clearance
    // budget documents even exist.
}
