//! Enterprise search with permission levels (the paper's second
//! motivating application, §1): employees may only search documents at or
//! below their clearance, so each permission level is a *virtual view*
//! over the shared repository — and scores (idf!) are computed over the
//! visible view, not the whole corpus, exactly as the semantics demand.
//!
//! This is the serving shape [`vxv_core::ViewCatalog`] exists for: one
//! long-lived catalog owns the engine, each clearance level is a *named*
//! view registered once, and every search at a level goes through the
//! shared prepared analysis. A whole shift's worth of queries fans out in
//! one [`vxv_core::ViewCatalog::search_batch`] call, each request
//! carrying its own deadline.
//!
//! ```sh
//! cargo run --example enterprise_search
//! ```

use std::time::Duration;
use vxv_core::{NamedRequest, SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_xml::Corpus;

fn main() {
    let mut corpus = Corpus::new();
    corpus
        .add_parsed(
            "repo.xml",
            r#"<repo>
                 <doc><level>1</level><title>Cafeteria menu update</title>
                      <body>new menu with budget friendly lunch options</body></doc>
                 <doc><level>1</level><title>Parking policy</title>
                      <body>garage access and visitor parking policy</body></doc>
                 <doc><level>2</level><title>Quarterly budget</title>
                      <body>departmental budget allocations and forecast</body></doc>
                 <doc><level>2</level><title>Hiring plan</title>
                      <body>headcount budget for the platform team</body></doc>
                 <doc><level>3</level><title>Acquisition memo</title>
                      <body>confidential budget for the pending acquisition</body></doc>
               </repo>"#,
        )
        .unwrap();

    // The catalog owns everything; registering a clearance level pays its
    // view analysis once. A clearance-L view exposes documents with
    // level < L+1 (i.e. <= L).
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
    for clearance in [1u32, 2, 3] {
        let text = format!(
            "for $d in fn:doc(repo.xml)/repo/doc where $d/level < {} \
             return <res> {{ $d/title }} {{ $d/body }} </res>",
            clearance + 1
        );
        catalog.register(format!("clearance-{clearance}"), &text).expect("view prepares");
    }

    // One search per clearance level, fanned across the catalog's worker
    // pool. Every request gets a service-grade deadline.
    let batch: Vec<NamedRequest> = [1u32, 2, 3]
        .into_iter()
        .map(|clearance| {
            NamedRequest::new(
                format!("clearance-{clearance}"),
                SearchRequest::new(["budget"]).deadline(Duration::from_secs(2)),
            )
        })
        .collect();

    for (req, result) in batch.iter().zip(catalog.search_batch(&batch)) {
        let out = result.expect("within deadline");
        println!(
            "{}: sees {} docs, {} mention 'budget' (idf = {:.3})",
            req.view, out.view_size, out.matching, out.idf[0]
        );
        for hit in &out.hits {
            println!("   #{} score={:.5} {}", hit.rank, hit.score, hit.xml);
        }
        println!();
    }

    // The same query scores differently per level: idf is a property of
    // the *view*, so a level-1 user never learns that higher-clearance
    // budget documents even exist.
    let stats = catalog.stats();
    println!(
        "catalog served {} lookups over {} named views with {} prepares",
        stats.hits, stats.named, stats.prepares
    );
}
